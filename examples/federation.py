#!/usr/bin/env python3
"""Federating three news agencies with unequal reliability.

Extends the paper's two-database scenario: a third agency ("campus
weekly") joins, with a spottier survey the bureau trusts less
(reliability 0.7).  The federation folds the evidential merge across all
three sources -- Dempster's rule is associative and commutative, so the
fold order does not matter -- and then a decision view commits each
attribute to its best value for the printed tourist guide, confidence
alongside.

Run:  python examples/federation.py
"""

from fractions import Fraction

from repro import format_relation
from repro.analysis import decide, relation_quality
from repro.datasets.restaurants import restaurant_schema, table_ra, table_rb
from repro.integration import Federation, TupleMerger
from repro.model import ExtendedRelation, ExtendedTuple, TupleMembership
from repro.ds.frame import OMEGA


def build_campus_weekly() -> ExtendedRelation:
    """A third, noisier survey covering three restaurants."""
    schema = restaurant_schema("campus")
    f = Fraction

    def row(rname, street, bldg_no, phone, speciality, best_dish, rating, sn, sp):
        return ExtendedTuple(
            schema,
            {
                "rname": rname,
                "street": street,
                "bldg_no": bldg_no,
                "phone": phone,
                "speciality": speciality,
                "best_dish": best_dish,
                "rating": rating,
            },
            TupleMembership(sn, sp),
        )

    rows = [
        row(
            "garden", "univ.ave.", 2011, "371-2155",
            {"si": f(2, 5), ("hu", "si"): f(2, 5), OMEGA: f(1, 5)},
            {"d31": f(3, 5), OMEGA: f(2, 5)},
            {"gd": f(3, 5), "ex": f(1, 5), OMEGA: f(1, 5)},
            1, 1,
        ),
        row(
            "wok", "wash.ave.", 600, "382-4165",
            {"si": f(1, 2), OMEGA: f(1, 2)},
            {"d6": f(2, 5), "d7": f(2, 5), OMEGA: f(1, 5)},
            {"gd": f(1, 2), "avg": f(1, 4), OMEGA: f(1, 4)},
            f(9, 10), 1,
        ),
        row(
            "ashiana", "univ.ave.", 353, "371-0824",
            {"mu": f(3, 5), "ta": f(1, 5), OMEGA: f(1, 5)},
            {"d34": f(1, 2), OMEGA: f(1, 2)},
            {"ex": f(4, 5), OMEGA: f(1, 5)},
            f(4, 5), 1,
        ),
    ]
    return ExtendedRelation(schema, rows)


def main() -> None:
    federation = Federation(TupleMerger(on_conflict="vacuous"))
    federation.add_source("daily", table_ra())
    federation.add_source("tribune", table_rb())
    federation.add_source("campus", build_campus_weekly(), reliability="7/10")

    integrated, report = federation.integrate(name="R")
    print(format_relation(integrated, title="Three-way federated relation"))
    print()
    print("Merge steps:")
    print(report.summary())
    print()

    quality = relation_quality(integrated)
    print("Quality:", quality.summary())
    for entry in quality.attributes:
        print(
            f"  {entry.attribute:<10} mean ignorance {entry.mean_ignorance:.3f}  "
            f"nonspecificity {entry.mean_nonspecificity:.3f} bits  "
            f"discord {entry.mean_discord:.3f} bits"
        )
    print()

    print("Decision view for the printed guide (pignistic policy):")
    for crisp in decide(integrated, "pignistic", min_membership_sn="1/2"):
        print(
            f"  {crisp.key[0]:<8} speciality={crisp.values['speciality']:<3} "
            f"(conf {float(crisp.confidence['speciality']):.2f})  "
            f"rating={crisp.values['rating']:<3} "
            f"(conf {float(crisp.confidence['rating']):.2f})"
        )


if __name__ == "__main__":
    main()
