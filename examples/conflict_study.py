#!/usr/bin/env python3
"""A conflict study: how the integration approaches behave as sources
diverge.

Sweeps the synthetic generator's ``conflict`` knob from agreeing sources
to strongly disagreeing ones and reports, per level:

* the mean Dempster conflict (kappa) the evidential union observes,
* how much *ignorance* survives integration (evidential vs mixture),
* the share of tuples DeMichiel's partial values cannot reconcile at
  all (disjoint candidate sets), which the evidential model resolves by
  renormalizing -- or flags via its conflict report when truly total,
* what source discounting does to the same merge (reliability 0.8).

This is the kind of administrator-facing analysis the paper motivates
when it says total conflicts need "some actions ... to inform the data
administrators or integrators".

Run:  python examples/conflict_study.py
"""

from fractions import Fraction

from repro.baselines.partial_values import combine_partial, to_partial_value
from repro.datasets.generators import SyntheticConfig, synthetic_pair
from repro.errors import TotalConflictError
from repro.integration import IntegrationPipeline, TupleMerger


def ignorance_share(relation) -> float:
    """Mean OMEGA-mass over the uncertain 'category' attribute."""
    values = [float(t.evidence("category").ignorance()) for t in relation]
    return sum(values) / len(values) if values else 0.0


def partial_value_failures(left, right) -> float:
    """Fraction of matched tuples DeMichiel's intersection cannot merge."""
    matched = [t.key() for t in right if t.key() in left]
    if not matched:
        return 0.0
    failures = 0
    for key in matched:
        a = to_partial_value(left.get(key).evidence("category"))
        b = to_partial_value(right.get(key).evidence("category"))
        try:
            combine_partial(a, b)
        except TotalConflictError:
            failures += 1
    return failures / len(matched)


def main() -> None:
    print(
        f"{'conflict':>8} | {'mean kappa':>10} | {'total':>5} | "
        f"{'ignorance(evid)':>15} | {'ignorance(mix)':>14} | "
        f"{'partial-value fail':>18} | {'ignorance(r=0.8)':>16}"
    )
    print("-" * 105)
    for level in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0):
        config = SyntheticConfig(
            n_tuples=200, overlap=0.6, conflict=level, ignorance=0.3, seed=42
        )
        left, right = synthetic_pair(config)

        evidential, report = TupleMerger(on_conflict="vacuous").merge(left, right)
        kappas = [float(c.kappa) for c in report.conflicts if c.attribute == "category"]
        mean_kappa = sum(kappas) / len(kappas) if kappas else 0.0
        totals = sum(1 for c in report.total_conflicts if c.attribute == "category")

        mixture, _ = TupleMerger(
            default_method="mixture", on_conflict="vacuous"
        ).merge(left, right)

        discounted = IntegrationPipeline(
            merger=TupleMerger(on_conflict="vacuous"),
            reliabilities=(1, Fraction(4, 5)),
        ).run(left, right)

        print(
            f"{level:>8.1f} | {mean_kappa:>10.3f} | {totals:>5d} | "
            f"{ignorance_share(evidential):>15.3f} | "
            f"{ignorance_share(mixture):>14.3f} | "
            f"{partial_value_failures(left, right):>18.3f} | "
            f"{ignorance_share(discounted.integrated):>16.3f}"
        )

    print()
    print(
        "Reading: Dempster (evidential) *reduces* ignorance as sources are\n"
        "pooled and renormalizes conflict away, while the mixture rule\n"
        "keeps inconsistency around; DeMichiel's partial values simply fail\n"
        "on disjoint candidate sets; discounting an imperfect source keeps\n"
        "more ignorance, hedging the merge."
    )


if __name__ == "__main__":
    main()
