#!/usr/bin/env python3
"""The full Figure 1 pipeline on heterogeneous sources.

Unlike the quickstart (which starts from already-preprocessed relations),
this example begins where real integrations do: the two agencies store
*different* schemas --

* Minnesota Daily keeps raw reviewer vote counts per restaurant;
* Star Tribune keeps a 1-5 star rating and a free-text cuisine label.

The pipeline then runs every stage of the paper's framework:

  schema mapping -> attribute preprocessing (votes/stars -> evidence
  sets over the global domains) -> entity identification -> tuple
  merging (Dempster) -> integrated relation -> queries,

and prints the conflict report the data administrator would see.

Run:  python examples/restaurant_integration.py
"""

from fractions import Fraction

from repro import (
    Attribute,
    Database,
    EvidenceSet,
    ExtendedRelation,
    ExtendedTuple,
    NumericDomain,
    RelationSchema,
    TextDomain,
    format_relation,
)
from repro.datasets.restaurants import rating_domain, speciality_domain
from repro.integration import (
    AttributeCorrespondence,
    DomainValueMapping,
    IntegrationPipeline,
    SchemaMapping,
)


def build_global_schema() -> RelationSchema:
    """The bureau's global schema: name*, speciality?, rating?."""
    return RelationSchema(
        "R",
        [
            Attribute("rname", TextDomain("rname"), key=True),
            Attribute("speciality", speciality_domain(), uncertain=True),
            Attribute("rating", rating_domain(), uncertain=True),
        ],
    )


def build_daily_source() -> ExtendedRelation:
    """Minnesota Daily: per-restaurant reviewer vote counts."""
    schema = RelationSchema(
        "daily",
        [
            Attribute("name", TextDomain("name"), key=True),
            Attribute("cuisine", TextDomain("cuisine")),
            Attribute("ex_votes", NumericDomain("ex_votes", integral=True)),
            Attribute("gd_votes", NumericDomain("gd_votes", integral=True)),
            Attribute("avg_votes", NumericDomain("avg_votes", integral=True)),
        ],
    )
    rows = [
        {"name": "garden", "cuisine": "szechuan", "ex_votes": 2, "gd_votes": 3, "avg_votes": 1},
        {"name": "wok", "cuisine": "chinese", "ex_votes": 0, "gd_votes": 2, "avg_votes": 4},
        {"name": "olive", "cuisine": "italian", "ex_votes": 0, "gd_votes": 3, "avg_votes": 3},
        {"name": "mehl", "cuisine": "indian", "ex_votes": 5, "gd_votes": 1, "avg_votes": 0},
    ]
    return ExtendedRelation.from_rows(schema, rows)


def build_tribune_source() -> ExtendedRelation:
    """Star Tribune: 1-5 stars and a cuisine label."""
    schema = RelationSchema(
        "tribune",
        [
            Attribute("restaurant", TextDomain("restaurant"), key=True),
            Attribute("cuisine", TextDomain("cuisine")),
            Attribute("stars", NumericDomain("stars", low=1, high=5, integral=True)),
        ],
    )
    rows = [
        {"restaurant": "garden", "cuisine": "chinese", "stars": 4},
        {"restaurant": "wok", "cuisine": "szechuan", "stars": 3},
        {"restaurant": "olive", "cuisine": "italian", "stars": 3},
        {"restaurant": "country", "cuisine": "american", "stars": 5},
    ]
    return ExtendedRelation.from_rows(schema, rows)


def build_daily_mapping(global_schema: RelationSchema) -> SchemaMapping:
    """Daily -> global: votes consolidate into rating evidence; the
    free-text cuisine maps (one-to-many!) onto the speciality domain."""
    cuisine = DomainValueMapping(
        "cuisine-to-speciality",
        {
            "chinese": {"hu", "si", "ca"},  # ambiguous: any chinese school
            "szechuan": "si",
            "hunan": "hu",
            "cantonese": "ca",
            "indian": {"mu", "ta"},
            "italian": "it",
            "american": "am",
        },
        target_domain=speciality_domain(),
    )

    def consolidate_votes(etuple: ExtendedTuple) -> EvidenceSet:
        counts = {
            "ex": etuple.value("ex_votes").definite_value(),
            "gd": etuple.value("gd_votes").definite_value(),
            "avg": etuple.value("avg_votes").definite_value(),
        }
        return EvidenceSet.from_counts(
            {value: count for value, count in counts.items() if count},
            rating_domain(),
        )

    return SchemaMapping(
        global_schema,
        [
            AttributeCorrespondence("name", "rname"),
            AttributeCorrespondence("cuisine", "speciality", cuisine.as_transform()),
        ],
        derivations={"rating": consolidate_votes},
    )


def build_tribune_mapping(global_schema: RelationSchema) -> SchemaMapping:
    """Tribune -> global: stars recode (one-to-many at 4 and 2 stars)."""
    cuisine = DomainValueMapping(
        "cuisine-to-speciality",
        {
            "chinese": {"hu", "si", "ca"},
            "szechuan": "si",
            "indian": {"mu", "ta"},
            "italian": "it",
            "american": "am",
        },
        target_domain=speciality_domain(),
    )
    stars = DomainValueMapping(
        "stars-to-rating",
        {5: "ex", 4: {"ex", "gd"}, 3: "gd", 2: {"gd", "avg"}, 1: "avg"},
        target_domain=rating_domain(),
    )
    return SchemaMapping(
        global_schema,
        [
            AttributeCorrespondence("restaurant", "rname"),
            AttributeCorrespondence("cuisine", "speciality", cuisine.as_transform()),
            AttributeCorrespondence("stars", "rating", stars.as_transform()),
        ],
    )


def main() -> None:
    global_schema = build_global_schema()
    daily = build_daily_source()
    tribune = build_tribune_source()

    pipeline = IntegrationPipeline(
        left_mapping=build_daily_mapping(global_schema),
        right_mapping=build_tribune_mapping(global_schema),
    )
    result = pipeline.run(daily, tribune, name="R")

    print(format_relation(result.preprocessed_left, title="Daily, preprocessed"))
    print()
    print(format_relation(result.preprocessed_right, title="Tribune, preprocessed"))
    print()
    print(format_relation(result.integrated, title="Integrated relation"))
    print()
    print("Conflict report:", result.report.summary())
    for record in result.report.conflicts:
        print(
            f"  key={record.key[0]:<8} attribute={record.attribute:<11} "
            f"kappa={float(record.kappa):.3f}"
            + ("  [TOTAL]" if record.total else "")
        )
    print()

    db = Database("bureau")
    db.add(result.integrated)
    print("Sichuan candidates (any positive support):")
    for row in db.query("SELECT rname, speciality FROM R WHERE speciality IS {si}"):
        print(
            f"  {row.key()[0]:<8} speciality={row.evidence('speciality').format()} "
            f"(sn,sp)={row.membership.format(style='decimal')}"
        )


if __name__ == "__main__":
    main()
