#!/usr/bin/env python3
"""Quickstart: resolve attribute conflicts between two databases.

This walks the paper's core loop with the fluent lazy API:

1. load the two news agencies' restaurant relations (Table 1),
2. integrate them with the extended union (Dempster's rule, Table 4),
3. query with composable expressions -- nothing runs until collect(),
   and the session caches plans and results across queries,
4. stream the same evidence incrementally: a StreamEngine folds
   per-source events into the integrated relation exactly (Dempster's
   rule is associative), publishes on flush, and re-collects
   subscribed queries,
5. inspect the compact evidence kernel that runs underneath it all,
6. fan the same work out over a worker pool: the physical execution
   layer shards entity work into hash partitions, and any executor /
   partition count reproduces the serial result exactly -- including
   the adaptive runtime (REPRO_EXECUTOR=auto), where a cost model
   routes each batch to the serial loop, the thread pool or the warm
   process pool,
7. persist everything through a pluggable storage backend (json /
   sqlite / append-only log), with write-ahead durability for streams,
8. watch it all through the unified telemetry layer (repro.obs):
   the process-wide metrics registry, EXPLAIN ANALYZE query profiles
   and structured tracing spans,
9. check the correctness invariants behind all of the above with the
   built-in static analyzer (python -m repro.analysis).

Run:  python examples/quickstart.py
"""

import os
import tempfile
from pathlib import Path

from repro import (
    Database,
    StreamEngine,
    attr,
    create_database,
    format_relation,
    open_backend,
    sn_at_least,
    table_ra,
    table_rb,
)


def main() -> None:
    # The two source relations (Table 1 of the paper).  Attribute values
    # are *evidence sets*: mass assignments over sets of domain values
    # derived from reviewer votes; each tuple carries an (sn, sp)
    # membership pair.
    db = Database("tourist_bureau")
    db.add(table_ra())
    db.add(table_rb())
    print(format_relation(db.get("RA"), title="R_A (Minnesota Daily)"))
    print()
    print(format_relation(db.get("RB"), title="R_B (Star Tribune)"))
    print()

    # Attribute-value conflict resolution = the extended union: tuples
    # matched on the key have every attribute (and the membership)
    # pooled with Dempster's rule of combination.  `union` here is an
    # expression -- lazy until collected.
    integrated = db.rel("RA").union(db.rel("RB"))
    print(
        format_relation(
            integrated.collect(), title="Integrated (Table 4 of the paper)"
        )
    )
    print()

    # Query processing returns answers with a full range of certainty --
    # one result set, graded by the revised (sn, sp), instead of
    # DeMichiel's separate true/may-be sets.  The chain below reuses the
    # union subplan just collected: the session caches subtree results
    # by plan fingerprint.
    excellent = (
        integrated
        .select(attr("rating").is_({"ex"}), sn_at_least("1/2"))
        .project("rname", "rating")
    )
    print("Optimized plan:")
    print(excellent.explain())
    print()
    print("Restaurants rated excellent with sn >= 0.5:")
    for row in excellent.collect():
        print(
            f"  {row.key()[0]:<10} rating={row.evidence('rating').format()} "
            f"(sn,sp)={row.membership.format(style='decimal')}"
        )
    print()

    # The SQL front end lowers into the identical plans (and shares the
    # same caches -- note the subplan hits in the session stats).
    same = db.query(
        "SELECT rname, rating FROM (RA UNION RB) WHERE rating IS {ex} WITH SN >= 0.5"
    )
    assert same.same_tuples(excellent.collect())
    print(f"session: {db.session().stats().summary()}")
    print()

    # Streaming integration: the same result, built incrementally.
    # Each upsert folds one tuple of evidence into the entity's cached
    # combined state (a single Dempster combination); flush() publishes
    # the integrated relation into the catalog and re-collects any
    # subscribed queries.
    engine = StreamEngine(db.get("RA").schema, name="R_LIVE", database=db)
    for etuple in table_ra():
        engine.upsert("daily", etuple)
    engine.flush()

    watching = db.session().subscribe(
        "SELECT rname, rating FROM R_LIVE WHERE rating IS {ex} WITH SN >= 0.5"
    )
    print(f"subscribed after source 1: {len(watching.result)} excellent")

    for etuple in table_rb():
        engine.upsert("tribune", etuple)
    delta = engine.flush()  # publishes + refreshes the subscription
    print(f"after source 2, {delta.summary()}")
    print(f"subscription now sees {len(watching.result)} excellent")
    assert engine.relation.same_tuples(integrated.collect())
    assert watching.result.same_tuples(excellent.collect())
    print(f"stream: {engine.stats().summary()}")
    print()

    # The evidence kernel.  Every combination above ran on the compact
    # kernel (repro.ds.kernel): because `rating` is an *enumerated*
    # domain, its frame is interned -- each value gets a bit position --
    # and focal elements become int bitmasks, so Dempster's pairwise
    # intersections are bitwise-ANDs instead of frozenset operations.
    # Compilation is lazy (the first combination or belief query
    # triggers it) and purely representational: results are identical,
    # exact Fractions stay exact.  Evidence over unenumerable domains
    # (open text, numerics) transparently uses the symbolic fallback
    # path.  Inspect any value via `is_compiled`:
    sample = next(iter(engine.relation))
    rating = sample.evidence("rating")
    print(f"{sample.key()[0]} rating evidence compiled? {rating.is_compiled}")
    print(f"compiled form: {rating.mass_function.compiled()!r}")

    from repro.ds import kernel_stats

    print(kernel_stats().summary())
    print()

    # Execution & parallelism.  The integration semantics are
    # per-entity (definite keys identify real-world entities; merges
    # never mix entities), so the physical layer (repro.exec) can shard
    # every relation into hash partitions and fan the partition tasks
    # out over a worker pool -- `configure(executor=..., workers=...)`,
    # or the REPRO_EXECUTOR / REPRO_WORKERS environment variables, or
    # `repro stream DB EVENTS --schema REL --workers 4` on the CLI.
    # The default stays serial; with any executor and any partition
    # count the results are *identical* to the serial path (same
    # tuples, same order, exact masses -- property-tested), so turning
    # parallelism on is purely a performance decision.
    from repro.exec import current_config, exec_stats, executor_scope
    from repro.session import Session

    serial_union = integrated.collect()
    with executor_scope(executor="thread", workers=4) as config:
        print(config.describe())  # also shown by `repro repl` :stats
        # A fresh session, so the collect below really re-executes
        # (the default session would serve its cached result).
        parallel = Session(db).execute("RA UNION RB BY (rname)")
        assert parallel.same_tuples(serial_union)
        assert [t.key() for t in parallel] == [t.key() for t in serial_union]
        print(exec_stats().summary())
    print(f"back to the default: {current_config().describe()}")
    print()

    # The adaptive runtime.  Picking an executor and partition count by
    # hand is itself a tuning burden, so `REPRO_EXECUTOR=auto` (or
    # executor="auto") hands the choice to a cost model (repro.exec.cost):
    # each batch is priced from its entity count, sources per entity,
    # focal-set sizes and the live kernel-vs-fallback ratio, then routed
    # to the serial loop, the thread pool, or the process pool --
    # whichever the estimate says finishes first.  Process batches with
    # picklable payloads dispatch through a *warm* worker pool
    # (repro.exec.warmpool, disable with REPRO_WARM_POOL=0): the fork is
    # paid once and every later batch ships as compact pickled chunks,
    # which is what makes process workers profitable on the small
    # batches a stream engine flushes all day.  Routing is invisible in
    # the results -- auto is property-tested bit-for-bit against serial.
    from repro.exec import cost

    with executor_scope(executor="auto", workers=4):
        with cost.workload(sources=2.0, focal=4.0):
            decision = cost.decide_for(len(serial_union), workers=4)
        print(f"cost model on this workload: {decision.describe()}")
        adaptive = Session(db).execute("RA UNION RB BY (rname)")
        assert adaptive.same_tuples(serial_union)
        assert [t.key() for t in adaptive] == [t.key() for t in serial_union]
    # Persistence is adaptive too: sqlite stream flushes rewrite only
    # the hash shards the batch touched (bytes written scale with the
    # *delta*, watch storage.sqlite.bytes_written), quiet flushes skip
    # the backend entirely, and REPRO_AUTOCOMPACT=1 keeps a log:
    # journal bounded by compacting once it outgrows its last compact
    # size (`repro compact DB` does the same on demand).
    print()

    # Distributed execution.  Beyond one machine's cores, the remote
    # executor (repro.exec.remote) scatters encoded partition batches
    # to worker daemons over TCP or unix sockets and gathers replies in
    # exact serial order.  Start daemons with `repro worker serve
    # HOST:PORT`, point REPRO_WORKERS_ADDRS at them (comma-separated)
    # and set REPRO_EXECUTOR=remote -- or let `repro worker run -n 4 --
    # CMD` wire up a loopback cluster around any command.  Transport
    # failures re-scatter the dead worker's chunks to survivors
    # (exec.remote.retries); with no cluster at all the executor
    # degrades to local execution, so remote is always safe to enable.
    # The cost model prices every batch against the measured round-trip
    # latency and bytes-per-item, so small batches never leave the
    # process (REPRO_REMOTE_THRESHOLD pins the gate; 0 forces the wire).
    from repro.exec.remote import spawn_local_cluster
    from repro.obs import registry as obs_registry

    with spawn_local_cluster(2) as cluster:
        os.environ["REPRO_WORKERS_ADDRS"] = cluster.addr_spec
        os.environ["REPRO_REMOTE_THRESHOLD"] = "0"
        try:
            with executor_scope(executor="remote", workers=2, partitions=4):
                distributed = Session(db).execute("RA UNION RB BY (rname)")
            assert distributed.same_tuples(serial_union)
            assert [t.key() for t in distributed] == [
                t.key() for t in serial_union
            ]
        finally:
            del os.environ["REPRO_WORKERS_ADDRS"]
            del os.environ["REPRO_REMOTE_THRESHOLD"]
        wire = obs_registry().collect()
        print(f"distributed over {cluster!r}")
        print(
            f"  exec.remote.batches={wire['exec.remote.batches']} "
            f"tasks={wire['exec.remote.tasks']} "
            f"bytes_sent={wire['exec.remote.bytes_sent']}"
        )
    print()

    # Shard-resident workers.  Start daemons with `repro worker serve
    # HOST:PORT --store sqlite:shards.db` (or `repro worker run -n 4
    # --store -- CMD`) and each one owns a local shard store.  The
    # coordinator then ships entity *keys* instead of encoded tuples:
    # before a batch scatters it pushes only the dirty-shard delta since
    # the last sync (the stream engine's flush deltas and
    # Database.persist feed it), workers point-load their rows locally,
    # and repeated integrations over slowly-changing sources stop
    # re-sending the same tuples every batch.  Fallback rules: a stale
    # store epoch, a dead worker, a worker without --store, or an
    # unpublished relation quietly re-ships that chunk (or batch) as
    # tuples -- results are bit-for-bit the serial ones either way.
    # REPRO_REMOTE_LOCALITY=0 disables keyed scatter, =1 skips the cost
    # gate; by default the cost model prices key bytes + pending sync
    # against tuple shipping per batch.  Watch it work through
    # exec.remote.locality_hits / locality_misses / bytes_saved.
    from repro.integration import Federation, TupleMerger

    with tempfile.TemporaryDirectory() as shards:
        with spawn_local_cluster(2, store_dir=shards) as cluster:
            os.environ["REPRO_WORKERS_ADDRS"] = cluster.addr_spec
            os.environ["REPRO_REMOTE_THRESHOLD"] = "0"
            os.environ["REPRO_REMOTE_LOCALITY"] = "1"
            try:
                federation = Federation(TupleMerger(on_conflict="vacuous"))
                federation.add_source("RA", table_ra())
                federation.add_source("RB", table_rb())
                with executor_scope(
                    executor="serial", workers=1, partitions=None
                ):
                    baseline, _ = federation.integrate(name="F")
                with executor_scope(
                    executor="remote", workers=2, partitions=4
                ):
                    keyed, _ = federation.integrate(name="F")
                    keyed_again, _ = federation.integrate(name="F")
                assert keyed == baseline
                assert keyed_again == baseline
            finally:
                del os.environ["REPRO_WORKERS_ADDRS"]
                del os.environ["REPRO_REMOTE_THRESHOLD"]
                del os.environ["REPRO_REMOTE_LOCALITY"]
            locality = obs_registry().collect()
            print("shard-resident workers (keys, not tuples):")
            print(
                f"  exec.remote.locality_hits="
                f"{locality['exec.remote.locality_hits']} "
                f"locality_misses="
                f"{locality['exec.remote.locality_misses']} "
                f"bytes_saved={locality['exec.remote.bytes_saved']}"
            )
    print()

    # Persistence & backends.  Storage locations are URLs -- `json:`
    # (one human-readable file per database, the historical format),
    # `sqlite:` (one row per tuple: single relations load without
    # parsing the rest, partition layouts persist per tuple), `log:`
    # (append-only JSONL journal) -- or bare paths resolved by the
    # REPRO_STORAGE environment variable and the file extension.  Every
    # engine round-trips relations bit-for-bit: exact Fractions stay
    # exact, floats survive via shortest repr, tuple order and domains
    # are preserved.  Pick json for portability and small catalogs,
    # sqlite for point reads into big catalogs, log for audit trails
    # and durable streams.
    with tempfile.TemporaryDirectory() as scratch:
        store = create_database(f"sqlite:{Path(scratch) / 'fed.sqlite'}", "fed")
        store.add(table_ra())
        store.add(engine.relation)
        store.persist()                       # whole catalog, one version bump
        reopened = Database.open(store.backend.url())
        assert reopened.get("RA") == table_ra()
        # ... and the sqlite engine reads one relation without
        # deserializing the rest of the database:
        hot = reopened.backend.load_relation("R_LIVE")
        assert hot.same_tuples(engine.relation)
        print(f"reopened {reopened.backend.describe()}")
        reopened.close()
        store.close()

        # Streams become durable by attaching a backend: each flush
        # writes the batch ahead of publishing.  A log: backend keeps a
        # write-ahead event journal whose replay rebuilds the engine --
        # relation, per-source state, watermark -- exactly.
        wal = open_backend(f"log:{Path(scratch) / 'wal.jsonl'}")
        durable = StreamEngine(table_ra().schema, name="R_WAL", backend=wal)
        for etuple in table_ra():
            durable.upsert("daily", etuple)
        durable.flush()
        recovered = wal.recover_stream("R_WAL")   # e.g. after a crash
        assert recovered.relation == durable.relation
        assert recovered.watermark == durable.watermark == 6
        print(
            f"recovered stream 'R_WAL' at watermark {recovered.watermark} "
            f"from {wal.url()}"
        )
        wal.close()
    print()

    # Observability & profiling.  Everything above was also *measured*:
    # each layer keeps thread-local counters and registers them with the
    # process-wide metrics registry (repro.obs), so one snapshot covers
    # kernel combinations, executor fan-out, session caches, stream
    # ingest and per-backend storage I/O.  The same data is exported by
    # `repro stats [DB] [--json|--prometheus]` and the repl's `:stats`.
    from repro import registry, span, tracing_scope
    from repro.obs import take_records

    snapshot = registry().collect()
    print(f"metrics registry: {len(snapshot)} instruments, e.g.")
    for name in ("kernel.kernel_combinations", "session.queries",
                 "stream.upserts", "session.result_cache_hit_ratio"):
        print(f"  {name} = {snapshot[name]}")
    # ... and any Prometheus scraper can consume the same registry:
    assert "repro_kernel_kernel_combinations" in registry().prometheus()

    # EXPLAIN ANALYZE: run a query once, uncached, and get the plan
    # back annotated per node with wall time, exact row counts and the
    # kernel-vs-fallback combination split (repl: `:profile Q`).
    profile = db.session().explain_analyze(
        "SELECT rname, rating FROM (RA UNION RB BY (rname)) "
        "WHERE rating IS {ex} WITH SN >= 0.5"
    )
    print()
    print(profile.describe())
    assert profile.rows == profile.root.rows_out
    assert all(node.wall_seconds >= 0.0 for node in profile.nodes())

    # Structured tracing is off by default (zero cost on the hot path);
    # flip it on process-wide with REPRO_TRACE=1, `--trace-out FILE` on
    # the CLI, or locally with a scope.  Spans nest parent/child and
    # cross process-pool workers back to the dispatching call.
    with tracing_scope():
        with span("quickstart.traced", step=9):
            db.session().execute("RA UNION RB BY (rname)")
        traced = take_records()
    assert any(record.name == "session.execute" for record in traced)
    print(f"tracing scope captured {len(traced)} span record(s)")
    print()

    # Correctness invariants & static analysis.  Everything demonstrated
    # above rests on four invariants that ordinary tests only probe
    # pointwise, so the repo ships an AST-based analyzer (reprolint,
    # `python -m repro.analysis` / `make lint-analysis`, run in CI) that
    # enforces them structurally across the whole source tree:
    #
    #   EXACT    mass values are exact Fractions end to end: no float
    #            literals, float() casts or bare `/` division on the
    #            mass paths (repro.ds / repro.algebra).  This is what
    #            lets the kernel-vs-frozenset equivalence suite (PR 3,
    #            tests/ds/test_kernel.py) demand *equality*, not
    #            approximation.
    #   DETERM   no unordered-set iteration flows into returned or
    #            serialized order, and nothing time- or random-derived
    #            reaches plan fingerprints -- the executor-equivalence
    #            suite (PR 4, tests/exec/) asserts any executor at any
    #            partition count reproduces the serial tuple order
    #            bit-for-bit, which only holds if no code path depends
    #            on PYTHONHASHSEED.
    #   CONC     module-level mutable state written from
    #            executor-reachable code must be locked or thread-local
    #            (the kernel/exec STATS counters aggregate thread-local
    #            cells), and process-pool closures must not capture
    #            file handles, sqlite connections or locks across fork.
    #   BACKEND  every StorageBackend engine implements the full
    #            abstract surface, and every mutating save/delete hook
    #            bumps catalog_version -- the invariants behind the PR 5
    #            round-trip suite (tests/storage/).
    #
    # Deliberate boundary crossings (presenting a mass as a decimal,
    # entropy measures that are floats by definition) carry inline
    # `# repro: ignore[RULE]` pragmas; accepted debt lives in
    # analysis-baseline.json, where a fixed finding turns its entry
    # stale and *fails* the run until the baseline is regenerated with
    # --write-baseline.  The shipped tree is clean:
    from repro.analysis.lint import analyze

    repo_root = Path(__file__).resolve().parent.parent
    report = analyze(
        [repo_root / "src"],
        baseline_path=repo_root / "analysis-baseline.json",
    )
    assert report.clean
    print(
        f"reprolint: {report.files} files analyzed, "
        f"{len(report.findings)} findings, "
        f"{len(report.ignored)} documented pragma exemptions"
    )


if __name__ == "__main__":
    main()
