#!/usr/bin/env python3
"""Quickstart: resolve attribute conflicts between two databases.

This walks the paper's core loop in ~40 lines of API:

1. load the two news agencies' restaurant relations (Table 1),
2. integrate them with the extended union (Dempster's rule, Table 4),
3. query the integrated relation with graded membership answers.

Run:  python examples/quickstart.py
"""

from repro import Database, format_relation, table_ra, table_rb, union


def main() -> None:
    # The two source relations (Table 1 of the paper).  Attribute values
    # are *evidence sets*: mass assignments over sets of domain values
    # derived from reviewer votes; each tuple carries an (sn, sp)
    # membership pair.
    ra = table_ra()
    rb = table_rb()
    print(format_relation(ra, title="R_A (Minnesota Daily)"))
    print()
    print(format_relation(rb, title="R_B (Star Tribune)"))
    print()

    # Attribute-value conflict resolution = the extended union: tuples
    # matched on the key have every attribute (and the membership)
    # pooled with Dempster's rule of combination.
    integrated = union(ra, rb, name="R")
    print(format_relation(integrated, title="Integrated (Table 4 of the paper)"))
    print()

    # Query processing returns answers with a full range of certainty --
    # one result set, graded by the revised (sn, sp), instead of
    # DeMichiel's separate true/may-be sets.
    db = Database("tourist_bureau")
    db.add(integrated)
    excellent = db.query(
        "SELECT rname, rating FROM R WHERE rating IS {ex} WITH SN >= 0.5"
    )
    print("Restaurants rated excellent with sn >= 0.5:")
    for row in excellent:
        print(
            f"  {row.key()[0]:<10} rating={row.evidence('rating').format()} "
            f"(sn,sp)={row.membership.format(style='decimal')}"
        )


if __name__ == "__main__":
    main()
