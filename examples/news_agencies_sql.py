#!/usr/bin/env python3
"""Query processing over extended relations: the SQL-like language.

Loads the full Figure 2 global schema for both agencies -- Restaurant
(R), Manager (M) and the n:m Managed-by relationship (RM) -- integrates
each pair, and then runs a tour of the query language:

* is-predicates and theta-predicates with membership thresholds,
* extended union as a query (``RA UNION RB BY (rname)``),
* joins across entity and relationship relations (the paper's claim
  that both integrate and query uniformly),
* EXPLAIN output showing the optimizer's selection pushdown.

Run:  python examples/news_agencies_sql.py
"""

from repro import Database, format_relation, union
from repro.datasets.restaurants import (
    table_m_a,
    table_m_b,
    table_ra,
    table_rb,
    table_rm_a,
    table_rm_b,
)


def show(db: Database, title: str, text: str) -> None:
    print(f"-- {title}")
    print(f"   {text}")
    result = db.query(text)
    print(format_relation(result, title=f"   -> {len(result)} tuple(s)"))
    print()


def main() -> None:
    db = Database("tourist_bureau")
    for relation in (
        table_ra(),
        table_rb(),
        table_m_a(),
        table_m_b(),
        table_rm_a(),
        table_rm_b(),
    ):
        db.add(relation)

    # Integrate entity AND relationship relations the same way --
    # Section 4: "relations modeling both entity and relationship types
    # can be integrated in a uniform manner".
    db.add(union(table_ra(), table_rb(), name="R"))
    db.add(union(table_m_a(), table_m_b(), name="M"))
    db.add(union(table_rm_a(), table_rm_b(), name="RM"))

    show(
        db,
        "Sichuan restaurants, any support (Table 2 on the sources)",
        "SELECT * FROM RA WHERE speciality IS {si}",
    )
    show(
        db,
        "Mughalai AND excellent (Table 3's compound predicate)",
        "SELECT rname, speciality, rating FROM RA "
        "WHERE speciality IS {mu} AND rating IS {ex}",
    )
    show(
        db,
        "The integrated relation as a query (Table 4)",
        "RA UNION RB BY (rname)",
    )
    show(
        db,
        "Definite answers only: WITH SN = 1 on the integrated relation",
        "SELECT rname, rating FROM R WHERE rating IS {ex} WITH SN = 1",
    )
    show(
        db,
        "Theta-predicate on a certain attribute",
        "SELECT rname, bldg_no FROM R WHERE bldg_no >= 600",
    )
    show(
        db,
        "Who manages the excellent restaurants? (entity-relationship join)",
        "SELECT R_rname, RM_rname, mname, rating FROM R JOIN RM "
        "ON R.rname = RM.rname WHERE rating IS {ex} WITH SN >= 0.5",
    )

    print("-- EXPLAIN: the speciality conjunct is pushed below the product")
    text = (
        "SELECT R_rname, RM_rname, mname, speciality FROM R JOIN RM "
        "ON R.rname = RM.rname WHERE speciality IS {si}"
    )
    print(f"   {text}")
    print(db.explain(text))


if __name__ == "__main__":
    main()
