"""Remote scatter/gather: federation integrate over a loopback cluster.

The claim the remote executor exists for: with real cores behind the
daemons, scattering encoded partition batches over sockets beats the
serial loop while producing the identical relation.  This bench
integrates a >= 2k-entity, 3-source federation serially and against
1/2/4-worker local clusters, asserts every remote result equals the
serial relation exactly (tuples *and* order), and -- on a machine with
at least 4 cores -- requires >= 2x at 4 workers
(``REMOTE_BENCH_RATIO_FLOOR`` relaxes the bar on noisy shared runners;
smaller boxes run the equivalence checks and record the timings).

It also pins the cost gate: a handful-of-items batch must never leave
the process, whatever the cluster looks like -- the wire threshold is
what keeps remote execution safe to leave enabled.

The shard-locality claim rides along: against workers owning shard
stores, a *repeated* integration must ship measurably fewer wire bytes
as entity keys than as encoded tuples, with both modes bit-for-bit
equal to serial.

Float masses, as in ``bench_parallel_integration``: exact fractions
would measure bigint growth rather than the execution layer.
"""

import os
import time

import pytest

from repro.datasets.generators import SyntheticConfig, synthetic_relation
from repro.exec import executor_scope
from repro.integration import Federation, TupleMerger
from repro.obs import registry

#: Entities per source (3 sources -> 3x this many stored tuples).
N_ENTITIES = int(os.environ.get("REMOTE_BENCH_ENTITIES", "2000"))
N_SOURCES = 3
CLUSTER_SIZES = (1, 2, 4)
#: Required federation speedup at 4 remote workers on a 4+-core box.
RATIO_FLOOR = float(os.environ.get("REMOTE_BENCH_RATIO_FLOOR", "2"))


def _timed(operation, repeats: int = 3):
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = operation()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.fixture(scope="module")
def federation():
    federation = Federation(TupleMerger(on_conflict="vacuous"))
    for index in range(N_SOURCES):
        config = SyntheticConfig(
            n_tuples=N_ENTITIES,
            conflict=0.4,
            ignorance=1.0,
            exact=False,
            seed=71 + index,
        )
        name = f"s{index}"
        federation.add_source(name, synthetic_relation(config, name))
    return federation


@pytest.fixture(scope="module")
def serial_result(federation):
    with executor_scope(executor="serial", workers=1, partitions=None):
        elapsed, (relation, _) = _timed(lambda: federation.integrate(name="F"))
    return elapsed, relation


def _remote_scope(
    addr_spec: str,
    workers: int,
    threshold: str | None,
    locality: str | None = None,
):
    saved = {
        key: os.environ.get(key)
        for key in (
            "REPRO_WORKERS_ADDRS",
            "REPRO_REMOTE_THRESHOLD",
            "REPRO_REMOTE_LOCALITY",
        )
    }

    class _Scope:
        def __enter__(self):
            os.environ["REPRO_WORKERS_ADDRS"] = addr_spec
            if threshold is None:
                os.environ.pop("REPRO_REMOTE_THRESHOLD", None)
            else:
                os.environ["REPRO_REMOTE_THRESHOLD"] = threshold
            if locality is None:
                os.environ.pop("REPRO_REMOTE_LOCALITY", None)
            else:
                os.environ["REPRO_REMOTE_LOCALITY"] = locality
            self._exec = executor_scope(
                executor="remote", workers=workers, partitions=workers * 2
            )
            self._exec.__enter__()
            return self

        def __exit__(self, *exc_info):
            self._exec.__exit__(*exc_info)
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value

    return _Scope()


def test_remote_scaling_is_exact_and_recorded(
    federation, serial_result, bench_record
):
    """Integrate against 1/2/4-worker clusters; record, require equality."""
    from repro.exec.remote import spawn_local_cluster

    serial_elapsed, serial_relation = serial_result
    print(f"\nfederation integrate, serial: {serial_elapsed * 1e3:.1f} ms")
    bench_record("remote_integrate_serial_seconds", serial_elapsed)
    for size in CLUSTER_SIZES:
        with spawn_local_cluster(size) as cluster:
            with _remote_scope(cluster.addr_spec, size, threshold="0"):
                batches_before = registry().collect()["exec.remote.batches"]
                elapsed, (relation, _) = _timed(
                    lambda: federation.integrate(name="F")
                )
                batches = (
                    registry().collect()["exec.remote.batches"]
                    - batches_before
                )
        ratio = serial_elapsed / elapsed
        print(
            f"federation integrate, {size}-worker cluster: "
            f"{elapsed * 1e3:.1f} ms ({ratio:.2f}x vs serial, "
            f"{batches} remote batch(es))"
        )
        bench_record(f"remote_integrate_{size}_workers_seconds", elapsed)
        bench_record(f"remote_integrate_{size}_workers_speedup", ratio)
        assert batches >= 1, "the batch must actually cross the wire"
        assert relation == serial_relation
        assert list(relation.keys()) == list(serial_relation.keys())


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup floor only meaningful with >= 4 cores",
)
def test_remote_4_workers_beats_serial(federation, serial_result):
    """The acceptance bar: >= 2x at a 4-worker cluster on a 4+-core box."""
    from repro.exec.remote import spawn_local_cluster

    serial_elapsed, serial_relation = serial_result
    with spawn_local_cluster(4) as cluster:
        with _remote_scope(cluster.addr_spec, 4, threshold="0"):
            elapsed, (relation, _) = _timed(
                lambda: federation.integrate(name="F")
            )
    ratio = serial_elapsed / elapsed
    print(f"\n4-worker cluster: {ratio:.2f}x vs serial (floor {RATIO_FLOOR}x)")
    assert relation == serial_relation
    assert ratio >= RATIO_FLOOR


def test_keyed_scatter_ships_fewer_bytes_than_tuples(
    federation, serial_result, bench_record, tmp_path
):
    """Shard-resident workers: repeated integrations ship keys, not rows.

    Runs the same federation twice per mode against a 4-worker cluster
    whose daemons own shard stores: once with locality forced off
    (PR 9's tuple shipping) and once forced on.  The first keyed run
    pays the shard sync; the *second* -- the repeated-integration case
    the locality layer exists for -- must put measurably fewer bytes on
    the wire than tuple shipping does, while both modes stay bit-for-bit
    equal to the serial fold.
    """
    from repro.exec import cost
    from repro.exec.remote import spawn_local_cluster

    _, serial_relation = serial_result
    wire_bytes = {}
    for mode, label in (("0", "tuple"), ("1", "keyed")):
        cost.reset_remote_samples()
        store_dir = tmp_path / label
        store_dir.mkdir()
        with spawn_local_cluster(4, store_dir=store_dir) as cluster:
            with _remote_scope(
                cluster.addr_spec, 4, threshold="0", locality=mode
            ):
                relation, _ = federation.integrate(name="F")
                assert relation == serial_relation
                sent_before = registry().collect()["exec.remote.bytes_sent"]
                hits_before = registry().collect()[
                    "exec.remote.locality_hits"
                ]
                relation, _ = federation.integrate(name="F")
                collected = registry().collect()
                sent = collected["exec.remote.bytes_sent"] - sent_before
                hits = collected["exec.remote.locality_hits"] - hits_before
        assert relation == serial_relation
        assert list(relation.keys()) == list(serial_relation.keys())
        if label == "keyed":
            assert hits >= 1, "the repeated run must hit the shard stores"
        wire_bytes[label] = sent
        bench_record(f"remote_{label}_repeat_bytes_sent", sent)
    saved = wire_bytes["tuple"] - wire_bytes["keyed"]
    print(
        f"\nrepeated integrate, bytes sent: tuple {wire_bytes['tuple']}, "
        f"keyed {wire_bytes['keyed']} ({saved} saved)"
    )
    bench_record("remote_keyed_repeat_bytes_saved", saved)
    assert wire_bytes["keyed"] < wire_bytes["tuple"], (
        f"key-only scatter must ship fewer bytes than tuple shipping at "
        f"{N_ENTITIES} entities per source: keyed {wire_bytes['keyed']} "
        f">= tuple {wire_bytes['tuple']}"
    )


def test_sub_threshold_batches_never_leave_the_process(bench_record):
    """The cost gate: a tiny federation stays local even with a cluster."""
    from repro.exec import cost
    from repro.exec.remote import spawn_local_cluster

    cost.reset_remote_samples()
    tiny = Federation(TupleMerger(on_conflict="vacuous"))
    for index in range(2):
        config = SyntheticConfig(
            n_tuples=6, conflict=0.4, ignorance=1.0, exact=False, seed=index
        )
        tiny.add_source(f"s{index}", synthetic_relation(config, f"s{index}"))
    with executor_scope(executor="serial", workers=1, partitions=None):
        expected, _ = tiny.integrate(name="T")
    with spawn_local_cluster(2) as cluster:
        # threshold=None: the cost model itself must keep this local
        with _remote_scope(cluster.addr_spec, 2, threshold=None):
            batches_before = registry().collect()["exec.remote.batches"]
            actual, _ = tiny.integrate(name="T")
            shipped = (
                registry().collect()["exec.remote.batches"] - batches_before
            )
    bench_record("remote_sub_threshold_batches_shipped", shipped)
    assert shipped == 0, "a 6-entity batch must never pay a round trip"
    assert actual == expected
    assert list(actual.keys()) == list(expected.keys())
