"""Remote scatter/gather: federation integrate over a loopback cluster.

The claim the remote executor exists for: with real cores behind the
daemons, scattering encoded partition batches over sockets beats the
serial loop while producing the identical relation.  This bench
integrates a >= 2k-entity, 3-source federation serially and against
1/2/4-worker local clusters, asserts every remote result equals the
serial relation exactly (tuples *and* order), and -- on a machine with
at least 4 cores -- requires >= 2x at 4 workers
(``REMOTE_BENCH_RATIO_FLOOR`` relaxes the bar on noisy shared runners;
smaller boxes run the equivalence checks and record the timings).

It also pins the cost gate: a handful-of-items batch must never leave
the process, whatever the cluster looks like -- the wire threshold is
what keeps remote execution safe to leave enabled.

Float masses, as in ``bench_parallel_integration``: exact fractions
would measure bigint growth rather than the execution layer.
"""

import os
import time

import pytest

from repro.datasets.generators import SyntheticConfig, synthetic_relation
from repro.exec import executor_scope
from repro.integration import Federation, TupleMerger
from repro.obs import registry

#: Entities per source (3 sources -> 3x this many stored tuples).
N_ENTITIES = int(os.environ.get("REMOTE_BENCH_ENTITIES", "2000"))
N_SOURCES = 3
CLUSTER_SIZES = (1, 2, 4)
#: Required federation speedup at 4 remote workers on a 4+-core box.
RATIO_FLOOR = float(os.environ.get("REMOTE_BENCH_RATIO_FLOOR", "2"))


def _timed(operation, repeats: int = 3):
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = operation()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.fixture(scope="module")
def federation():
    federation = Federation(TupleMerger(on_conflict="vacuous"))
    for index in range(N_SOURCES):
        config = SyntheticConfig(
            n_tuples=N_ENTITIES,
            conflict=0.4,
            ignorance=1.0,
            exact=False,
            seed=71 + index,
        )
        name = f"s{index}"
        federation.add_source(name, synthetic_relation(config, name))
    return federation


@pytest.fixture(scope="module")
def serial_result(federation):
    with executor_scope(executor="serial", workers=1, partitions=None):
        elapsed, (relation, _) = _timed(lambda: federation.integrate(name="F"))
    return elapsed, relation


def _remote_scope(addr_spec: str, workers: int, threshold: str | None):
    saved = {
        key: os.environ.get(key)
        for key in ("REPRO_WORKERS_ADDRS", "REPRO_REMOTE_THRESHOLD")
    }

    class _Scope:
        def __enter__(self):
            os.environ["REPRO_WORKERS_ADDRS"] = addr_spec
            if threshold is None:
                os.environ.pop("REPRO_REMOTE_THRESHOLD", None)
            else:
                os.environ["REPRO_REMOTE_THRESHOLD"] = threshold
            self._exec = executor_scope(
                executor="remote", workers=workers, partitions=workers * 2
            )
            self._exec.__enter__()
            return self

        def __exit__(self, *exc_info):
            self._exec.__exit__(*exc_info)
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value

    return _Scope()


def test_remote_scaling_is_exact_and_recorded(
    federation, serial_result, bench_record
):
    """Integrate against 1/2/4-worker clusters; record, require equality."""
    from repro.exec.remote import spawn_local_cluster

    serial_elapsed, serial_relation = serial_result
    print(f"\nfederation integrate, serial: {serial_elapsed * 1e3:.1f} ms")
    bench_record("remote_integrate_serial_seconds", serial_elapsed)
    for size in CLUSTER_SIZES:
        with spawn_local_cluster(size) as cluster:
            with _remote_scope(cluster.addr_spec, size, threshold="0"):
                batches_before = registry().collect()["exec.remote.batches"]
                elapsed, (relation, _) = _timed(
                    lambda: federation.integrate(name="F")
                )
                batches = (
                    registry().collect()["exec.remote.batches"]
                    - batches_before
                )
        ratio = serial_elapsed / elapsed
        print(
            f"federation integrate, {size}-worker cluster: "
            f"{elapsed * 1e3:.1f} ms ({ratio:.2f}x vs serial, "
            f"{batches} remote batch(es))"
        )
        bench_record(f"remote_integrate_{size}_workers_seconds", elapsed)
        bench_record(f"remote_integrate_{size}_workers_speedup", ratio)
        assert batches >= 1, "the batch must actually cross the wire"
        assert relation == serial_relation
        assert list(relation.keys()) == list(serial_relation.keys())


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup floor only meaningful with >= 4 cores",
)
def test_remote_4_workers_beats_serial(federation, serial_result):
    """The acceptance bar: >= 2x at a 4-worker cluster on a 4+-core box."""
    from repro.exec.remote import spawn_local_cluster

    serial_elapsed, serial_relation = serial_result
    with spawn_local_cluster(4) as cluster:
        with _remote_scope(cluster.addr_spec, 4, threshold="0"):
            elapsed, (relation, _) = _timed(
                lambda: federation.integrate(name="F")
            )
    ratio = serial_elapsed / elapsed
    print(f"\n4-worker cluster: {ratio:.2f}x vs serial (floor {RATIO_FLOOR}x)")
    assert relation == serial_relation
    assert ratio >= RATIO_FLOOR


def test_sub_threshold_batches_never_leave_the_process(bench_record):
    """The cost gate: a tiny federation stays local even with a cluster."""
    from repro.exec import cost
    from repro.exec.remote import spawn_local_cluster

    cost.reset_remote_samples()
    tiny = Federation(TupleMerger(on_conflict="vacuous"))
    for index in range(2):
        config = SyntheticConfig(
            n_tuples=6, conflict=0.4, ignorance=1.0, exact=False, seed=index
        )
        tiny.add_source(f"s{index}", synthetic_relation(config, f"s{index}"))
    with executor_scope(executor="serial", workers=1, partitions=None):
        expected, _ = tiny.integrate(name="T")
    with spawn_local_cluster(2) as cluster:
        # threshold=None: the cost model itself must keep this local
        with _remote_scope(cluster.addr_spec, 2, threshold=None):
            batches_before = registry().collect()["exec.remote.batches"]
            actual, _ = tiny.integrate(name="T")
            shipped = (
                registry().collect()["exec.remote.batches"] - batches_before
            )
    bench_record("remote_sub_threshold_batches_shipped", shipped)
    assert shipped == 0, "a 6-entity batch must never pay a round trip"
    assert actual == expected
    assert list(actual.keys()) == list(expected.keys())
