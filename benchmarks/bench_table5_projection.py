"""Table 5: the extended projection
project[rname, phone, speciality, rating, (sn,sp)](R_A).

Asserts the reproduction (all six tuples, memberships carried) and
measures the operation.
"""

from repro.algebra import project
from repro.datasets.restaurants import expected_table5
from repro.storage import format_relation

PROJECTION = ["rname", "phone", "speciality", "rating"]


def test_table5_projection(benchmark, ra):
    result = benchmark(project, ra, PROJECTION)
    assert result.same_tuples(expected_table5())
    assert len(result) == 6
    assert result.schema.names == tuple(PROJECTION)
    print()
    print(format_relation(result, title="Table 5 (reproduced)"))
