"""Table 4: the extended union  R_A union_(rname) R_B.

This is the paper's central operation -- attribute-value conflict
resolution via Dempster's rule.  Asserts the integrated relation equals
Table 4 exactly (including the printed decimals 0.655/0.276/0.069,
0.143/0.857, 0.069/0.931 and the (0.83, 0.83) membership) and measures
the merge.
"""

from fractions import Fraction

from repro.algebra import union
from repro.datasets.restaurants import expected_table4
from repro.ds.notation import format_mass_value
from repro.storage import format_relation


def test_table4_union(benchmark, ra, rb):
    result = benchmark(union, ra, rb)
    assert result.same_tuples(expected_table4())

    garden = result.get("garden")
    speciality = garden.evidence("speciality")
    assert format_mass_value(speciality.mass({"si"}), "decimal", 3) == "0.655"
    assert format_mass_value(speciality.mass({"hu"}), "decimal", 3) == "0.276"
    assert format_mass_value(speciality.ignorance(), "decimal", 3) == "0.069"
    rating = garden.evidence("rating")
    assert rating.mass({"ex"}) == Fraction(1, 7)   # printed 0.143
    assert rating.mass({"gd"}) == Fraction(6, 7)   # printed 0.857

    mehl = result.get("mehl")
    assert mehl.membership.format(style="decimal") == "(0.83,0.83)"
    assert mehl.evidence("best_dish").mass({"d24"}) == Fraction(2, 29)
    assert mehl.evidence("best_dish").mass({"d31"}) == Fraction(27, 29)

    print()
    print(format_relation(result, title="Table 4 (reproduced)"))
