"""Partitioned physical execution: federation + stream flush scaling.

The claim the partitioned layer exists for: the paper's integration
semantics decompose per entity, so with enough cores the Dempster-merge
work of ``Federation.integrate`` and ``StreamEngine.flush`` scales with
the worker count.  This bench measures both hot paths at 1/2/4/8
process workers against the serial baseline, asserts every parallel
result equals the serial relation exactly (tuples *and* order), and --
on a machine with at least 4 cores -- requires >= 2x on federation
integrate at 4 process workers (``PARALLEL_BENCH_RATIO_FLOOR`` relaxes
the bar on noisy shared runners; single- and dual-core boxes only run
the equivalence checks and record the timings).

Float masses, as in ``bench_stream_ingest``: repeated exact-fraction
combination grows denominators without bound, which would measure
bigint arithmetic rather than the execution layer.
"""

import os
import time

import pytest

from repro.datasets.generators import SyntheticConfig, synthetic_relation
from repro.exec import executor_scope
from repro.integration import Federation, TupleMerger
from repro.stream import StreamEngine

#: Entities per source (3 sources -> 3x this many stored tuples).
N_ENTITIES = int(os.environ.get("PARALLEL_BENCH_ENTITIES", "1200"))
N_SOURCES = 3
WORKER_COUNTS = (1, 2, 4, 8)
#: Required federation speedup at 4 process workers on a 4+-core box.
RATIO_FLOOR = float(os.environ.get("PARALLEL_BENCH_RATIO_FLOOR", "2"))
#: Upserts re-asserted per measured flush in the stream scaling runs.
DELTA = 64


def _sources():
    relations = {}
    for index in range(N_SOURCES):
        config = SyntheticConfig(
            n_tuples=N_ENTITIES,
            conflict=0.4,
            ignorance=1.0,
            exact=False,
            seed=23 + index,
        )
        name = f"s{index}"
        relations[name] = synthetic_relation(config, name)
    return relations


@pytest.fixture(scope="module")
def federation():
    relations = _sources()
    federation = Federation(TupleMerger(on_conflict="vacuous"))
    for name, relation in relations.items():
        federation.add_source(name, relation)
    return federation


@pytest.fixture(scope="module")
def serial_result(federation):
    with executor_scope(executor="serial", workers=1, partitions=None):
        elapsed, (relation, _) = _timed(lambda: federation.integrate(name="F"))
    return elapsed, relation


def _timed(operation, repeats: int = 3):
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = operation()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _loaded_engine(relations):
    engine = StreamEngine(
        list(relations.values())[0].schema,
        name="F",
        merger=TupleMerger(on_conflict="vacuous"),
    )
    for name, relation in relations.items():
        for etuple in relation:
            engine.upsert(name, etuple)
    engine.flush()
    return engine


def test_federation_scaling_is_exact_and_recorded(
    federation, serial_result, bench_record
):
    """Integrate at every worker count; record timings, require equality."""
    serial_elapsed, serial_relation = serial_result
    print(f"\nfederation integrate, serial: {serial_elapsed * 1e3:.1f} ms")
    bench_record("integrate_serial_seconds", serial_elapsed)
    for workers in WORKER_COUNTS:
        with executor_scope(executor="process", workers=workers):
            elapsed, (relation, _) = _timed(
                lambda: federation.integrate(name="F")
            )
        ratio = serial_elapsed / elapsed
        print(
            f"federation integrate, {workers} process worker(s): "
            f"{elapsed * 1e3:.1f} ms ({ratio:.2f}x vs serial)"
        )
        bench_record(f"integrate_{workers}_workers_seconds", elapsed)
        bench_record(f"integrate_{workers}_workers_speedup", ratio)
        assert relation == serial_relation
        assert list(relation.keys()) == list(serial_relation.keys())


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup floor only meaningful with >= 4 cores",
)
def test_federation_4_workers_beats_serial(federation, serial_result):
    """The acceptance bar: >= 2x at 4 process workers on a 4+-core box."""
    serial_elapsed, serial_relation = serial_result
    with executor_scope(executor="process", workers=4):
        elapsed, (relation, _) = _timed(lambda: federation.integrate(name="F"))
    ratio = serial_elapsed / elapsed
    print(f"\n4 process workers: {ratio:.2f}x vs serial (floor {RATIO_FLOOR}x)")
    assert relation == serial_relation
    assert ratio >= RATIO_FLOOR


def test_stream_flush_scaling_is_exact_and_recorded():
    """Flush a dirty micro-batch at every worker count; require equality."""
    relations = _sources()
    delta = tuple(_sources()["s0"])[:DELTA]

    def run(scope_kwargs):
        with executor_scope(**scope_kwargs):
            engine = _loaded_engine(relations)

            def measured():
                for etuple in delta:
                    engine.upsert("s0", etuple)
                return engine.flush()

            elapsed, _ = _timed(measured)
        return elapsed, engine.relation

    serial_elapsed, serial_relation = run(
        dict(executor="serial", workers=1, partitions=None)
    )
    print(
        f"\nstream flush ({DELTA} dirty upserts), serial: "
        f"{serial_elapsed * 1e3:.1f} ms"
    )
    for workers in WORKER_COUNTS:
        elapsed, relation = run(dict(executor="thread", workers=workers))
        print(
            f"stream flush, {workers} thread worker(s): "
            f"{elapsed * 1e3:.1f} ms "
            f"({serial_elapsed / elapsed:.2f}x vs serial)"
        )
        assert relation == serial_relation
        assert list(relation.keys()) == list(serial_relation.keys())
