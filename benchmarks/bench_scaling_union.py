"""Scaling: extended union cost versus relation size and arithmetic mode.

The paper reports no timings (its prototype was Prolog); these benches
document the implementation's behaviour:

* union cost should grow ~linearly in the number of tuples (matching is
  hash-based on keys; per-tuple work is bounded by evidence size);
* exact Fraction arithmetic versus float masses is the accuracy/speed
  ablation called out in DESIGN.md.
"""

import pytest

from repro.algebra import union
from benchmarks.conftest import SCALE_SIZES, synthetic_workload


@pytest.mark.parametrize("n_tuples", SCALE_SIZES)
def test_union_scaling_exact(benchmark, n_tuples):
    left, right = synthetic_workload(n_tuples, exact=True)
    result = benchmark(union, left, right, None, "vacuous")
    matched = sum(1 for t in right if t.key() in left)
    assert len(result) == 2 * n_tuples - matched


@pytest.mark.parametrize("n_tuples", SCALE_SIZES)
def test_union_scaling_float(benchmark, n_tuples):
    left, right = synthetic_workload(n_tuples, exact=False)
    result = benchmark(union, left, right, None, "vacuous")
    matched = sum(1 for t in right if t.key() in left)
    assert len(result) == 2 * n_tuples - matched


def test_union_overlap_ablation(benchmark):
    """Full-overlap unions do maximal combination work."""
    from repro.datasets.generators import SyntheticConfig, synthetic_pair

    config = SyntheticConfig(
        n_tuples=200, overlap=1.0, conflict=0.3, ignorance=0.3, seed=7
    )
    left, right = synthetic_pair(config)
    result = benchmark(union, left, right, None, "vacuous")
    assert len(result) == len(left)
