"""Baselines: the Section 1.3 comparison on a shared workload.

Integrates the same matched-pair workload under each approach and
asserts the qualitative relationships the paper argues:

* **Dayal aggregates** refuse every non-numeric conflicting attribute
  (they only exist for numbers);
* **DeMichiel partial values** fail outright on disjoint candidate sets
  that the evidential approach either reconciles (renormalization) or
  at least *reports* with a quantified kappa;
* **Tseng-style mixtures** retain inconsistency: their pooled
  distributions keep values the evidential result eliminates;
* **PDM** loses every set-valued focal element to its wildcard.

Each bench measures its approach's integration pass over the workload.
"""

import pytest

from repro.baselines.aggregates import AggregateResolver
from repro.baselines.partial_values import combine_partial, to_partial_value
from repro.baselines.pdm import pdm_combine_missing, pdm_from_evidence
from repro.baselines.probabilistic import (
    ProbabilisticPartialValue,
    combine_probabilistic,
)
from repro.errors import TotalConflictError
from repro.integration import TupleMerger
from benchmarks.conftest import synthetic_workload


@pytest.fixture(scope="module")
def workload():
    return synthetic_workload(150)


@pytest.fixture(scope="module")
def matched_pairs(workload):
    left, right = workload
    return [
        (left.get(t.key()), t) for t in right if t.key() in left
    ]


def test_baseline_evidential(benchmark, workload):
    left, right = workload
    merger = TupleMerger(on_conflict="vacuous")
    merged, report = benchmark(merger.merge, left, right)
    assert len(report.matched) > 0
    # Dempster quantifies every conflict it resolves.
    assert all(record.kappa > 0 for record in report.conflicts)


def test_baseline_aggregates_refuse_non_numeric(benchmark, matched_pairs):
    """Dayal's approach cannot integrate the categorical attribute."""
    left_rows = [
        {"id": l.key()[0], "label": l.value("label").definite_value()}
        for l, _ in matched_pairs
    ]
    right_rows = [
        {"id": r.key()[0], "label": "conflicting-" + r.value("label").definite_value()}
        for _, r in matched_pairs
    ]
    resolver = AggregateResolver("id")
    resolved, refused = benchmark(resolver.resolve, left_rows, right_rows)
    assert len(refused) == len(matched_pairs)  # every label refused
    assert len(resolved) == len(matched_pairs)


def test_baseline_partial_values(benchmark, matched_pairs):
    """DeMichiel: count reconciliation failures the evidential model
    survives."""

    def integrate():
        failures = 0
        merged = []
        for l, r in matched_pairs:
            a = to_partial_value(l.evidence("category"))
            b = to_partial_value(r.evidence("category"))
            try:
                merged.append(combine_partial(a, b))
            except TotalConflictError:
                failures += 1
        return merged, failures

    merged, failures = benchmark(integrate)
    assert failures > 0  # the workload contains irreconcilable cores
    assert len(merged) + failures == len(matched_pairs)


def test_baseline_probabilistic_mixture(benchmark, matched_pairs):
    """Tseng: the mixture keeps values Dempster's rule eliminates."""

    def integrate():
        return [
            combine_probabilistic(
                ProbabilisticPartialValue.from_evidence(l.evidence("category")),
                ProbabilisticPartialValue.from_evidence(r.evidence("category")),
            )
            for l, r in matched_pairs
        ]

    pooled = benchmark(integrate)
    merger = TupleMerger(on_conflict="vacuous")
    retained_inconsistency = 0
    for (l, r), mixture in zip(matched_pairs, pooled):
        try:
            evidential = l.evidence("category").combine(r.evidence("category"))
        except TotalConflictError:
            retained_inconsistency += 1
            continue
        eliminated = {
            value
            for value in mixture.support()
            if evidential.pls({value}) == 0
        }
        retained_inconsistency += bool(eliminated)
    assert retained_inconsistency > 0


def test_baseline_pdm_wildcard_loss(benchmark, matched_pairs):
    """PDM: set-valued evidence collapses into the wildcard."""

    def integrate():
        return [
            pdm_combine_missing(
                pdm_from_evidence(l.evidence("category")),
                pdm_from_evidence(r.evidence("category")),
            )
            for l, r in matched_pairs
            if _compatible(l, r)
        ]

    def _compatible(l, r):
        try:
            pdm_combine_missing(
                pdm_from_evidence(l.evidence("category")),
                pdm_from_evidence(r.evidence("category")),
            )
            return True
        except TotalConflictError:
            return False

    pooled = benchmark(integrate)
    assert pooled
    # Information loss: at least one source pair had set-valued evidence
    # whose distinction PDM's ingestion destroyed.
    lossy = 0
    for l, r in matched_pairs:
        for evidence in (l.evidence("category"), r.evidence("category")):
            d = pdm_from_evidence(evidence)
            if d.missing > evidence.ignorance():
                lossy += 1
                break
    assert lossy > 0
