"""Shared fixtures for the benchmark harness.

Every benchmark both *measures* an operation and *asserts* the
reproduction it corresponds to (a paper table, a worked example, or an
expected qualitative shape), so `pytest benchmarks/ --benchmark-only`
doubles as an end-to-end verification run.

Headline numbers also land in ``BENCH_RESULTS.json`` at the repo root
(override with ``BENCH_RESULTS_PATH``): benches call the
:func:`bench_record` fixture with ``(metric, value)`` pairs, every
record is stamped with the git revision it measured (``rev``, None
outside a checkout), and the session-finish hook read-modify-writes the
JSON list, replacing any stale records of the benches that just ran.
:func:`read_results` reads the file back, normalizing pre-stamping
records to ``rev: None``.  CI uploads the file as an artifact, so every
build leaves a machine-readable performance trail.
"""

from __future__ import annotations

import json
import os
import subprocess
from pathlib import Path

import pytest

from repro.datasets.generators import SyntheticConfig, synthetic_pair
from repro.datasets.restaurants import table_ra, table_rb
from repro.obs import registry

#: Records accumulated this session: {"bench", "metric", "value", "rev"}.
_RECORDS: list[dict] = []

_GIT_REVISION: str | None | bool = False  # False = not resolved yet


def git_revision() -> str | None:
    """The working tree's short commit hash (None outside git / no git)."""
    global _GIT_REVISION
    if _GIT_REVISION is False:
        try:
            _GIT_REVISION = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip() or None
        except (OSError, subprocess.SubprocessError):
            _GIT_REVISION = None
    return _GIT_REVISION


def read_results(path: Path | None = None) -> list[dict]:
    """``BENCH_RESULTS.json`` as a record list, tolerating old layouts.

    Records written before revision stamping carry no ``rev`` field;
    they are normalized to ``rev: None`` so readers can rely on the key
    existing.  A missing or corrupt file reads as an empty list.
    """
    target = path if path is not None else _results_path()
    try:
        raw = json.loads(target.read_text())
    except (OSError, ValueError):
        return []
    if not isinstance(raw, list):
        return []
    records = []
    for record in raw:
        if isinstance(record, dict):
            records.append({"rev": None, **record})
    return records


def _results_path() -> Path:
    override = os.environ.get("BENCH_RESULTS_PATH")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent / "BENCH_RESULTS.json"


@pytest.fixture(autouse=True)
def _fresh_telemetry():
    """Zero the metrics registry so each bench measures only itself."""
    registry().reset()
    yield


@pytest.fixture
def bench_record(request):
    """Append ``{bench, metric, value}`` records for this bench module."""
    bench = Path(request.node.path).stem

    def record(metric: str, value: float) -> None:
        _RECORDS.append(
            {
                "bench": bench,
                "metric": str(metric),
                "value": float(value),
                "rev": git_revision(),
            }
        )

    return record


def pytest_sessionfinish(session, exitstatus):
    if not _RECORDS:
        return
    path = _results_path()
    existing = read_results(path)
    fresh_benches = {record["bench"] for record in _RECORDS}
    kept = [r for r in existing if r.get("bench") not in fresh_benches]
    path.write_text(json.dumps(kept + _RECORDS, indent=2) + "\n")


@pytest.fixture
def ra():
    """The paper's R_A."""
    return table_ra()


@pytest.fixture
def rb():
    """The paper's R_B."""
    return table_rb()


#: Synthetic sweep sizes used by the scaling benches (tuples per source).
SCALE_SIZES = (50, 200, 800)


def synthetic_workload(n_tuples: int, *, exact: bool = True, seed: int = 7):
    """A deterministic union-compatible relation pair for scaling runs."""
    config = SyntheticConfig(
        n_tuples=n_tuples,
        overlap=0.5,
        conflict=0.3,
        ignorance=0.3,
        exact=exact,
        seed=seed,
    )
    return synthetic_pair(config)
