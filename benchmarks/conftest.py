"""Shared fixtures for the benchmark harness.

Every benchmark both *measures* an operation and *asserts* the
reproduction it corresponds to (a paper table, a worked example, or an
expected qualitative shape), so `pytest benchmarks/ --benchmark-only`
doubles as an end-to-end verification run.
"""

from __future__ import annotations

import pytest

from repro.datasets.generators import SyntheticConfig, synthetic_pair
from repro.datasets.restaurants import table_ra, table_rb


@pytest.fixture
def ra():
    """The paper's R_A."""
    return table_ra()


@pytest.fixture
def rb():
    """The paper's R_B."""
    return table_rb()


#: Synthetic sweep sizes used by the scaling benches (tuples per source).
SCALE_SIZES = (50, 200, 800)


def synthetic_workload(n_tuples: int, *, exact: bool = True, seed: int = 7):
    """A deterministic union-compatible relation pair for scaling runs."""
    config = SyntheticConfig(
        n_tuples=n_tuples,
        overlap=0.5,
        conflict=0.3,
        ignorance=0.3,
        exact=exact,
        seed=seed,
    )
    return synthetic_pair(config)
