"""Shared fixtures for the benchmark harness.

Every benchmark both *measures* an operation and *asserts* the
reproduction it corresponds to (a paper table, a worked example, or an
expected qualitative shape), so `pytest benchmarks/ --benchmark-only`
doubles as an end-to-end verification run.

Headline numbers also land in ``BENCH_RESULTS.json`` at the repo root
(override with ``BENCH_RESULTS_PATH``): benches call the
:func:`bench_record` fixture with ``(metric, value)`` pairs and the
session-finish hook read-modify-writes the JSON list, replacing any
stale records of the benches that just ran.  CI uploads the file as an
artifact, so every build leaves a machine-readable performance trail.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.datasets.generators import SyntheticConfig, synthetic_pair
from repro.datasets.restaurants import table_ra, table_rb
from repro.obs import registry

#: Records accumulated this session: {"bench", "metric", "value"} dicts.
_RECORDS: list[dict] = []


def _results_path() -> Path:
    override = os.environ.get("BENCH_RESULTS_PATH")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent / "BENCH_RESULTS.json"


@pytest.fixture(autouse=True)
def _fresh_telemetry():
    """Zero the metrics registry so each bench measures only itself."""
    registry().reset()
    yield


@pytest.fixture
def bench_record(request):
    """Append ``{bench, metric, value}`` records for this bench module."""
    bench = Path(request.node.path).stem

    def record(metric: str, value: float) -> None:
        _RECORDS.append(
            {"bench": bench, "metric": str(metric), "value": float(value)}
        )

    return record


def pytest_sessionfinish(session, exitstatus):
    if not _RECORDS:
        return
    path = _results_path()
    try:
        existing = json.loads(path.read_text())
        if not isinstance(existing, list):
            existing = []
    except (OSError, ValueError):
        existing = []
    fresh_benches = {record["bench"] for record in _RECORDS}
    kept = [r for r in existing if r.get("bench") not in fresh_benches]
    path.write_text(json.dumps(kept + _RECORDS, indent=2) + "\n")


@pytest.fixture
def ra():
    """The paper's R_A."""
    return table_ra()


@pytest.fixture
def rb():
    """The paper's R_B."""
    return table_rb()


#: Synthetic sweep sizes used by the scaling benches (tuples per source).
SCALE_SIZES = (50, 200, 800)


def synthetic_workload(n_tuples: int, *, exact: bool = True, seed: int = 7):
    """A deterministic union-compatible relation pair for scaling runs."""
    config = SyntheticConfig(
        n_tuples=n_tuples,
        overlap=0.5,
        conflict=0.3,
        ignorance=0.3,
        exact=exact,
        seed=seed,
    )
    return synthetic_pair(config)
