"""Figure 1: the end-to-end integration framework.

Measures the full pipeline -- attribute preprocessing (identity mapping,
as the paper's R_A/R_B are already preprocessed), entity identification,
tuple merging -- on the paper's data and on a mid-size synthetic
workload, asserting the paper run reproduces Table 4.
"""

import pytest

from repro.integration import IntegrationPipeline, SchemaMapping, TupleMerger
from repro.datasets.restaurants import expected_table4, restaurant_schema
from benchmarks.conftest import synthetic_workload


def test_fig1_pipeline_paper_data(benchmark, ra, rb):
    pipeline = IntegrationPipeline(
        left_mapping=SchemaMapping.identity(restaurant_schema("G")),
        right_mapping=SchemaMapping.identity(restaurant_schema("G")),
    )
    result = benchmark(pipeline.run, ra, rb)
    assert result.integrated.same_tuples(expected_table4())
    assert len(result.matching.pairs) == 5
    assert result.report.total_conflicts == []


@pytest.mark.parametrize("n_tuples", [100, 400])
def test_fig1_pipeline_synthetic(benchmark, n_tuples):
    left, right = synthetic_workload(n_tuples)
    pipeline = IntegrationPipeline(merger=TupleMerger(on_conflict="vacuous"))
    result = benchmark(pipeline.run, left, right)
    assert len(result.integrated) == len(left) + len(right) - len(
        result.matching.pairs
    )
    # The merge pools evidence for every matched tuple.
    assert len(result.matching.pairs) == round(0.5 * n_tuples)
