"""Scaling: extended selection and join versus relation size and
predicate complexity."""

import pytest

from repro.algebra import And, IsPredicate, ThetaPredicate, equijoin, lit, select
from benchmarks.conftest import SCALE_SIZES, synthetic_workload

SIMPLE = IsPredicate("category", {"c0", "c1"})
COMPOUND = And(
    IsPredicate("category", {"c0", "c1", "c2"}),
    ThetaPredicate("score", ">=", lit(4)),
    ThetaPredicate("score", "<", lit(10)),
)


@pytest.mark.parametrize("n_tuples", SCALE_SIZES)
def test_selection_scaling(benchmark, n_tuples):
    left, _ = synthetic_workload(n_tuples)
    result = benchmark(select, left, SIMPLE)
    assert all(t.membership.is_supported for t in result)


@pytest.mark.parametrize(
    "predicate", [SIMPLE, COMPOUND], ids=["is-predicate", "compound"]
)
def test_selection_predicate_complexity(benchmark, predicate):
    left, _ = synthetic_workload(400)
    result = benchmark(select, left, predicate)
    assert len(result) <= len(left)


@pytest.mark.parametrize("n_tuples", [20, 60])
def test_join_scaling(benchmark, n_tuples):
    """The naive product-based join is quadratic -- documented shape."""
    left, right = synthetic_workload(n_tuples)
    result = benchmark(equijoin, left, right, [("label", "label")])
    # label is unique per key, and overlap keys share labels.
    matched = sum(1 for t in right if t.key() in left)
    assert len(result) == matched
