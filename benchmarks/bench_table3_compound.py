"""Table 3: selection with a compound predicate,
select[sn>0, (speciality is {mu}) and (rating is {ex})](R_A).

Asserts mehl at (0.32, 0.32) and ashiana at (0.9, 1), exactly, and
measures the compound-support evaluation.
"""

from fractions import Fraction

from repro.algebra import And, IsPredicate, select
from repro.datasets.restaurants import expected_table3
from repro.storage import format_relation


def test_table3_compound_selection(benchmark, ra):
    predicate = And(
        IsPredicate("speciality", {"mu"}), IsPredicate("rating", {"ex"})
    )
    result = benchmark(select, ra, predicate)
    assert result.same_tuples(expected_table3())
    assert result.get("mehl").membership.as_tuple() == (
        Fraction(8, 25),
        Fraction(8, 25),
    )
    assert result.get("ashiana").membership.as_tuple() == (Fraction(9, 10), 1)
    print()
    print(format_relation(result, title="Table 3 (reproduced)"))
