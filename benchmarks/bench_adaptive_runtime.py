"""The adaptive runtime: warm-pool dispatch, dirty shards, auto routing.

Three claims from the adaptive-runtime work, each measured and asserted:

* **Warm pool**: dispatching a small encoded batch (64 items) to the
  persistent warm worker pool beats fork-per-batch dispatch by at least
  ``ADAPTIVE_BENCH_RATIO_FLOOR`` (default 5x) -- the fork-and-teardown
  tax dominates small batches, and the warm pool pays it once.
* **O(delta) persistence**: a one-entity stream flush against the
  SQLite backend writes a small fraction of the full-relation payload
  (``storage.sqlite.bytes_written`` scales with the *changed* hash
  shards, not the relation size).
* **Auto routing**: ``REPRO_EXECUTOR=auto`` integrates a heavy
  federation workload bit-for-bit identically to serial; the speedup it
  buys is recorded.

Headline numbers land in ``BENCH_RESULTS.json`` via ``bench_record``.
"""

import multiprocessing
import os
import time

import pytest

from repro.datasets.generators import SyntheticConfig, synthetic_relation
from repro.exec import executor_scope
from repro.exec.executors import ProcessExecutor
from repro.integration import Federation, TupleMerger
from repro.model.relation import partition_index
from repro.obs import registry
from repro.storage import open_backend
from repro.storage.backends.sqlite import STREAM_SHARDS
from repro.stream import StreamEngine

#: Items per encoded batch -- deliberately small: the regime where the
#: fork tax dominates and the warm pool earns its keep.
BATCH_ITEMS = 64
#: Required warm-over-fork dispatch speedup (relaxable on noisy CI).
RATIO_FLOOR = float(os.environ.get("ADAPTIVE_BENCH_RATIO_FLOOR", "5"))
#: Stream relation size for the dirty-shard byte measurements.
N_STREAM_ENTITIES = int(os.environ.get("ADAPTIVE_BENCH_ENTITIES", "512"))


def _has_fork() -> bool:
    try:
        multiprocessing.get_context("fork")
    except (ImportError, ValueError):
        return False
    return True


def _timed(operation, repeats: int = 3):
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = operation()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _mix(common, item):
    """A tiny picklable task: timing is dominated by dispatch."""
    total = common
    for value in range(64):
        total = (total * 31 + value * item) % 1_000_003
    return total


@pytest.mark.skipif(not _has_fork(), reason="requires the fork start method")
def test_warm_pool_beats_fork_per_batch(bench_record):
    items = list(range(BATCH_ITEMS))
    expected = [_mix(7, item) for item in items]
    warm = ProcessExecutor(workers=2, warm=True)
    cold = ProcessExecutor(workers=2, warm=False)
    # Pay the one-time fork before measuring: steady-state dispatch is
    # the quantity the stream engine sees on every flush.
    assert warm.map_encoded(_mix, 7, items) == expected
    warm_elapsed, warm_result = _timed(
        lambda: warm.map_encoded(_mix, 7, items), repeats=5
    )
    cold_elapsed, cold_result = _timed(
        lambda: cold.map_encoded(_mix, 7, items), repeats=5
    )
    assert warm_result == expected
    assert cold_result == expected
    ratio = cold_elapsed / warm_elapsed
    print(
        f"\nencoded batch of {BATCH_ITEMS}: warm {warm_elapsed * 1e3:.2f} ms, "
        f"fork-per-batch {cold_elapsed * 1e3:.2f} ms ({ratio:.1f}x)"
    )
    bench_record("warm_dispatch_seconds", warm_elapsed)
    bench_record("fork_dispatch_seconds", cold_elapsed)
    bench_record("warm_vs_fork_speedup", ratio)
    assert ratio >= RATIO_FLOOR


def test_dirty_shard_flush_bytes_scale_with_the_delta(
    tmp_path, bench_record
):
    config = SyntheticConfig(
        n_tuples=N_STREAM_ENTITIES,
        conflict=0.3,
        ignorance=1.0,
        exact=False,
        seed=41,
    )
    relation = synthetic_relation(config, "s0")
    etuples = list(relation)
    bytes_written = registry().counter("storage.sqlite.bytes_written")
    with open_backend(f"sqlite:{tmp_path / 'stream.sqlite'}") as backend:
        engine = StreamEngine(
            relation.schema,
            name="s0",
            backend=backend,
            merger=TupleMerger(on_conflict="vacuous"),
        )
        for etuple in etuples:
            engine.upsert("a", etuple)
        before = bytes_written.value
        engine.flush()
        full = bytes_written.value - before
        # Re-assert one entity with a second source: one dirty shard.
        engine.upsert("b", etuples[0])
        before = bytes_written.value
        engine.flush()
        delta = bytes_written.value - before
        loaded = backend.load_relation("s0")
        assert loaded == engine.relation
        assert list(loaded.keys()) == list(engine.relation.keys())
    shard_fraction = len(
        [e for e in etuples if partition_index(e.key(), STREAM_SHARDS) == 0]
    ) / len(etuples)
    print(
        f"\nflush payload: full {full:,} B, one-entity delta {delta:,} B "
        f"({delta / full:.1%} of full; one shard holds ~{shard_fraction:.1%})"
    )
    bench_record("full_flush_bytes", full)
    bench_record("dirty_flush_bytes", delta)
    bench_record("dirty_vs_full_fraction", delta / full)
    # One changed entity dirties one of the 16 shards: the write must be
    # a small fraction of the relation payload, not O(relation).
    assert 0 < delta < full / 4


def test_auto_matches_serial_and_records_the_speedup(bench_record):
    federation = Federation(TupleMerger(on_conflict="vacuous"))
    for index in range(3):
        config = SyntheticConfig(
            n_tuples=800,
            conflict=0.4,
            ignorance=1.0,
            exact=False,
            seed=61 + index,
        )
        name = f"s{index}"
        federation.add_source(name, synthetic_relation(config, name))
    with executor_scope(executor="serial", workers=1, partitions=None):
        serial_elapsed, (serial_relation, _) = _timed(
            lambda: federation.integrate(name="F")
        )
    with executor_scope(executor="auto", workers=os.cpu_count() or 1):
        auto_elapsed, (auto_relation, _) = _timed(
            lambda: federation.integrate(name="F")
        )
    ratio = serial_elapsed / auto_elapsed
    print(
        f"\nfederation integrate: serial {serial_elapsed * 1e3:.1f} ms, "
        f"auto {auto_elapsed * 1e3:.1f} ms ({ratio:.2f}x)"
    )
    bench_record("integrate_serial_seconds", serial_elapsed)
    bench_record("integrate_auto_seconds", auto_elapsed)
    bench_record("auto_vs_serial_speedup", ratio)
    # The hard contract is exactness; the speedup is recorded evidence.
    assert auto_relation == serial_relation
    assert list(auto_relation.keys()) == list(serial_relation.keys())
