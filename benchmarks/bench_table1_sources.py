"""Table 1: regenerating the source relations from raw survey data.

The paper derives R_A's evidence sets from six-reviewer vote tallies
(Section 1.2) and menu classification (Section 2.1).  This bench rebuilds
the *garden* row's three uncertain attributes from those raw summaries
and asserts they equal Table 1's stored evidence exactly, then measures
the full R_A/R_B construction.
"""

from fractions import Fraction

from repro.datasets.restaurants import (
    best_dish_domain,
    rating_domain,
    speciality_domain,
    table_ra,
    table_rb,
)
from repro.sources.classification import ClassificationRule, Classifier
from repro.sources.voting import VotePanel


def derive_garden_evidence():
    """garden's yrating / ybest_dish / yspeciality from raw summaries."""
    rating_panel = VotePanel(rating_domain())
    rating_panel.cast("ex", count=2)
    rating_panel.cast("gd", count=3)
    rating_panel.cast("avg", count=1)

    dish_panel = VotePanel(best_dish_domain())
    dish_panel.cast("d31", count=3)
    dish_panel.cast_set({"d35", "d36"}, count=3)

    classifier = Classifier(
        speciality_domain(),
        [
            ClassificationRule("szechuan", {"si"}),
            ClassificationRule("hunan", {"hu"}),
        ],
    )
    menu = (
        [f"szechuan dish {i}" for i in range(2)]
        + ["hunan special"]
        + ["house mystery"]
    )
    return (
        rating_panel.to_evidence(),
        dish_panel.to_evidence(),
        classifier.classify_items(menu),
    )


def test_table1_garden_from_raw_summaries(benchmark):
    rating, best_dish, speciality = benchmark(derive_garden_evidence)
    garden = table_ra().get("garden")
    assert rating == garden.evidence("rating")
    assert best_dish == garden.evidence("best_dish")
    assert speciality == garden.evidence("speciality")


def test_table1_source_construction(benchmark):
    """Materializing both Table 1 relations (validation included)."""

    def build():
        return table_ra(), table_rb()

    ra, rb = benchmark(build)
    assert len(ra) == 6
    assert len(rb) == 5
    assert ra.get("mehl").membership.as_tuple() == (Fraction(1, 2), Fraction(1, 2))
    assert rb.get("mehl").membership.as_tuple() == (Fraction(4, 5), 1)
