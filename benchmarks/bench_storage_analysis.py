"""Storage and analysis layer costs.

* JSON serialization round-trip of extended relations (the bracket
  notation keeps files human-readable; this bench keeps it honest on
  speed and verifies losslessness at scale);
* decision views and quality reports over the integrated relation.
"""

import json

import pytest

from repro.analysis import decide, relation_quality
from repro.algebra import union
from repro.storage.serialization import relation_from_json, relation_to_json
from repro.datasets.restaurants import table_ra, table_rb
from benchmarks.conftest import synthetic_workload


@pytest.mark.parametrize("n_tuples", [100, 400])
def test_serialization_round_trip(benchmark, n_tuples):
    relation, _ = synthetic_workload(n_tuples)

    def round_trip():
        return relation_from_json(
            json.loads(json.dumps(relation_to_json(relation)))
        )

    recovered = benchmark(round_trip)
    assert recovered == relation  # lossless, including exact fractions


def test_decision_view(benchmark):
    integrated = union(table_ra(), table_rb(), name="R")
    rows = benchmark(decide, integrated, "pignistic")
    assert len(rows) == 6
    garden = next(r for r in rows if r.key == ("garden",))
    assert garden.values["speciality"] == "si"


def test_quality_report(benchmark):
    left, right = synthetic_workload(200)
    integrated = union(left, right, on_conflict="vacuous")
    report = benchmark(relation_quality, integrated)
    assert report.n_tuples == len(integrated)
    # Integration must not make the category attribute less specific
    # than the noisier of the two sources.
    before = relation_quality(left).attribute("category")
    after = report.attribute("category")
    assert after.mean_nonspecificity <= before.mean_nonspecificity + 0.5
