"""Section 2.1 worked example: mass, belief and plausibility for the
restaurant *wok*.

m({cantonese}) = 1/2, m({hunan, sichuan}) = 1/3, m(OMEGA) = 1/6;
Bel({ca, hu, si}) = 5/6 and Pls({ca, hu, si}) = 1.
"""

from fractions import Fraction

from repro.ds import MassFunction, OMEGA, belief, plausibility

CHINESE = {"cantonese", "hunan", "sichuan"}


def build_and_measure():
    m = MassFunction(
        {"cantonese": "1/2", ("hunan", "sichuan"): "1/3", OMEGA: "1/6"}
    )
    return m, belief(m, CHINESE), plausibility(m, CHINESE)


def test_section21_mass_example(benchmark):
    m, bel, pls = benchmark(build_and_measure)
    assert bel == Fraction(5, 6)
    assert pls == 1
    # m({cantonese}) > m({cantonese, hunan}): mass is per-subset.
    assert m[{"cantonese"}] > m[{"cantonese", "hunan"}]
