"""Table 2: the extended selection  select[sn>0, speciality is {si}](R_A).

Asserts the exact reproduction (garden (0.5, 0.75), wok (1, 1), all
other tuples excluded with sn = 0) and measures the operation.
"""

from fractions import Fraction

from repro.algebra import IsPredicate, select
from repro.datasets.restaurants import expected_table2
from repro.storage import format_relation


def test_table2_selection(benchmark, ra):
    predicate = IsPredicate("speciality", {"si"})
    result = benchmark(select, ra, predicate)
    assert result.same_tuples(expected_table2())
    assert [t.key()[0] for t in result] == ["garden", "wok"]
    assert result.get("garden").membership.as_tuple() == (
        Fraction(1, 2),
        Fraction(3, 4),
    )
    print()
    print(format_relation(result, title="Table 2 (reproduced)"))
