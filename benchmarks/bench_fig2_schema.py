"""Figure 2: the global schema with entity and relationship relations.

Integrates all three relation pairs of the global schema -- Restaurant
(entity), Manager (entity) and the n:m Managed-by relationship -- with
the *same* extended union, then answers an entity-relationship query
across the integrated database.  This exercises the paper's conclusion
that "relations modeling both entity and relationship types can be
integrated in a uniform manner".
"""

from repro.algebra import union
from repro.storage import Database
from repro.datasets.restaurants import (
    table_m_a,
    table_m_b,
    table_ra,
    table_rb,
    table_rm_a,
    table_rm_b,
)

QUERY = (
    "SELECT R_rname, RM_rname, mname, rating FROM R JOIN RM "
    "ON R.rname = RM.rname WHERE rating IS {ex} WITH SN >= 0.5"
)


def integrate_global_schema():
    db = Database("tourist_bureau")
    db.add(union(table_ra(), table_rb(), name="R"))
    db.add(union(table_m_a(), table_m_b(), name="M"))
    db.add(union(table_rm_a(), table_rm_b(), name="RM"))
    return db


def test_fig2_uniform_integration(benchmark):
    db = benchmark(integrate_global_schema)
    assert len(db.get("R")) == 6
    assert len(db.get("M")) == 5   # chen/lee merged, patel/olsen/rossi single
    assert len(db.get("RM")) == 7
    # The relationship tuple (mehl, patel) pooled membership evidence
    # from both DBs: (1,1) (+) (0.6, 0.8) sharpens to certainty.
    merged = db.get("RM").get(("mehl", "patel"))
    assert merged.membership.is_certain
    assert not table_rm_b().get(("mehl", "patel")).membership.is_certain


def test_fig2_entity_relationship_query(benchmark):
    db = integrate_global_schema()
    result = benchmark(db.query, QUERY)
    managers = sorted({t.value("mname") for t in result})
    assert managers == ["olsen", "patel"]
