"""Storage-backend scaling: save / load / point-load per engine.

The claim the backend layer exists for: persistence cost should follow
the *operation*, not the database.  The monolithic JSON file pays a full
parse for any read and a full rewrite for any write; the SQLite engine
reads exactly the rows it needs.  This bench measures, at 1k and 10k
tuples per engine:

* ``save``        -- persist the whole database,
* ``load``        -- load the whole database back,
* ``point-load``  -- load one *small* relation (64 tuples) out of a
  database that also holds the big one: the selective-read case.

Asserted: the SQLite point-load beats the full-JSON-parse point-load by
>= 5x at 10k tuples (``STORAGE_BENCH_RATIO_FLOOR`` relaxes the bar on
noisy shared runners).  Every timed load is also equality-checked
against the source relations -- speed never trades away exactness.
"""

import os
import time
from pathlib import Path

import pytest

from repro.datasets.generators import SyntheticConfig, synthetic_relation
from repro.storage import resolve_backend
from repro.storage.database import Database

SIZES = (1_000, 10_000)
HOT_TUPLES = 64
SCHEMES = ("json", "sqlite", "log")
_SUFFIX = {"json": "json", "sqlite": "sqlite", "log": "jsonl"}
#: Required sqlite-vs-json point-load speedup at the largest size.
RATIO_FLOOR = float(os.environ.get("STORAGE_BENCH_RATIO_FLOOR", "5"))


def _timed(operation, repeats: int = 2):
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = operation()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.fixture(scope="module", params=SIZES, ids=lambda n: f"{n}tuples")
def workload(request):
    n = request.param
    # Float evidence: repeated exact-fraction arithmetic is not what a
    # storage engine should be measured on.
    big = synthetic_relation(
        SyntheticConfig(n_tuples=n, seed=11, exact=False, ignorance=0.5),
        "BIG",
    )
    hot = synthetic_relation(
        SyntheticConfig(n_tuples=HOT_TUPLES, seed=13, exact=False), "HOT"
    )
    db = Database("bench")
    db.add(big)
    db.add(hot)
    return n, db, big, hot


def test_backend_scaling(workload, tmp_path_factory, capsys, bench_record):
    n, db, big, hot = workload
    directory = tmp_path_factory.mktemp(f"storage-{n}")
    timings: dict[str, dict[str, float]] = {}
    for scheme in SCHEMES:
        url = f"{scheme}:{Path(directory) / f'bench.{_SUFFIX[scheme]}'}"
        with resolve_backend(url) as backend:
            save_time, _ = _timed(lambda: backend.save_database(db), repeats=1)
            load_time, loaded = _timed(backend.load_database, repeats=1)
            assert loaded.get("BIG") == big
            assert loaded.get("HOT") == hot
            point_time, point = _timed(
                lambda: backend.load_relation("HOT"), repeats=3
            )
            assert point == hot
            timings[scheme] = {
                "save": save_time,
                "load": load_time,
                "point": point_time,
            }
            for op, seconds in timings[scheme].items():
                bench_record(f"{scheme}_{op}_seconds_{n}_tuples", seconds)

    with capsys.disabled():
        print(f"\nstorage backends at {n} tuples (+{HOT_TUPLES} hot):")
        print(f"  {'engine':<8} {'save':>9} {'load':>9} {'point-load':>11}")
        for scheme, row in timings.items():
            print(
                f"  {scheme:<8} {row['save'] * 1e3:>7.1f}ms "
                f"{row['load'] * 1e3:>7.1f}ms {row['point'] * 1e3:>9.2f}ms"
            )
        ratio = timings["json"]["point"] / max(
            timings["sqlite"]["point"], 1e-9
        )
        print(
            f"  sqlite point-load vs full JSON parse: {ratio:.1f}x "
            f"(floor {RATIO_FLOOR}x at {SIZES[-1]} tuples)"
        )

    if n == SIZES[-1]:
        assert ratio >= RATIO_FLOOR, (
            f"sqlite point-load only {ratio:.1f}x over the full JSON "
            f"parse at {n} tuples (need >= {RATIO_FLOOR}x)"
        )
