"""Kernel-path vs frozenset-path Dempster combination.

The compact evidence kernel (:mod:`repro.ds.kernel`) encodes focal
elements of an enumerated frame as int bitmasks, so the pairwise
intersections of Dempster's rule become bitwise-ANDs with no per-pair
set allocation and no frozenset hashing.  This bench pins the claim the
kernel exists for: on float masses (the large-scale configuration; with
exact Fractions the bigint arithmetic dominates both paths) a
combination over an enumerated frame must run >= 5x faster than the
same combination forced onto the frozenset path.

Both paths produce identical results -- asserted here and verified
property-based in ``tests/ds/test_kernel.py``.
"""

import os
import random
import time
from fractions import Fraction

import pytest

from repro.ds import MassFunction, combine, combine_all, kernel_disabled
from repro.ds.frame import OMEGA, FrameOfDiscernment

UNIVERSE = [f"v{i:02d}" for i in range(24)]
FRAME = FrameOfDiscernment("universe", UNIVERSE)
#: Focal elements per operand (the rule is quadratic in this).
N_FOCAL = 16
#: Required kernel-vs-frozenset speedup on float masses.  Asserted at
#: full strength locally; shared CI runners set a looser floor via the
#: environment so scheduler noise cannot fail the build.
RATIO_FLOOR = float(os.environ.get("KERNEL_BENCH_RATIO_FLOOR", "5"))


def _make_mass(n_focal: int, seed: int, exact: bool) -> MassFunction:
    rng = random.Random(f"{seed}/{n_focal}/{exact}")
    elements = [OMEGA]
    seen = set()
    while len(elements) < n_focal:
        element = frozenset(rng.sample(UNIVERSE, rng.randint(1, 3)))
        if element not in seen:
            seen.add(element)
            elements.append(element)
    weights = [rng.randint(1, 9) for _ in elements]
    total = sum(weights)
    if exact:
        masses = {e: Fraction(w, total) for e, w in zip(elements, weights)}
    else:
        masses = {e: w / total for e, w in zip(elements, weights)}
    return MassFunction(masses, FRAME)


@pytest.fixture(scope="module")
def operands():
    m1 = _make_mass(N_FOCAL, seed=1, exact=False)
    m2 = _make_mass(N_FOCAL, seed=2, exact=False)
    # Compile up front: relations compile once and combine many times,
    # so steady-state combination cost is what matters.
    m1.compiled(), m2.compiled()
    return m1, m2


def test_equivalence_of_the_two_paths(operands):
    """Sanity: the kernel changes the representation, not the result."""
    m1, m2 = operands
    on_kernel = combine(m1, m2)
    with kernel_disabled():
        on_sets = combine(m1, m2)
    assert dict(on_kernel.items()) == dict(on_sets.items())
    assert on_kernel.is_compiled and not on_sets.is_compiled


def test_kernel_path_combination(benchmark, operands):
    m1, m2 = operands
    combined = benchmark(combine, m1, m2)
    assert abs(float(sum(v for _, v in combined.items())) - 1.0) < 1e-9


def test_frozenset_path_combination(benchmark, operands):
    m1, m2 = operands
    with kernel_disabled():
        combined = benchmark(combine, m1, m2)
    assert abs(float(sum(v for _, v in combined.items())) - 1.0) < 1e-9


def test_exact_fraction_combination(benchmark):
    """Exact masses for reference: Fraction arithmetic dominates both
    paths, so the kernel's win is smaller here (reported, not gated)."""
    m1 = _make_mass(N_FOCAL, seed=1, exact=True)
    m2 = _make_mass(N_FOCAL, seed=2, exact=True)
    combined = benchmark(combine, m1, m2)
    assert sum(v for _, v in combined.items()) == 1


def test_kernel_chain_fold(benchmark):
    """Folding ten float sources: intermediates stay compiled."""
    sources = [_make_mass(6, seed=i, exact=False) for i in range(10)]
    combined = benchmark(combine_all, sources)
    assert combined.is_compiled


def test_kernel_beats_frozenset_5x(operands, bench_record):
    """The acceptance bar: >= 5x on float masses over an enumerated
    frame (RATIO_FLOOR relaxes it on noisy shared runners)."""
    m1, m2 = operands

    kernel_time = min(_timed(lambda: combine(m1, m2)) for _ in range(7))
    with kernel_disabled():
        frozenset_time = min(
            _timed(lambda: combine(m1, m2)) for _ in range(7)
        )
    ratio = frozenset_time / kernel_time
    print(
        f"\nkernel {kernel_time * 1e6:.1f} us vs "
        f"frozenset {frozenset_time * 1e6:.1f} us -> {ratio:.1f}x"
    )
    bench_record("kernel_combine_seconds", kernel_time)
    bench_record("frozenset_combine_seconds", frozenset_time)
    bench_record("kernel_vs_frozenset_ratio", ratio)
    assert ratio >= RATIO_FLOOR


def _timed(operation, repeats: int = 50) -> float:
    started = time.perf_counter()
    for _ in range(repeats):
        operation()
    return (time.perf_counter() - started) / repeats
