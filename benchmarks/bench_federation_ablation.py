"""Ablations: conflict policies, intersection vs union, n-way federation.

Design choices DESIGN.md calls out, measured:

* **conflict policy** -- raise/vacuous/drop cost the same on clean data;
  on conflicting data, the report-and-continue policies trade a little
  bookkeeping for robustness;
* **intersection vs union** -- the consensus operation does strictly
  less work (no pass-through tuples);
* **federation width** -- folding 2/4/8 sources is linear in the number
  of pairwise merges, and order-independent on conflict-free evidence.
"""

import pytest

from repro.algebra import intersection, union
from repro.integration import Federation, TupleMerger
from repro.datasets.generators import SyntheticConfig, synthetic_relation
from benchmarks.conftest import synthetic_workload


@pytest.fixture(scope="module")
def workload():
    return synthetic_workload(200)


@pytest.mark.parametrize("policy", ["vacuous", "drop"])
def test_conflict_policy_ablation(benchmark, workload, policy):
    left, right = workload
    result = benchmark(union, left, right, None, policy)
    assert len(result) > 0


def test_intersection_vs_union(benchmark, workload):
    left, right = workload
    consensus = benchmark(intersection, left, right, None, "vacuous")
    integrated = union(left, right, on_conflict="vacuous")
    # The consensus is exactly the matched subset of the union.
    assert set(consensus.keys()) <= set(integrated.keys())
    assert len(consensus) < len(integrated)


def test_entity_point_query_vs_materialization(benchmark):
    """On-demand single-entity merging beats materializing everything
    when only one entity is asked for -- the seed of the paper's
    query-processing-with-conflict-resolution direction."""
    config = SyntheticConfig(n_tuples=400, ignorance=1.0, seed=13)
    sources = [synthetic_relation(config, name) for name in ("A", "B", "C")]
    federation = Federation(TupleMerger(on_conflict="vacuous"))
    for index, relation in enumerate(sources):
        federation.add_source(f"s{index}", relation)

    on_demand = benchmark(federation.integrate_entity, (7,))
    materialized, _ = federation.integrate(name="F")
    row = materialized.get((7,))
    assert on_demand.membership == row.membership
    assert on_demand.evidence("category") == row.evidence("category")


@pytest.mark.parametrize("n_sources", [2, 4, 8])
def test_federation_width(benchmark, n_sources):
    config = SyntheticConfig(n_tuples=60, ignorance=1.0, seed=11)
    sources = [
        synthetic_relation(config, name)
        for name in (f"S{i}" for i in range(n_sources))
    ]

    def integrate():
        federation = Federation(TupleMerger(on_conflict="vacuous"))
        for index, relation in enumerate(sources):
            federation.add_source(f"s{index}", relation)
        return federation.integrate(name="F")

    integrated, report = benchmark(integrate)
    assert len(integrated) == 60  # all sources share the key space
    assert len(report.steps) == n_sources - 1
    # Full ignorance mass on every evidence set -> no total conflicts.
    assert report.total_conflicts == 0
