"""Scaling: Dempster's rule versus the number of focal elements.

The rule is quadratic in focal-element count (all pairs are
intersected); this bench pins that shape and the exact-vs-float cost of
a single combination.  The masses carry an enumerated frame, so
combinations run on the compiled evidence kernel
(:mod:`repro.ds.kernel`) exactly as integration workloads do;
``bench_kernel_combination.py`` measures the kernel-vs-frozenset gap
itself.
"""

import random
from fractions import Fraction

import pytest

from repro.ds import MassFunction, combine
from repro.ds.frame import OMEGA, FrameOfDiscernment

UNIVERSE = [f"v{i}" for i in range(24)]
FRAME = FrameOfDiscernment("universe", UNIVERSE)


def _make_mass(n_focal: int, seed: int, exact: bool) -> MassFunction:
    rng = random.Random(f"{seed}/{n_focal}/{exact}")
    elements = [OMEGA]
    seen = set()
    while len(elements) < n_focal:
        element = frozenset(rng.sample(UNIVERSE, rng.randint(1, 3)))
        if element not in seen:
            seen.add(element)
            elements.append(element)
    weights = [rng.randint(1, 9) for _ in elements]
    total = sum(weights)
    if exact:
        masses = {e: Fraction(w, total) for e, w in zip(elements, weights)}
    else:
        masses = {e: w / total for e, w in zip(elements, weights)}
    return MassFunction(masses, FRAME)


@pytest.mark.parametrize("n_focal", [2, 4, 8, 16])
def test_combination_vs_focal_count(benchmark, n_focal):
    m1 = _make_mass(n_focal, seed=1, exact=True)
    m2 = _make_mass(n_focal, seed=2, exact=True)
    combined = benchmark(combine, m1, m2)
    assert sum(value for _, value in combined.items()) == 1


@pytest.mark.parametrize("exact", [True, False], ids=["fraction", "float"])
def test_combination_arithmetic_ablation(benchmark, exact):
    m1 = _make_mass(8, seed=1, exact=exact)
    m2 = _make_mass(8, seed=2, exact=exact)
    combined = benchmark(combine, m1, m2)
    total = sum(value for _, value in combined.items())
    if exact:
        assert total == 1
    else:
        assert abs(float(total) - 1.0) < 1e-9


def test_combination_chain(benchmark):
    """Folding ten sources (associativity makes the order irrelevant)."""
    from repro.ds import combine_all

    sources = [_make_mass(5, seed=i, exact=True) for i in range(10)]
    combined = benchmark(combine_all, sources)
    # Ignorance only ever shrinks along the chain.
    assert combined.ignorance() <= min(m.ignorance() for m in sources)
