"""Streaming ingestion: incremental delta-merges vs full recompute.

The claim the stream engine exists for: once evidence has accumulated,
folding a delta of arriving events into the integrated relation costs
O(delta) Dempster combinations (plus an O(n) materialization of light
dict work), while the batch path -- ``Federation.integrate`` over the
current source snapshots -- pays O(n) combinations every time.  At 1k+
accumulated tuples the incremental path must win by >= 10x.

Both paths produce the identical relation (asserted here and verified
property-based in ``tests/stream``).
"""

import os
import time

import pytest

from repro.datasets.generators import SyntheticConfig, synthetic_relation
from repro.integration import Federation, TupleMerger
from repro.stream import StreamEngine

#: Entities per source; every entity appears in all three sources, so
#: the accumulated integrated state holds 3x this many stored tuples.
N_ENTITIES = 400
N_SOURCES = 3
#: Upserts folded per micro-batch in the incremental measurements.
DELTA = 16
#: Required incremental-vs-recompute speedup.  The paper claim is >= 10x
#: (measured ~17x on quiet hardware); shared CI runners set a looser
#: floor via the environment so scheduler noise cannot fail the build.
RATIO_FLOOR = float(os.environ.get("STREAM_BENCH_RATIO_FLOOR", "10"))


def _sources():
    """Three union-compatible relations over one key universe (floats:
    repeated exact-fraction combination grows denominators without
    bound, which would measure bigint arithmetic, not the algorithm)."""
    relations = {}
    for index in range(N_SOURCES):
        config = SyntheticConfig(
            n_tuples=N_ENTITIES,
            conflict=0.4,
            ignorance=1.0,
            exact=False,
            seed=17 + index,
        )
        name = f"s{index}"
        relations[name] = synthetic_relation(config, name)
    return relations


def _delta_tuples(count):
    """Fresh evidence re-asserting existing s0 keys (dirty re-folds --
    the expensive incremental case; brand-new keys would be cheaper)."""
    config = SyntheticConfig(
        n_tuples=count, conflict=0.4, ignorance=1.0, exact=False, seed=99
    )
    return tuple(synthetic_relation(config, "s0"))


def _loaded_engine(relations):
    engine = StreamEngine(
        list(relations.values())[0].schema,
        name="F",
        merger=TupleMerger(on_conflict="vacuous"),
    )
    for name, relation in relations.items():
        for etuple in relation:
            engine.upsert(name, etuple)
    engine.flush()
    return engine


@pytest.fixture(scope="module")
def workload():
    relations = _sources()
    engine = _loaded_engine(relations)
    federation = Federation(TupleMerger(on_conflict="vacuous"))
    for name, relation in relations.items():
        federation.add_source(name, relation)
    return engine, federation, _delta_tuples(DELTA)


def _apply_delta(engine, delta):
    for etuple in delta:
        engine.upsert("s0", etuple)
    return engine.flush()


def test_equivalence_of_the_two_paths(workload):
    """Sanity: the accumulated stream state equals the batch fold."""
    engine, federation, _ = workload
    integrated, _ = federation.integrate(name="F")
    assert engine.relation.same_tuples(integrated)
    assert len(engine.relation) >= 1000 / N_SOURCES  # 1200 stored tuples


def test_incremental_delta_ingest(benchmark, workload):
    """Fold DELTA events + flush into ~1.2k accumulated tuples."""
    engine, _, delta = workload
    result = benchmark(_apply_delta, engine, delta)
    assert result.watermark > 0
    assert len(engine.relation) == N_ENTITIES


def test_full_federation_recompute(benchmark, workload):
    """The batch path the engine replaces: re-integrate everything."""
    _, federation, _ = workload
    integrated, _ = benchmark(federation.integrate, "F")
    assert len(integrated) == N_ENTITIES


def test_incremental_beats_recompute_10x(workload, bench_record):
    """The acceptance bar: >= 10x at 1k+ accumulated tuples
    (RATIO_FLOOR relaxes it on noisy shared runners)."""
    engine, federation, delta = workload

    incremental = min(
        _timed(lambda: _apply_delta(engine, delta)) for _ in range(5)
    )
    full = min(
        _timed(lambda: federation.integrate(name="F")) for _ in range(3)
    )
    ratio = full / incremental
    print(
        f"\nincremental {incremental * 1e3:.2f} ms vs "
        f"recompute {full * 1e3:.2f} ms -> {ratio:.1f}x"
    )
    bench_record("incremental_flush_seconds", incremental)
    bench_record("full_recompute_seconds", full)
    bench_record("incremental_vs_recompute_ratio", ratio)
    assert ratio >= RATIO_FLOOR


def _timed(operation):
    started = time.perf_counter()
    operation()
    return time.perf_counter() - started
