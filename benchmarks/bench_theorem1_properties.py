"""Theorem 1: closure and boundedness of the five extended operations.

Measures the mechanical verification (the substitute for the
unavailable TR93-14 proof) on a synthetic workload: each bench augments
the inputs with hypothetical complement relations and checks the sn > 0
result sets coincide.
"""

import pytest

from repro.algebra import (
    IsPredicate,
    equijoin,
    product,
    project,
    select,
    union,
    verify_boundedness,
    verify_closure,
)
from benchmarks.conftest import synthetic_workload

PHANTOM_L = [(900_001,), (900_002,)]
PHANTOM_R = [(900_003,)]


@pytest.fixture(scope="module")
def workload():
    return synthetic_workload(60)


def test_theorem1_union(benchmark, workload):
    left, right = workload
    operation = lambda a, b: union(a, b, on_conflict="vacuous")
    ok = benchmark(
        verify_boundedness, operation, [left, right], [PHANTOM_L, PHANTOM_R]
    )
    assert ok
    assert verify_closure(operation(left, right))


def test_theorem1_select(benchmark, workload):
    left, _ = workload
    operation = lambda r: select(r, IsPredicate("category", {"c0", "c1"}))
    ok = benchmark(verify_boundedness, operation, [left], [PHANTOM_L])
    assert ok
    assert verify_closure(operation(left))


def test_theorem1_project(benchmark, workload):
    left, _ = workload
    operation = lambda r: project(r, ["id", "category"])
    ok = benchmark(verify_boundedness, operation, [left], [PHANTOM_L])
    assert ok


def test_theorem1_product(benchmark, workload):
    left, right = workload
    ok = benchmark(
        verify_boundedness, product, [left, right], [PHANTOM_L, PHANTOM_R]
    )
    assert ok
    assert verify_closure(product(left, right))


def test_theorem1_join(benchmark, workload):
    left, right = workload
    operation = lambda a, b: equijoin(a, b, [("label", "label")])
    ok = benchmark(
        verify_boundedness, operation, [left, right], [PHANTOM_L, PHANTOM_R]
    )
    assert ok
