"""Query layer: parse/plan overhead and the pushdown ablation.

Measures (a) the pure front-end cost (tokenize -> parse -> bind ->
optimize), and (b) executing the *same* join query with and without the
optimizer -- selection pushdown through the product should never lose,
and wins big as relations grow (the pushed predicate shrinks the
quadratic product's inputs).
"""

import pytest

from repro.storage import Database
from repro.query.parser import parse
from repro.query.planner import build_plan, optimize
from benchmarks.conftest import synthetic_workload

JOIN_QUERY = (
    "SELECT L_id, R_id, L_category FROM L JOIN R ON L.label = R.label "
    "WHERE L.category IS {c0, c1}"
)


@pytest.fixture(scope="module")
def db():
    left, right = synthetic_workload(80)
    database = Database("bench")
    database.add(left)
    database.add(right)
    return database


def test_frontend_overhead(benchmark, db):
    """Tokenize + parse + bind + optimize, no execution."""
    plan = benchmark(lambda: optimize(build_plan(parse(JOIN_QUERY), db)))
    assert "Product" in plan.describe()


def test_execute_without_optimizer(benchmark, db):
    plan = build_plan(parse(JOIN_QUERY), db)
    result = benchmark(plan.execute, db)
    assert len(result) > 0


def test_execute_with_optimizer(benchmark, db):
    plan = optimize(build_plan(parse(JOIN_QUERY), db))
    result = benchmark(plan.execute, db)
    # Pushdown must preserve results exactly.
    raw = build_plan(parse(JOIN_QUERY), db).execute(db)
    assert result.same_tuples(raw)


def test_pushdown_reduces_product_input(db):
    """Not a timing: demonstrate the optimized plan's structure."""
    raw = build_plan(parse(JOIN_QUERY), db)
    optimized = optimize(build_plan(parse(JOIN_QUERY), db))
    raw_text = raw.describe()
    optimized_text = optimized.describe()
    # The category conjunct sits above the product in the raw plan and
    # below it after optimization.
    raw_product_at = raw_text.index("Product")
    assert "category is" in raw_text[:raw_product_at]
    optimized_product_at = optimized_text.index("Product")
    assert "category is" in optimized_text[optimized_product_at:]
