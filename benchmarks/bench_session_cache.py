"""Session engine: plan/result caching and shared-subplan batching.

Measures the three wins the :class:`repro.session.Session` engine adds
over one-shot execution:

* repeated identical queries -- the second execution is a result-cache
  hit (plan fingerprinting) instead of a full re-run;
* cold-cache overhead -- fingerprinting + cache bookkeeping must not
  meaningfully slow a first execution;
* batched ``collect_all`` of expressions sharing an expensive union
  prefix -- the shared subplan executes once, not once per expression.
"""

import pytest

from repro.algebra.predicates import attr
from repro.session import Session
from repro.storage import Database
from benchmarks.conftest import synthetic_workload

QUERY = (
    "SELECT L_id, R_id, L_category FROM L JOIN R ON L.label = R.label "
    "WHERE L.category IS {c0, c1}"
)


def _category_projection(expr, category):
    return expr.select(attr("category").is_({category})).project(
        "id", "category"
    )


@pytest.fixture(scope="module")
def db():
    left, right = synthetic_workload(200)
    database = Database("bench")
    database.add(left.with_name("L"))
    database.add(right.with_name("R"))
    return database


def test_repeated_query_uncached(benchmark, db):
    """Baseline: a fresh session per run -- every execution is cold."""

    def run():
        return Session(db).execute(QUERY)

    result = benchmark(run)
    assert len(result) > 0


def test_repeated_query_cached(benchmark, db):
    """One session: repeated runs are result-cache hits."""
    session = Session(db)
    warm = session.execute(QUERY)

    result = benchmark(session.execute, QUERY)
    assert result.same_tuples(warm)
    assert session.stats().result_cache_hits > 0
    assert session.stats().plan_cache_hits > 0


def test_batch_unshared(benchmark, db):
    """Baseline: four union-prefixed queries, fresh session each batch."""

    def run():
        session = Session(db)
        union = session.rel("L").union("R", on_conflict="vacuous")
        return session.collect_all(
            _category_projection(union, f"c{i}") for i in range(4)
        )

    results = benchmark(run)
    assert len(results) == 4


def test_batch_shared_subplan(benchmark, db):
    """One session: the union prefix executes once per catalog version."""
    session = Session(db)
    union = session.rel("L").union("R", on_conflict="vacuous")
    expressions = [_category_projection(union, f"c{i}") for i in range(4)]
    warm = session.collect_all(expressions)

    results = benchmark(session.collect_all, expressions)
    assert [len(r) for r in results] == [len(r) for r in warm]
    assert session.stats().subplan_cache_hits > 0


def test_invalidation_correctness(db):
    """Not a timing: replacing a relation must drop cached results."""
    session = Session(db)
    before = session.execute(QUERY)
    db.add(db.get("L"), replace=True)
    after = session.execute(QUERY)
    assert session.stats().invalidations == 1
    assert after.same_tuples(before)
