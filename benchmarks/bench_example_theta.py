"""Section 3.1.1 worked example: theta-predicate support.

The paper evaluates P = ([{1,4}^0.6, {2,6}^0.4] theta [{2,4}^0.8, 5^0.2])
and prints F_SS = (0.6, 1).  The theta glyph is lost in the available
text (OCR); this bench evaluates the *definition* (sn sums focal pairs
where theta holds universally, sp where it holds existentially) for
every theta in {=, <, >, <=, >=} and records the outcomes -- none yields
(0.6, 1), which EXPERIMENTS.md discusses.  The measured operation is the
full five-operator support evaluation.
"""

from fractions import Fraction

from repro.model.evidence import EvidenceSet
from repro.algebra.support import theta_support

A = EvidenceSet({frozenset({1, 4}): "3/5", frozenset({2, 6}): "2/5"})
B = EvidenceSet({frozenset({2, 4}): "4/5", frozenset({5}): "1/5"})

#: Hand-evaluated expectations under the printed definition.
EXPECTED = {
    "=": (Fraction(0), Fraction(4, 5)),
    "<": (Fraction(3, 25), Fraction(1)),
    "<=": (Fraction(3, 25), Fraction(1)),
    ">": (Fraction(0), Fraction(22, 25)),
    ">=": (Fraction(0), Fraction(22, 25)),
}


def evaluate_all():
    return {op: theta_support(A, B, op).as_tuple() for op in EXPECTED}


def test_section311_theta_example(benchmark):
    results = benchmark(evaluate_all)
    assert results == EXPECTED
    # Document the OCR-mismatch finding: the paper's printed (0.6, 1)
    # does not arise under any operator.
    paper_pair = (Fraction(3, 5), Fraction(1))
    assert paper_pair not in results.values()
