"""Figure 3: deriving the new tuple membership in a selection.

The figure's dataflow: the source tuple's (sn, sp) and the selection
support F_SS(r, P) feed the derivation function F_TM, producing the
result tuple's membership.  Micro-benchmarks the two stages separately
and asserts the Table 2 garden numbers flow through.
"""

from fractions import Fraction

from repro.algebra import IsPredicate
from repro.algebra.support import selection_support
from repro.datasets.restaurants import table_ra

PREDICATE = IsPredicate("speciality", {"si"})


def test_fig3_support_stage(benchmark):
    """F_SS: evidence -> support pair."""
    garden = table_ra().get("garden")
    support = benchmark(selection_support, garden, PREDICATE)
    assert support.as_tuple() == (Fraction(1, 2), Fraction(3, 4))


def test_fig3_membership_derivation(benchmark):
    """F_TM: (sn,sp) x (sn,sp) -> revised membership."""
    garden = table_ra().get("garden")
    support = selection_support(garden, PREDICATE)

    revised = benchmark(garden.membership.combine_product, support)
    assert revised.as_tuple() == (Fraction(1, 2), Fraction(3, 4))


def test_fig3_full_derivation_pipeline(benchmark):
    """Both stages end to end, per Figure 3."""
    relation = table_ra()

    def derive_all():
        return [
            t.membership.combine_product(selection_support(t, PREDICATE))
            for t in relation
        ]

    memberships = benchmark(derive_all)
    supported = [tm for tm in memberships if tm.is_supported]
    assert len(supported) == 2  # garden and wok
