"""Section 2.2 worked example: Dempster's rule of combination.

m1 = [ca^1/2, {hu,si}^1/3, OMEGA^1/6] combined with
m2 = [{ca,hu}^1/2, hu^1/4, OMEGA^1/4] under conflict kappa = 1/8 yields
exactly {ca}:3/7, {hu}:1/3, {ca,hu}:2/21, {hu,si}:2/21, OMEGA:1/21.
"""

from fractions import Fraction

import pytest

from repro.ds import MassFunction, OMEGA, combine, conflict


@pytest.fixture
def m1():
    return MassFunction({"ca": "1/2", ("hu", "si"): "1/3", OMEGA: "1/6"})


@pytest.fixture
def m2():
    return MassFunction({("ca", "hu"): "1/2", "hu": "1/4", OMEGA: "1/4"})


def test_section22_combination_example(benchmark, m1, m2):
    combined = benchmark(combine, m1, m2)
    assert conflict(m1, m2) == Fraction(1, 8)
    assert combined[{"ca"}] == Fraction(3, 7)
    assert combined[{"hu"}] == Fraction(1, 3)
    assert combined[{"ca", "hu"}] == Fraction(2, 21)
    assert combined[{"hu", "si"}] == Fraction(2, 21)
    assert combined[OMEGA] == Fraction(1, 21)
    # The trends the paper remarks on:
    assert combined[{"hu"}] > m2[{"hu"}]      # {hunan} gains
    assert combined[{"ca"}] < m1[{"ca"}]      # {cantonese} loses
    assert combined[OMEGA] < min(m1[OMEGA], m2[OMEGA])  # ignorance shrinks
