"""The process-wide metrics registry: named counters, gauges, histograms.

One :class:`MetricsRegistry` instance per process (:func:`registry`)
owns every telemetry instrument the engine exposes.  Three instrument
kinds, all built on the thread-local-cell discipline of
:mod:`repro.counters` (lock-free bump on the hot path, aggregate under
a lock on read):

* :class:`Counter` -- a monotonically increasing integer;
* :class:`Gauge` -- a point-in-time value, either set explicitly or
  computed by a callback at collection time;
* :class:`Histogram` -- count/sum/min/max plus bucketed observations
  (:class:`repro.counters.ThreadLocalHistograms` cells).

Existing per-subsystem counter objects keep their attribute/snapshot
APIs and *re-register* onto the registry instead of being replaced:

* :meth:`MetricsRegistry.register_source` adopts a process-global stats
  object (the kernel's and executor layer's ``STATS``) through a
  snapshot callable and an optional reset callable;
* :meth:`MetricsRegistry.attach` tracks per-instance stats dataclasses
  (``SessionStats``, ``StreamStats``) by weak reference and sums their
  integer fields over all live instances at collection time.

:meth:`MetricsRegistry.collect` returns one flat, sorted snapshot;
:meth:`MetricsRegistry.render` the human table; :meth:`prometheus` the
Prometheus text exposition format (stdlib only); :meth:`reset` zeroes
every owned instrument and adopted source (benchmarks and tests use it
to stop measuring accumulated process-global state).
"""

from __future__ import annotations

import threading
import weakref

from dataclasses import fields as dataclass_fields

from repro.counters import (
    DEFAULT_BUCKETS,
    ThreadLocalCounters,
    ThreadLocalHistograms,
)


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "help", "_counters")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._counters = ThreadLocalCounters(("value",))

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (lock-free; callable from any thread)."""
        self._counters.bump("value", amount)

    @property
    def value(self) -> int:
        """The aggregate count across all threads."""
        return self._counters.total("value")

    def reset(self) -> None:
        """Zero the counter in place."""
        self._counters.reset()

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value: set explicitly, or computed by a callback."""

    __slots__ = ("name", "help", "_lock", "_value", "_callback")

    def __init__(self, name: str, help: str = "", callback=None):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0
        self._callback = callback

    def set(self, value: float) -> None:
        """Record the current value (last write wins)."""
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        """The current value (the callback's, when one was registered)."""
        if self._callback is not None:
            return self._callback()
        with self._lock:
            return self._value

    def reset(self) -> None:
        """Zero an explicitly set gauge (callback gauges are stateless)."""
        with self._lock:
            self._value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Bucketed observations with count/sum/min/max aggregates."""

    __slots__ = ("name", "help", "_histograms")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self.help = help
        self._histograms = ThreadLocalHistograms(("value",), buckets)

    def observe(self, value: float) -> None:
        """Record one observation (lock-free; callable from any thread)."""
        self._histograms.observe("value", value)

    @property
    def buckets(self) -> tuple[float, ...]:
        """The bucket upper bounds (+inf implicit)."""
        return self._histograms.buckets

    @property
    def value(self) -> dict:
        """``{"count", "sum", "min", "max", "buckets"}`` across threads."""
        return self._histograms.total("value")

    def reset(self) -> None:
        """Zero the histogram in place."""
        self._histograms.reset()

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.value['count']})"


class _Group:
    """Live per-instance stats objects, summed field-wise on read."""

    def __init__(self, prefix: str):
        self.prefix = prefix
        self._refs: list = []

    def add(self, obj) -> None:
        self._refs.append(weakref.ref(obj))

    def instances(self) -> list:
        alive = [ref() for ref in self._refs]
        alive = [obj for obj in alive if obj is not None]
        # Compact dead references opportunistically so a long-lived
        # process churning sessions does not grow the list unboundedly.
        if len(alive) < len(self._refs):
            self._refs = [weakref.ref(obj) for obj in alive]
        return alive

    def totals(self) -> dict[str, int]:
        sums: dict[str, int] = {}
        for obj in self.instances():
            for field in dataclass_fields(obj):
                value = getattr(obj, field.name)
                if isinstance(value, int):
                    sums[field.name] = sums.get(field.name, 0) + value
        return sums


class MetricsRegistry:
    """Every named instrument of the process, behind one lock.

    Instrument accessors are get-or-create and idempotent: asking for an
    existing name returns the existing instrument (asking with a
    mismatched kind raises ``ValueError`` -- names are a process-wide
    contract).  Collection merges owned instruments, adopted sources and
    attached groups into one flat ``{name: value}`` snapshot.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, object] = {}
        self._sources: dict[str, tuple] = {}
        self._groups: dict[str, _Group] = {}

    # -- instruments --------------------------------------------------------

    def _instrument(self, kind, name: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"metric {name!r} is already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                return existing
            instrument = kind(name, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter *name*."""
        return self._instrument(Counter, name, help=help)

    def gauge(self, name: str, help: str = "", callback=None) -> Gauge:
        """Get or create the gauge *name* (optionally callback-backed)."""
        return self._instrument(Gauge, name, help=help, callback=callback)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram *name*."""
        return self._instrument(Histogram, name, help=help, buckets=buckets)

    # -- adoption of existing stats objects ---------------------------------

    def register_source(self, prefix: str, snapshot, reset=None) -> None:
        """Adopt a process-global stats object under *prefix*.

        *snapshot* is a callable returning ``{field: int}``; *reset*
        (optional) zeroes the underlying counters.  The adopted object
        keeps its own API -- the registry only reads through it, so the
        kernel/exec ``STATS`` singletons surface here without changing a
        single call site.
        """
        with self._lock:
            self._sources[prefix] = (snapshot, reset)

    def attach(self, prefix: str, stats) -> None:
        """Track a per-instance stats dataclass under *prefix*.

        Held by weak reference: instances unregister themselves by
        getting garbage-collected.  Collection sums each integer field
        over all live instances (``session.queries`` is the total over
        every live :class:`~repro.session.Session`).
        """
        with self._lock:
            group = self._groups.get(prefix)
            if group is None:
                group = self._groups[prefix] = _Group(prefix)
            group.add(stats)

    def group_total(self, prefix: str, field: str) -> int:
        """The summed value of *field* across the live *prefix* group."""
        with self._lock:
            group = self._groups.get(prefix)
        if group is None:
            return 0
        return group.totals().get(field, 0)

    # -- collection ---------------------------------------------------------

    def collect(self) -> dict[str, object]:
        """One flat, name-sorted snapshot of every registered metric.

        Counter and gauge values are numbers; histogram values are
        ``{"count", "sum", "min", "max", "buckets"}`` mappings.
        """
        with self._lock:
            instruments = dict(self._instruments)
            sources = dict(self._sources)
            groups = dict(self._groups)
        values: dict[str, object] = {}
        for name, instrument in instruments.items():
            values[name] = instrument.value
        for prefix, (snapshot, _) in sources.items():
            for field, value in snapshot().items():
                values[f"{prefix}.{field}"] = value
        for prefix, group in groups.items():
            for field, value in group.totals().items():
                values[f"{prefix}.{field}"] = value
        return dict(sorted(values.items()))

    def names(self) -> tuple[str, ...]:
        """The currently collectable metric names, sorted."""
        return tuple(self.collect())

    def render(self) -> str:
        """The collected snapshot as an aligned human-readable table."""
        collected = self.collect()
        if not collected:
            return "metrics: (none registered)"
        width = max(len(name) for name in collected)
        lines = []
        for name, value in collected.items():
            lines.append(f"  {name:<{width}}  {_render_value(value)}")
        return "\n".join(["metrics:"] + lines)

    def to_json(self) -> dict:
        """The collected snapshot as a JSON-serializable mapping."""
        payload: dict[str, object] = {}
        for name, value in self.collect().items():
            if isinstance(value, dict):
                payload[name] = {
                    "count": value["count"],
                    "sum": value["sum"],
                    "min": value["min"],
                    "max": value["max"],
                    "buckets": list(value["buckets"]),
                }
            else:
                payload[name] = value
        return payload

    def prometheus(self) -> str:
        """The snapshot in the Prometheus text exposition format.

        Metric names are prefixed ``repro_`` with dots mapped to
        underscores; histograms expose the conventional ``_bucket``
        (cumulative, with ``le`` labels), ``_sum`` and ``_count``
        series.  Stdlib only -- serve it from any HTTP handler.
        """
        with self._lock:
            instruments = dict(self._instruments)
        lines: list[str] = []
        for name, value in self.collect().items():
            flat = _prometheus_name(name)
            instrument = instruments.get(name)
            if isinstance(value, dict):
                lines.append(f"# TYPE {flat} histogram")
                cumulative = 0
                bounds = list(
                    instrument.buckets if instrument is not None else ()
                )
                for index, bucket in enumerate(value["buckets"]):
                    cumulative += bucket
                    edge = (
                        _format_number(bounds[index])
                        if index < len(bounds)
                        else "+Inf"
                    )
                    lines.append(f'{flat}_bucket{{le="{edge}"}} {cumulative}')
                lines.append(f"{flat}_sum {_format_number(value['sum'])}")
                lines.append(f"{flat}_count {value['count']}")
            else:
                kind = "gauge" if isinstance(instrument, Gauge) else "counter"
                lines.append(f"# TYPE {flat} {kind}")
                lines.append(f"{flat} {_format_number(value)}")
        return "\n".join(lines) + "\n"

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Zero every owned instrument and adopted source in place.

        Attached per-instance groups are *not* touched (their owners
        hold the live objects); benchmarks that need a clean slate reset
        the registry and use fresh sessions/engines.
        """
        with self._lock:
            instruments = list(self._instruments.values())
            sources = list(self._sources.values())
        for instrument in instruments:
            instrument.reset()
        for _, reset in sources:
            if reset is not None:
                reset()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry({len(self._instruments)} instruments, "
                f"{len(self._sources)} sources, {len(self._groups)} groups)"
            )


def _render_value(value) -> str:
    if isinstance(value, dict):
        low = _format_number(value["min"]) if value["min"] is not None else "-"
        high = _format_number(value["max"]) if value["max"] is not None else "-"
        return (
            f"n={value['count']} sum={_format_number(value['sum'])} "
            f"min={low} max={high}"
        )
    return _format_number(value)


def _format_number(value) -> str:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    return f"{value:.6g}"


def _prometheus_name(name: str) -> str:
    safe = "".join(c if c.isalnum() else "_" for c in name)
    return f"repro_{safe}"


#: The process-wide registry; every subsystem registers here.  Mutate
#: through the instrument APIs, never rebind.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _REGISTRY
