"""Profiles: per-node query timings and per-batch flush breakdowns.

:class:`QueryProfile` is what :meth:`Session.explain_analyze` returns:
the optimized plan annotated node-by-node with wall time, exact
input/output row counts, partition fan-out and the kernel-vs-fallback
combination split.  Row counts are deterministic (the serial-
equivalence contract makes them identical under every executor);
timings are wall-clock and asserted by tests only as present/positive.

:class:`FlushProfile` is the optional per-batch breakdown a
:class:`~repro.stream.engine.StreamEngine` constructed with
``profile_batches=True`` attaches to each
:class:`~repro.stream.changelog.BatchDelta`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class NodeProfile:
    """One plan node's measured execution, children included."""

    label: str
    strategy: str
    rows_in: tuple[int, ...]
    rows_out: int
    wall_seconds: float
    partitions: int
    parallel_batches: int
    tasks: int
    kernel_combinations: int
    fallback_combinations: int
    children: tuple["NodeProfile", ...] = ()

    @property
    def total_rows_in(self) -> int:
        """The summed input row count over all inputs."""
        return sum(self.rows_in)

    def walk(self):
        """Yield this node then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def describe(self, indent: int = 0) -> str:
        """The annotated subtree, one indented line per node."""
        pad = "  " * indent
        rows_in = "+".join(str(n) for n in self.rows_in) or "0"
        parts = [
            f"{pad}{self.label} [{self.strategy}]",
            f"rows={rows_in}->{self.rows_out}",
            f"time={self.wall_seconds * 1e3:.3f}ms",
        ]
        if self.partitions > 1 or self.parallel_batches:
            parts.append(
                f"partitions={self.partitions} "
                f"batches={self.parallel_batches} tasks={self.tasks}"
            )
        combinations = self.kernel_combinations + self.fallback_combinations
        if combinations:
            parts.append(
                f"combine={combinations} "
                f"(kernel={self.kernel_combinations} "
                f"fallback={self.fallback_combinations})"
            )
        lines = ["  ".join(parts)]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def to_json(self) -> dict:
        """A JSON-serializable mapping of the annotated subtree."""
        return {
            "label": self.label,
            "strategy": self.strategy,
            "rows_in": list(self.rows_in),
            "rows_out": self.rows_out,
            "wall_seconds": self.wall_seconds,
            "partitions": self.partitions,
            "parallel_batches": self.parallel_batches,
            "tasks": self.tasks,
            "kernel_combinations": self.kernel_combinations,
            "fallback_combinations": self.fallback_combinations,
            "children": [child.to_json() for child in self.children],
        }


@dataclass(frozen=True)
class QueryProfile:
    """The product of ``Session.explain_analyze``: plan + measurements."""

    query: str
    executor: str
    workers: int
    root: NodeProfile
    wall_seconds: float

    @property
    def rows(self) -> int:
        """The result row count (the root node's output)."""
        return self.root.rows_out

    def nodes(self) -> tuple[NodeProfile, ...]:
        """Every node profile, depth-first from the root."""
        return tuple(self.root.walk())

    def describe(self) -> str:
        """The full annotated plan as an indented text tree."""
        header = (
            f"EXPLAIN ANALYZE  {self.query}\n"
            f"executor={self.executor} workers={self.workers} "
            f"total={self.wall_seconds * 1e3:.3f}ms "
            f"rows={self.rows}"
        )
        return header + "\n" + self.root.describe(indent=1)

    def to_json(self) -> dict:
        """A JSON-serializable mapping of the whole profile."""
        return {
            "query": self.query,
            "executor": self.executor,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "rows": self.rows,
            "plan": self.root.to_json(),
        }


@dataclass(frozen=True)
class FlushProfile:
    """Per-batch breakdown of one ``StreamEngine.flush``."""

    events: int
    entities_refolded: int
    combinations: int
    partitions: int
    refold_seconds: float
    materialize_seconds: float
    publish_seconds: float
    total_seconds: float
    sources: tuple[str, ...] = field(default=())

    def describe(self) -> str:
        """A one-line human summary of the flush breakdown."""
        return (
            f"flush: {self.events} event(s), "
            f"{self.entities_refolded} entit(y/ies) refolded, "
            f"{self.combinations} combination(s), "
            f"{self.partitions} partition(s); "
            f"refold={self.refold_seconds * 1e3:.3f}ms "
            f"materialize={self.materialize_seconds * 1e3:.3f}ms "
            f"publish={self.publish_seconds * 1e3:.3f}ms "
            f"total={self.total_seconds * 1e3:.3f}ms"
        )

    def to_json(self) -> dict:
        """A JSON-serializable mapping of the breakdown."""
        return {
            "events": self.events,
            "entities_refolded": self.entities_refolded,
            "combinations": self.combinations,
            "partitions": self.partitions,
            "refold_seconds": self.refold_seconds,
            "materialize_seconds": self.materialize_seconds,
            "publish_seconds": self.publish_seconds,
            "total_seconds": self.total_seconds,
            "sources": list(self.sources),
        }
