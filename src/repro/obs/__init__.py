"""repro.obs -- the unified telemetry layer.

One process-wide :class:`MetricsRegistry` (:func:`registry`), a
structured-tracing span API (:func:`span`, near-zero-cost while
disabled), and profile products (:class:`QueryProfile` from
``Session.explain_analyze``, :class:`FlushProfile` on stream batch
deltas).  Every subsystem registers its instruments here; every export
surface -- ``repro stats``, the repl ``:stats``/``:profile``,
:meth:`MetricsRegistry.prometheus`, ``--trace-out`` JSONL traces --
reads from here.

Metric naming
=============

Names are dotted, lowercase, stable (tests assert them).  The full
catalogue:

======================================  =========  ==================================================
name                                    kind       meaning
======================================  =========  ==================================================
kernel.kernel_combinations              counter    Dempster combinations on the bitmask kernel path
kernel.fallback_combinations            counter    combinations on the symbolic frozenset fallback
kernel.compilations                     counter    mass functions compiled to kernel form
exec.parallel_batches                   counter    Executor.map batches fanned out to workers
exec.inline_batches                     counter    batches run inline (serial / nested / too small)
exec.tasks                              counter    individual partition tasks dispatched
exec.auto.serial_decisions              counter    auto-mode batches the cost model kept serial
exec.auto.thread_decisions              counter    auto-mode batches routed to the thread pool
exec.auto.process_decisions             counter    auto-mode batches routed to the process pool
exec.warmpool.dispatches                counter    batches dispatched to the warm worker pool
exec.warmpool.tasks                     counter    items shipped to warm workers
exec.warmpool.spawns                    counter    warm pool (re)creations -- forks actually paid
exec.warmpool.fallbacks                 counter    unpicklable batches sent back to fork-per-batch
exec.warmpool.dispatch_seconds          histogram  warm-pool batch dispatch latency
exec.remote.batches                     counter    batches scattered to remote workers
exec.remote.tasks                       counter    items shipped to remote workers
exec.remote.bytes_sent                  counter    payload bytes put on the wire
exec.remote.bytes_received              counter    payload bytes read off the wire
exec.remote.retries                     counter    chunks re-scattered after a transport failure
exec.remote.worker_deaths               counter    workers declared dead mid-batch
exec.remote.fallbacks                   counter    batches run locally (no workers / unpicklable)
exec.remote.local_batches               counter    batches the cost model kept below the wire
exec.remote.rtt_seconds                 histogram  per-chunk round-trip latency
exec.remote.locality_hits               counter    key-only chunks served from worker shard stores
exec.remote.locality_misses             counter    key-only chunks that fell back to tuple shipping
exec.remote.bytes_saved                 counter    estimated wire bytes key-only scatter avoided
session.queries                         counter    queries executed, summed over live sessions
session.plans_built                     counter    plans compiled (cache misses)
session.plan_cache_hits                 counter    plan-cache hits
session.result_cache_hits               counter    whole-query result-cache hits
session.subplan_cache_hits              counter    shared-subtree result-cache hits
session.node_executions                 counter    plan nodes physically executed
session.invalidations                   counter    cache invalidation sweeps
session.entries_invalidated             counter    cache entries dropped by invalidation
session.subscription_refreshes          counter    subscribed queries re-collected after publish
session.plan_cache_hit_ratio            gauge      plan hits / (hits + plans built)
session.result_cache_hit_ratio          gauge      result hits / queries
stream.upserts                          counter    upsert events accepted, summed over live engines
stream.retractions                      counter    retraction events accepted
stream.reliability_updates              counter    source-reliability change events accepted
stream.flushes                          counter    flush() calls
stream.publishes                        counter    flushes that published into a catalog
stream.empty_flush_skips                counter    quiet flushes that skipped the backend entirely
stream.combinations                     counter    pairwise Dempster combinations performed
stream.refolds                          counter    entity refolds performed
stream.kernel_combinations              counter    stream combinations on the kernel path
stream.fallback_combinations            counter    stream combinations on the fallback path
stream.ingest_lag_events                gauge      events buffered but not yet flushed
stream.watermark_age_seconds            gauge      seconds since the watermark last advanced
stream.source.<name>.events             counter    events ingested from one named source
stream.source.<name>.conflicts          counter    conflicts attributed to one named source
storage.<scheme>.saves                  counter    save_relation/save_database calls per engine
storage.<scheme>.loads                  counter    load_database calls per engine
storage.<scheme>.point_loads            counter    load_relation point reads per engine
storage.<scheme>.write_batches          counter    stream write_batch calls per engine
storage.<scheme>.bytes_written          counter    bytes on disk after mutating calls (delta)
storage.<scheme>.save_seconds           histogram  save-side call latency
storage.<scheme>.load_seconds           histogram  load-side call latency
storage.<scheme>.file_bytes             gauge      current on-disk size of the last-touched store
storage.log.autocompactions             counter    journal compactions triggered by REPRO_AUTOCOMPACT
======================================  =========  ==================================================

``<scheme>`` is the backend scheme (``json``/``sqlite``/``log``);
``<name>`` is the caller-chosen stream source name.  Span names mirror
the layer prefixes: ``session.execute``, ``physical.<op>``,
``exec.map``, ``exec.remote.scatter``, ``stream.flush``,
``storage.<op>``.
"""

from repro.obs.profile import FlushProfile, NodeProfile, QueryProfile
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from repro.obs.tracing import (
    JsonlSink,
    SpanRecord,
    add_sink,
    capture,
    enabled,
    ingest,
    remove_sink,
    set_tracing,
    span,
    take_records,
    tracing_scope,
)

__all__ = [
    "Counter",
    "FlushProfile",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NodeProfile",
    "QueryProfile",
    "SpanRecord",
    "add_sink",
    "capture",
    "enabled",
    "ingest",
    "registry",
    "remove_sink",
    "set_tracing",
    "span",
    "take_records",
    "tracing_scope",
]
