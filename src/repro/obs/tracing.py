"""Structured tracing: nested spans with near-zero cost when disabled.

A *span* measures one named unit of work -- a query run, a physical
operator application, an executor batch, a stream flush, a storage
save.  Spans nest: each thread keeps its own parent stack, so serial
and thread-pool work builds one in-process tree, while process-pool
workers capture their spans and ship the records back with the task
results (the same pattern the stream engine uses for kernel stats),
where :func:`ingest` re-homes them under the dispatching span.

The cost contract: when tracing is disabled -- the default, unless the
``REPRO_TRACE`` environment variable is set to a non-empty value other
than ``0`` -- :func:`span` checks one module-level flag and returns a
shared no-op singleton.  No allocation, no clock read, no locking on
any hot path.

Finished spans become :class:`SpanRecord` dataclasses (picklable, so
they survive the process-pool hop) collected into a bounded in-memory
buffer (:func:`take_records`) and fanned out to registered sinks
(:func:`add_sink`); :class:`JsonlSink` appends one JSON object per
record for the CLI's ``--trace-out FILE``.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import threading
import time

from collections import deque
from dataclasses import dataclass, field


def _env_enabled() -> bool:
    raw = os.environ.get("REPRO_TRACE", "")
    return raw not in ("", "0")


#: The global switch, checked before any tracing work happens.
_enabled = _env_enabled()

_LOCK = threading.Lock()
_RECORDS: deque = deque(maxlen=10_000)
_SINKS: list = []
_IDS = itertools.count(1)
_STACK = threading.local()


@dataclass(frozen=True)
class SpanRecord:
    """One finished span -- plain data, picklable across processes."""

    span_id: int
    parent_id: int | None
    name: str
    thread: str
    duration: float
    attrs: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        """A JSON-serializable mapping of the record."""
        return {
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "thread": self.thread,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """The shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def note(self, **attrs) -> None:
        """Discard *attrs* (tracing is off)."""


_NULL_SPAN = _NullSpan()


class Span:
    """A live span: context manager timing one unit of work."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "_start")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.span_id = next(_IDS)
        self.parent_id = None
        self._start = 0.0

    def __enter__(self):
        stack = _parent_stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        duration = time.perf_counter() - self._start
        stack = _parent_stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        _emit(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                thread=threading.current_thread().name,
                duration=duration,
                attrs=self.attrs,
            )
        )
        return False

    def note(self, **attrs) -> None:
        """Attach *attrs* to the span (e.g. row counts known at exit)."""
        self.attrs.update(attrs)


def _parent_stack() -> list:
    stack = getattr(_STACK, "spans", None)
    if stack is None:
        stack = _STACK.spans = []
    return stack


def _emit(record: SpanRecord) -> None:
    with _LOCK:
        captures = list(_CAPTURES)
        if captures:
            # A capture is active (process-pool worker): divert the
            # record entirely -- it ships back with the task result and
            # the parent emits it exactly once on ingest.  Skipping the
            # regular sinks here also keeps a fork-inherited file sink
            # from double-writing.
            for sink in captures:
                sink.emit(record)
            return
        _RECORDS.append(record)
        sinks = list(_SINKS)
    for sink in sinks:
        sink.emit(record)


def enabled() -> bool:
    """Whether tracing is currently on."""
    return _enabled


def set_tracing(flag: bool) -> None:
    """Turn tracing on or off process-wide."""
    global _enabled
    _enabled = bool(flag)


@contextlib.contextmanager
def tracing_scope(flag: bool = True):
    """Temporarily force tracing on (or off) within a block."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    try:
        yield
    finally:
        _enabled = previous


def span(name: str, **attrs):
    """Open a span named *name*; use as ``with span(...) as s:``.

    Returns the shared no-op singleton when tracing is disabled -- the
    only cost on a disabled hot path is this one flag check.
    """
    if not _enabled:
        return _NULL_SPAN
    return Span(name, attrs)


def add_sink(sink) -> None:
    """Register *sink* (an object with ``emit(record)``) for every span."""
    with _LOCK:
        _SINKS.append(sink)


def remove_sink(sink) -> None:
    """Unregister a sink added with :func:`add_sink`."""
    with _LOCK:
        if sink in _SINKS:
            _SINKS.remove(sink)


def take_records() -> list[SpanRecord]:
    """Drain and return the buffered span records, oldest first."""
    with _LOCK:
        records = list(_RECORDS)
        _RECORDS.clear()
    return records


def ingest(records) -> None:
    """Re-home span records shipped back from a worker process.

    The records keep their in-worker parent/child links; top-level
    worker spans are parented under the caller's current span (the
    executor dispatch span), so the tree reads as one trace.
    """
    stack = _parent_stack()
    parent = stack[-1] if stack else None
    worker_ids = {record.span_id for record in records}
    for record in records:
        if record.parent_id is None or record.parent_id not in worker_ids:
            record = SpanRecord(
                span_id=record.span_id,
                parent_id=parent,
                name=record.name,
                thread=record.thread,
                duration=record.duration,
                attrs=record.attrs,
            )
        _emit(record)


@contextlib.contextmanager
def capture():
    """Collect the spans finished inside the block into the yielded list.

    Used by process-pool workers: the child captures its spans and
    returns them with the task result; the parent :func:`ingest`\\ s
    them.  Capture diverts records from the global buffer and sinks --
    the parent emits them exactly once on ingest.
    """
    sink = _CaptureSink()
    with _LOCK:
        _CAPTURES.append(sink)
    try:
        yield sink.records
    finally:
        with _LOCK:
            _CAPTURES.remove(sink)


class _CaptureSink:
    __slots__ = ("records",)

    def __init__(self):
        self.records: list[SpanRecord] = []

    def emit(self, record: SpanRecord) -> None:
        self.records.append(record)


_CAPTURES: list = []


class JsonlSink:
    """A sink appending one JSON object per span record to a file."""

    def __init__(self, path):
        self._path = path
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8")

    def emit(self, record: SpanRecord) -> None:
        line = json.dumps(record.to_json(), sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            self._handle.close()
