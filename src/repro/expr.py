"""Lazy relational expressions over the extended algebra.

:class:`RelExpr` is a fluent, immutable builder for composite queries::

    db.rel("RA").select(attr("rating").is_({"ex"})).project("rname").collect()

Nothing executes until :meth:`RelExpr.collect`.  Each chained call adds
one unbound operation node; at collection time the chain is *lowered*
into exactly the logical plan nodes the SQL parser emits
(:mod:`repro.query.plans`), optimized by the same planner, fingerprinted
and executed by the owning :class:`repro.session.Session` -- so an
expression and the equivalent query string share one plan cache and one
result cache.

Expressions are immutable and therefore freely shareable::

    base = db.rel("RA").select(attr("speciality").is_({"si"}))
    names = base.project("rname")          # base is unchanged
    merged = base.union(db.rel("RB"))      # reuses the same prefix

When several expressions share a prefix, ``Session.collect_all`` (or
any repeated ``collect``) evaluates the shared subplan once.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import PlanError
from repro.model.relation import ExtendedRelation
from repro.model.schema import RelationSchema
from repro.algebra.predicates import Predicate, attr, lit  # noqa: F401 (re-export)
from repro.algebra.thresholds import SN_POSITIVE, MembershipThreshold
from repro.query.fingerprint import (
    literal_key,
    merge_key,
    product_key,
    project_key,
    rename_key,
    scan_key,
    select_key,
)
from repro.query.plans import (
    IntersectPlan,
    LiteralPlan,
    Plan,
    ProductPlan,
    ProjectPlan,
    RenamePlan,
    ScanPlan,
    SelectPlan,
    UnionPlan,
)


def _resolve_threshold(threshold: MembershipThreshold | None) -> MembershipThreshold:
    """Conjoin a user threshold with the implicit ``sn > 0``.

    Mirrors the SQL binder (``WITH`` terms are conjoined onto
    ``SN_POSITIVE``), so equivalent expressions and query strings
    produce byte-identical plan fingerprints.
    """
    if threshold is None:
        return SN_POSITIVE
    if not isinstance(threshold, MembershipThreshold):
        raise PlanError(f"expected a MembershipThreshold, got {threshold!r}")
    if threshold is SN_POSITIVE:
        return SN_POSITIVE
    return SN_POSITIVE & threshold


# ---------------------------------------------------------------------------
# Unbound operation nodes
# ---------------------------------------------------------------------------


class _Node:
    """An unbound operation in an expression chain.

    ``key()`` is the canonical, catalog-independent rendering used as
    the session's plan-cache key; ``lower(database)`` binds the node
    into the shared plan IR.
    """

    __slots__ = ()

    def key(self) -> str:
        raise NotImplementedError

    def lower(self, database) -> Plan:
        raise NotImplementedError


class _Rel(_Node):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def key(self) -> str:
        return scan_key(self.name)

    def lower(self, database) -> Plan:
        return ScanPlan(self.name, database.get(self.name).schema)


class _Literal(_Node):
    __slots__ = ("plan",)

    def __init__(self, relation: ExtendedRelation):
        # One LiteralPlan per node: the token stays stable across
        # repeated collects, so caching still works for ad-hoc relations.
        self.plan = LiteralPlan(relation)

    def key(self) -> str:
        return literal_key(self.plan.relation.name, self.plan.token)

    def lower(self, database) -> Plan:
        return self.plan


class _Select(_Node):
    __slots__ = ("child", "predicate", "threshold")

    def __init__(
        self,
        child: _Node,
        predicate: Predicate | None,
        threshold: MembershipThreshold,
    ):
        self.child = child
        self.predicate = predicate
        self.threshold = threshold

    def key(self) -> str:
        return select_key(self.predicate, self.threshold, self.child.key())

    def lower(self, database) -> Plan:
        return SelectPlan(self.child.lower(database), self.predicate, self.threshold)


class _Project(_Node):
    __slots__ = ("child", "names")

    def __init__(self, child: _Node, names: tuple[str, ...]):
        self.child = child
        self.names = names

    def key(self) -> str:
        return project_key(self.names, self.child.key())

    def lower(self, database) -> Plan:
        try:
            return ProjectPlan(self.child.lower(database), self.names)
        except PlanError:
            raise
        except Exception as exc:
            raise PlanError(str(exc)) from exc


class _Rename(_Node):
    __slots__ = ("child", "mapping")

    def __init__(self, child: _Node, mapping: dict[str, str]):
        self.child = child
        self.mapping = mapping

    def key(self) -> str:
        return rename_key(self.mapping, self.child.key())

    def lower(self, database) -> Plan:
        return RenamePlan(self.child.lower(database), self.mapping)


class _Union(_Node):
    __slots__ = ("left", "right", "on_conflict")

    def __init__(self, left: _Node, right: _Node, on_conflict: str):
        self.left = left
        self.right = right
        self.on_conflict = on_conflict

    def key(self) -> str:
        return merge_key(
            "union", self.on_conflict, self.left.key(), self.right.key()
        )

    def lower(self, database) -> Plan:
        return UnionPlan(
            self.left.lower(database), self.right.lower(database), self.on_conflict
        )


class _Intersect(_Node):
    __slots__ = ("left", "right", "on_conflict")

    def __init__(self, left: _Node, right: _Node, on_conflict: str):
        self.left = left
        self.right = right
        self.on_conflict = on_conflict

    def key(self) -> str:
        return merge_key(
            "intersect", self.on_conflict, self.left.key(), self.right.key()
        )

    def lower(self, database) -> Plan:
        return IntersectPlan(
            self.left.lower(database), self.right.lower(database), self.on_conflict
        )


class _Product(_Node):
    __slots__ = ("left", "right")

    def __init__(self, left: _Node, right: _Node):
        self.left = left
        self.right = right

    def key(self) -> str:
        return product_key(self.left.key(), self.right.key())

    def lower(self, database) -> Plan:
        return ProductPlan(self.left.lower(database), self.right.lower(database))


# ---------------------------------------------------------------------------
# The fluent builder
# ---------------------------------------------------------------------------


class RelExpr:
    """An immutable, lazily-evaluated relational expression.

    Build instances with :meth:`repro.storage.Database.rel` or
    :meth:`repro.session.Session.rel`; every method returns a *new*
    expression, leaving the receiver untouched.
    """

    __slots__ = ("_session", "_node")

    def __init__(self, session, node: _Node):
        self._session = session
        self._node = node

    # -- operations ---------------------------------------------------------

    def select(
        self,
        predicate: Predicate | None = None,
        threshold: MembershipThreshold | None = None,
    ) -> "RelExpr":
        """Extended selection: condition ``P`` and/or threshold ``Q``.

        *threshold* is conjoined with the implicit ``sn > 0``.
        """
        if predicate is not None and not isinstance(predicate, Predicate):
            raise PlanError(f"expected a Predicate, got {predicate!r}")
        return RelExpr(
            self._session,
            _Select(self._node, predicate, _resolve_threshold(threshold)),
        )

    #: ``where`` reads naturally after ``rel``; same operation as ``select``.
    where = select

    def with_support(self, threshold: MembershipThreshold) -> "RelExpr":
        """A pure membership-threshold filter (no condition ``P``)."""
        return self.select(None, threshold)

    def project(self, *names: str) -> "RelExpr":
        """Extended projection onto *names* (keys must be retained)."""
        if len(names) == 1 and not isinstance(names[0], str):
            names = tuple(names[0])
        return RelExpr(self._session, _Project(self._node, tuple(names)))

    def rename(self, mapping: Mapping[str, str]) -> "RelExpr":
        """Rename attributes via ``{old: new}``."""
        return RelExpr(self._session, _Rename(self._node, dict(mapping)))

    def union(self, other, on_conflict: str = "raise") -> "RelExpr":
        """Extended union with *other* (conflict resolution by key)."""
        return RelExpr(
            self._session,
            _Union(self._node, self._coerce(other), on_conflict),
        )

    def intersect(self, other, on_conflict: str = "raise") -> "RelExpr":
        """Extended intersection with *other* (consensus extension)."""
        return RelExpr(
            self._session,
            _Intersect(self._node, self._coerce(other), on_conflict),
        )

    def product(self, other) -> "RelExpr":
        """Extended cartesian product with *other*."""
        return RelExpr(self._session, _Product(self._node, self._coerce(other)))

    def join(self, other, on: Predicate) -> "RelExpr":
        """Extended join: product then selection on *on* (Section 3.5).

        The join condition references the *product* schema, where
        clashing attribute names carry relation prefixes (``RA_rname``).
        """
        if not isinstance(on, Predicate):
            raise PlanError(f"join condition must be a Predicate, got {on!r}")
        paired = _Product(self._node, self._coerce(other))
        return RelExpr(self._session, _Select(paired, on, SN_POSITIVE))

    def _coerce(self, other) -> _Node:
        if isinstance(other, RelExpr):
            return other._node
        if isinstance(other, str):
            return self._session.rel(other)._node
        if isinstance(other, ExtendedRelation):
            return _Literal(other)
        raise PlanError(
            f"cannot combine an expression with {other!r} "
            "(expected a RelExpr, a relation name, or an ExtendedRelation)"
        )

    # -- evaluation ---------------------------------------------------------

    @property
    def session(self):
        """The owning session (catalog, cache, stats)."""
        return self._session

    def key(self) -> str:
        """The canonical, catalog-independent rendering of the chain."""
        return self._node.key()

    def lower(self, database) -> Plan:
        """Bind into the shared plan IR (unoptimized)."""
        return self._node.lower(database)

    def plan(self) -> Plan:
        """The optimized logical plan (bound against the catalog)."""
        return self._session.plan(self)

    def schema(self) -> RelationSchema:
        """The expression's output schema (binds, does not execute)."""
        return self.plan().schema()

    def fingerprint(self) -> str:
        """The canonical fingerprint of the optimized plan."""
        return self._session.fingerprint(self)

    def explain(self) -> str:
        """The optimized plan as indented text."""
        return self._session.explain(self)

    def collect(self) -> ExtendedRelation:
        """Execute (through the session's plan/result cache)."""
        return self._session.execute(self)

    def __repr__(self) -> str:
        return f"RelExpr({self._node.key()})"
