"""Evidence acquisition from summary data (Section 1.2).

The paper's key observation is that uncertainty arises when the
integrated schema needs information that the component databases only
hold as *summaries*: vote tallies from reviewer panels, item
classifications, historical observations.  This package turns such
summaries into evidence sets:

* :mod:`repro.sources.voting` -- reviewer panels casting votes for
  values, value sets (undecided between alternatives) or abstentions
  (ignorance) -> mass by vote share;
* :mod:`repro.sources.classification` -- classifying items (e.g. menu
  dishes) into categories, with ambiguous and unclassifiable items ->
  speciality evidence;
* :mod:`repro.sources.history` -- time-stamped observations with
  recency weighting -> evidence from history (extension).
"""

from repro.sources.voting import Ballot, VotePanel
from repro.sources.classification import ClassificationRule, Classifier
from repro.sources.history import Observation, evidence_from_history

__all__ = [
    "Ballot",
    "VotePanel",
    "ClassificationRule",
    "Classifier",
    "Observation",
    "evidence_from_history",
]
