"""Evidence from historical observations (extension).

Section 1.1 notes that deriving integrated attributes "using statistical
or history information may introduce uncertainty".  This module provides
the history case: a sequence of time-stamped observations of an
attribute's value (each observation possibly a value set, when the
observer could not pin the value down) is consolidated into an evidence
set with *recency weighting* -- an observation ``age`` steps old carries
weight ``decay ** age``, so fresher observations dominate but old ones
still contribute.

With ``decay = 1`` this degenerates to plain vote counting and exactly
matches :class:`repro.sources.voting.VotePanel` semantics, which the
test-suite verifies.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from fractions import Fraction

from repro.errors import IntegrationError
from repro.ds.frame import OMEGA
from repro.ds.mass import MassFunction
from repro.model.domain import Domain
from repro.model.evidence import EvidenceSet


class Observation:
    """One historical sighting of an attribute value.

    ``values`` may be a single value, an iterable of candidate values
    (the observer narrowed the value to a set), or ``None`` for an
    uninformative observation (contributes ignorance).
    ``timestamp`` is any monotonically comparable step counter.
    """

    __slots__ = ("_element", "_timestamp")

    def __init__(self, values: object, timestamp: int):
        if values is None:
            self._element = OMEGA
        elif isinstance(values, (str, bytes)) or not isinstance(values, Iterable):
            self._element = frozenset({values})
        else:
            element = frozenset(values)
            if not element:
                raise IntegrationError("an observation needs at least one value")
            self._element = element
        self._timestamp = int(timestamp)

    @property
    def element(self):
        """The observed focal element (frozenset or OMEGA)."""
        return self._element

    @property
    def timestamp(self) -> int:
        """The observation's step counter."""
        return self._timestamp

    def __repr__(self) -> str:
        if self._element is OMEGA:
            rendered = "?"
        else:
            rendered = "{" + ",".join(sorted(map(str, self._element))) + "}"
        return f"Observation({rendered} @ {self._timestamp})"


def evidence_from_history(
    observations: Sequence[Observation],
    domain: Domain | None = None,
    decay: object = Fraction(9, 10),
) -> EvidenceSet:
    """Consolidate time-stamped observations into an evidence set.

    Each observation is weighted ``decay ** (t_max - t)`` where ``t_max``
    is the newest timestamp; weights are normalized into masses.

    >>> from repro.datasets.restaurants import rating_domain
    >>> history = [Observation("gd", 1), Observation("gd", 2),
    ...            Observation("ex", 3)]
    >>> es = evidence_from_history(history, rating_domain(), decay="1/2")
    >>> es.mass({"ex"})
    Fraction(4, 7)
    """
    if not observations:
        raise IntegrationError("cannot build evidence from an empty history")
    decay = Fraction(decay) if not isinstance(decay, (Fraction, float)) else decay
    if not 0 < decay <= 1:
        raise IntegrationError(f"decay must lie in (0, 1], got {decay!r}")
    newest = max(observation.timestamp for observation in observations)
    counts: dict = {}
    for observation in observations:
        weight = decay ** (newest - observation.timestamp)
        element = observation.element
        counts[element] = counts.get(element, 0) + weight
        if domain is not None and element is not OMEGA:
            for value in element:
                if not domain.contains(value):
                    raise IntegrationError(
                        f"observed value {value!r} is outside domain "
                        f"{domain.name!r}"
                    )
    frame = domain.frame() if domain is not None and domain.is_enumerable else None
    return EvidenceSet(MassFunction.from_counts(counts, frame), domain)
