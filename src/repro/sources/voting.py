"""Reviewer-panel voting -> evidence sets.

Section 1.2: "a panel of six food reviewers examines the food and service
provided by each restaurant.  Each reviewer then casts one vote in favor
of a dish and a vote on the overall rating.  The values for the
attributes ybest_dish and yrating are derived by consolidating the voting
results."

A ballot may name:

* a single value (``Ballot.for_value("d1")``) -- a committed vote;
* a *set* of values (``Ballot.for_set({"d35", "d36"})``) -- the reviewer
  could not decide among the alternatives, so the vote supports the set
  as a whole (this is precisely what non-singleton focal elements are
  for);
* nothing (``Ballot.abstain()``) -- ignorance; the vote's share goes to
  the whole domain (OMEGA).

Vote shares are exact fractions: 2/4 votes out of six give masses 1/3
and 2/3, matching how the paper's printed 0.33/0.67 masses arise.
"""

from __future__ import annotations

from collections.abc import Iterable
from fractions import Fraction

from repro.errors import IntegrationError
from repro.ds.frame import OMEGA
from repro.ds.mass import MassFunction
from repro.model.domain import Domain
from repro.model.evidence import EvidenceSet


class Ballot:
    """One reviewer's vote."""

    __slots__ = ("_choice", "_weight")

    def __init__(self, choice, weight: object = 1):
        weight = Fraction(weight) if not isinstance(weight, Fraction) else weight
        if weight <= 0:
            raise IntegrationError(f"ballot weight must be positive, got {weight}")
        self._choice = choice
        self._weight = weight

    @classmethod
    def for_value(cls, value: object, weight: object = 1) -> "Ballot":
        """A vote for a single value."""
        return cls(frozenset({value}), weight)

    @classmethod
    def for_set(cls, values: Iterable, weight: object = 1) -> "Ballot":
        """An undecided vote supporting a set of alternatives."""
        value_set = frozenset(values)
        if not value_set:
            raise IntegrationError("a set ballot needs at least one value")
        return cls(value_set, weight)

    @classmethod
    def abstain(cls, weight: object = 1) -> "Ballot":
        """An abstention: the vote share becomes ignorance (OMEGA)."""
        return cls(OMEGA, weight)

    @property
    def choice(self):
        """The voted focal element (a frozenset or OMEGA)."""
        return self._choice

    @property
    def weight(self) -> Fraction:
        """The ballot's weight (1 for ordinary one-reviewer votes)."""
        return self._weight

    def __repr__(self) -> str:
        if self._choice is OMEGA:
            rendered = "abstain"
        else:
            rendered = "{" + ",".join(sorted(map(str, self._choice))) + "}"
        return f"Ballot({rendered}, weight={self._weight})"


class VotePanel:
    """A panel of reviewers voting on one attribute of one entity.

    >>> from repro.datasets.restaurants import best_dish_domain
    >>> panel = VotePanel(best_dish_domain())
    >>> panel.cast("d1", count=3)
    >>> panel.cast("d2", count=2)
    >>> panel.cast_abstention()
    >>> panel.to_evidence().format()
    '[d1^0.5, d2^1/3, Ω^1/6]'
    """

    def __init__(self, domain: Domain | None = None):
        self._domain = domain
        self._ballots: list[Ballot] = []

    @property
    def ballots(self) -> tuple[Ballot, ...]:
        """All ballots cast so far."""
        return tuple(self._ballots)

    @property
    def total_votes(self) -> Fraction:
        """Total ballot weight."""
        return sum((ballot.weight for ballot in self._ballots), Fraction(0))

    def cast(self, value: object, count: int = 1) -> None:
        """Cast *count* single-value votes for *value*."""
        self._validate(frozenset({value}))
        for _ in range(count):
            self._ballots.append(Ballot.for_value(value))

    def cast_set(self, values: Iterable, count: int = 1) -> None:
        """Cast *count* undecided votes over *values*."""
        value_set = frozenset(values)
        self._validate(value_set)
        for _ in range(count):
            self._ballots.append(Ballot.for_set(value_set))

    def cast_abstention(self, count: int = 1) -> None:
        """Cast *count* abstentions."""
        for _ in range(count):
            self._ballots.append(Ballot.abstain())

    def cast_ballot(self, ballot: Ballot) -> None:
        """Cast a pre-built (possibly weighted) ballot."""
        if ballot.choice is not OMEGA:
            self._validate(ballot.choice)
        self._ballots.append(ballot)

    def _validate(self, values: frozenset) -> None:
        if self._domain is None:
            return
        for value in values:
            if not self._domain.contains(value):
                raise IntegrationError(
                    f"vote for {value!r} is outside domain {self._domain.name!r}"
                )

    def tally(self) -> dict:
        """Vote weight per focal element."""
        counts: dict = {}
        for ballot in self._ballots:
            counts[ballot.choice] = counts.get(ballot.choice, Fraction(0)) + ballot.weight
        return counts

    def to_evidence(self) -> EvidenceSet:
        """Consolidate the votes into an evidence set (mass = vote share)."""
        counts = self.tally()
        if not counts:
            raise IntegrationError("cannot consolidate an empty vote panel")
        frame = (
            self._domain.frame()
            if self._domain is not None and self._domain.is_enumerable
            else None
        )
        return EvidenceSet(MassFunction.from_counts(counts, frame), self._domain)
