"""Item classification -> evidence sets.

Section 1.2: "The restaurants' speciality attribute can be obtained in a
similar manner by classifying the items in the restaurant menus", and the
Section 2.1 example interprets the mass assignment for restaurant *wok*
via exactly this model: half the menu is pure Cantonese
(``m({cantonese}) = 1/2``), a third of the dishes could be Hunan or
Sichuan but not further distinguished (``m({hunan, sichuan}) = 1/3``),
and for the rest no classification information is available
(``m(OMEGA) = 1/6``).

:class:`Classifier` applies ordered keyword rules to items.  A rule may
map to one category (a confident classification) or several (an
ambiguous one -- the item supports the category *set*).  Unmatched items
contribute ignorance.  The resulting evidence set's masses are the
classified fractions of the item list.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from fractions import Fraction

from repro.errors import IntegrationError
from repro.ds.frame import OMEGA
from repro.ds.mass import MassFunction
from repro.model.domain import Domain
from repro.model.evidence import EvidenceSet


class ClassificationRule:
    """Maps items containing *keyword* to a set of categories.

    >>> rule = ClassificationRule("kung pao", {"si"})
    >>> rule.matches("Kung Pao Chicken")
    True
    """

    __slots__ = ("_keyword", "_categories")

    def __init__(self, keyword: str, categories: Iterable):
        if not keyword:
            raise IntegrationError("a classification rule needs a keyword")
        self._keyword = keyword.lower()
        self._categories = frozenset(categories)
        if not self._categories:
            raise IntegrationError(
                f"rule {keyword!r} needs at least one category"
            )

    @property
    def keyword(self) -> str:
        """The (lower-cased) keyword the rule looks for."""
        return self._keyword

    @property
    def categories(self) -> frozenset:
        """The categories the rule assigns."""
        return self._categories

    def matches(self, item: str) -> bool:
        """Case-insensitive substring match."""
        return self._keyword in item.lower()

    def __repr__(self) -> str:
        cats = ",".join(sorted(map(str, self._categories)))
        return f"ClassificationRule({self._keyword!r} -> {{{cats}}})"


class Classifier:
    """Ordered-rule classifier turning item lists into evidence sets.

    Rules are tried in order; the first match wins.  Unmatched items
    count toward ignorance (OMEGA).

    >>> from repro.datasets.restaurants import speciality_domain
    >>> classifier = Classifier(speciality_domain(), [
    ...     ClassificationRule("dim sum", {"ca"}),
    ...     ClassificationRule("pepper", {"hu", "si"}),
    ... ])
    >>> menu = ["Dim Sum Platter", "Pepper Beef", "Mystery Special"]
    >>> classifier.classify_items(menu).format()
    '[ca^1/3, {hu,si}^1/3, Ω^1/3]'
    """

    def __init__(self, domain: Domain | None, rules: Sequence[ClassificationRule]):
        self._domain = domain
        self._rules = tuple(rules)
        if domain is not None:
            for rule in self._rules:
                for category in rule.categories:
                    if not domain.contains(category):
                        raise IntegrationError(
                            f"rule {rule.keyword!r} assigns {category!r} outside "
                            f"domain {domain.name!r}"
                        )

    @property
    def rules(self) -> tuple[ClassificationRule, ...]:
        """The classification rules, in priority order."""
        return self._rules

    def classify(self, item: str) -> frozenset | None:
        """The category set of the first matching rule, or ``None``."""
        for rule in self._rules:
            if rule.matches(item):
                return rule.categories
        return None

    def classify_items(self, items: Iterable[str]) -> EvidenceSet:
        """Evidence over the category domain from a list of items."""
        counts: dict = {}
        total = 0
        for item in items:
            total += 1
            categories = self.classify(item)
            element = OMEGA if categories is None else categories
            counts[element] = counts.get(element, 0) + 1
        if total == 0:
            raise IntegrationError("cannot classify an empty item list")
        frame = (
            self._domain.frame()
            if self._domain is not None and self._domain.is_enumerable
            else None
        )
        masses = {
            element: Fraction(count, total) for element, count in counts.items()
        }
        return EvidenceSet(MassFunction(masses, frame), self._domain)
