"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.

The exceptions mirror the layers of the system:

* evidence layer (:class:`MassFunctionError`, :class:`TotalConflictError`),
* model layer (:class:`DomainError`, :class:`SchemaError`,
  :class:`MembershipError`, :class:`RelationError`),
* algebra layer (:class:`PredicateError`, :class:`OperationError`),
* query layer (:class:`QueryError` and its lexing/parsing/planning
  subclasses, plus :class:`ExecutionError` for the physical layer and
  its :class:`ConfigError` / :class:`ProtocolError` /
  :class:`TaskDecodeError` refinements),
* integration layer (:class:`IntegrationError`),
* storage layer (:class:`SerializationError`, :class:`CatalogError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


# ---------------------------------------------------------------------------
# Evidence (Dempster-Shafer) layer
# ---------------------------------------------------------------------------


class MassFunctionError(ReproError):
    """An invalid mass assignment was supplied.

    Raised when masses are negative, sum to something other than one, or
    are assigned to the empty set (the paper requires ``m(empty) = 0``).
    """


class NotationError(ReproError):
    """The textual evidence-set notation could not be parsed."""


class TotalConflictError(ReproError):
    """Dempster's rule was applied to totally conflicting evidence.

    The paper (Section 2.2) notes that when no focal elements of the two
    mass functions intersect, the sources are in total conflict and "some
    actions may be necessary to inform the data administrators or
    integrators about the conflict".  This exception is that action.
    """

    def __init__(self, message: str = "evidence sources are in total conflict (kappa = 1)"):
        super().__init__(message)


class TransformError(ReproError):
    """An evidence transform (e.g. pignistic) could not be computed."""


# ---------------------------------------------------------------------------
# Extended relational model layer
# ---------------------------------------------------------------------------


class DomainError(ReproError):
    """A value does not belong to an attribute domain, or the domain is
    unsuitable for the requested operation (e.g. enumerating an infinite
    domain)."""


class SchemaError(ReproError):
    """Relation schemas are inconsistent with the requested operation.

    Examples: duplicate attribute names, a missing key, union-incompatible
    schemas, or a projection that drops the key attributes.
    """


class MembershipError(ReproError):
    """A tuple membership pair violates ``0 <= sn <= sp <= 1``."""


class RelationError(ReproError):
    """An extended relation invariant was violated.

    The generalized closed world assumption (CWA_ER, Section 2.3 of the
    paper) requires every stored tuple to carry positive necessary support
    (``sn > 0``); duplicate keys within one relation are also rejected
    because the paper's relations have definite, identifying keys.
    """


# ---------------------------------------------------------------------------
# Algebra layer
# ---------------------------------------------------------------------------


class PredicateError(ReproError):
    """A selection/join predicate is malformed or refers to unknown
    attributes."""


class OperationError(ReproError):
    """An extended relational operation was invoked on unsuitable inputs."""


# ---------------------------------------------------------------------------
# Query layer
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for query-language failures."""


class LexError(QueryError):
    """The query text contains characters that cannot be tokenized."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(QueryError):
    """The token stream does not form a valid statement."""


class PlanError(QueryError):
    """A logical plan could not be built or executed.

    Typically raised when a statement references a relation or attribute
    that does not exist in the database catalog.
    """


class ExecutionError(ReproError):
    """The physical execution layer was misconfigured (unknown executor
    kind, invalid worker or partition count)."""


class ConfigError(ExecutionError):
    """An execution-layer configuration value is invalid.

    Raised by :func:`repro.exec.configure` and the ``REPRO_EXECUTOR`` /
    ``REPRO_WORKERS`` / ``REPRO_PARTITIONS`` / ``REPRO_WORKERS_ADDRS``
    environment parsing; the message always names the accepted values
    (``serial|thread|process|auto|remote``) so an operator sees the fix,
    not just the failure.  Subclasses :class:`ExecutionError`, so
    existing handlers keep working.
    """


class ProtocolError(ExecutionError):
    """The remote-execution wire protocol was violated.

    Raised by :mod:`repro.exec.remote.protocol` on a truncated frame,
    bad magic, version mismatch, CRC failure or undecodable payload.
    The coordinator treats it as a transport failure: the worker is
    declared dead and the chunk is re-scattered to a survivor.
    """


class TaskDecodeError(ExecutionError):
    """A worker daemon could not unpickle a shipped task.

    Typically the task function lives in a module the daemon cannot
    import (a test module, a ``__main__`` script) -- pickling by
    reference succeeded on the coordinator but the reference does not
    resolve on the worker.  This says nothing bad about the worker or
    the task, so the coordinator treats the batch as unshippable and
    runs it locally instead of retrying or failing.
    """


# ---------------------------------------------------------------------------
# Integration layer
# ---------------------------------------------------------------------------


class IntegrationError(ReproError):
    """The integration pipeline was misconfigured or failed."""


class EntityIdentificationError(IntegrationError):
    """Tuple matching failed (e.g. ambiguous or contradictory matches)."""


class StreamError(IntegrationError):
    """A streaming-integration event was invalid or could not be applied.

    Raised by :mod:`repro.stream` for malformed events (an upsert with
    ``sn = 0`` violating CWA_ER, a retraction of an unknown tuple, an
    unknown source, ...).
    """


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------


class SerializationError(ReproError):
    """A relation or database could not be (de)serialized."""


class CatalogError(ReproError):
    """A database catalog operation failed (unknown or duplicate name)."""
