"""The unified query engine: one cache, two front ends.

A :class:`Session` owns everything between "query" and "result" for a
:class:`repro.storage.Database`:

* **catalog resolution + planning** -- query strings and fluent
  :class:`repro.expr.RelExpr` chains lower into the identical plan IR
  (:mod:`repro.query.plans`) and pass through the same optimizer;
* **a plan cache** keyed on the canonical source (query text or
  expression key), so repeated queries skip parse/bind/optimize;
* **a result cache** keyed on canonical plan fingerprints
  (:mod:`repro.query.fingerprint`), memoized *per subtree*: two queries
  sharing a prefix -- or one query collected twice -- evaluate the
  shared subplan once;
* **invalidation** -- the caches drop automatically whenever the
  database catalog changes (``add(..., replace=True)``, ``drop``, ...),
  tracked through :attr:`repro.storage.Database.version`.

Example::

    session = db.session()
    fluent = session.rel("RA").select(attr("rating").is_({"ex"}))
    sql = "SELECT * FROM RA WHERE rating IS {ex}"
    assert session.fingerprint(fluent) == session.fingerprint(sql)
    session.execute(sql)        # executes
    fluent.collect()            # result-cache hit: same fingerprint
    session.stats().result_cache_hits
    1
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.expr import RelExpr, _Literal, _Rel
from repro.model.relation import ExtendedRelation
from repro.query.executor import compile_text
from repro.query.fingerprint import fingerprint as plan_fingerprint
from repro.query.fingerprint import plan_key
from repro.query.planner import optimize
from repro.query.plans import Plan


@dataclass
class SessionStats:
    """Counters a :class:`Session` accumulates (see :meth:`Session.stats`)."""

    queries: int = 0
    plans_built: int = 0
    plan_cache_hits: int = 0
    result_cache_hits: int = 0
    subplan_cache_hits: int = 0
    node_executions: int = 0
    invalidations: int = 0

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.queries} queries: {self.plans_built} plans built "
            f"({self.plan_cache_hits} plan hits), "
            f"{self.result_cache_hits} result hits, "
            f"{self.subplan_cache_hits} subplan hits, "
            f"{self.node_executions} nodes executed, "
            f"{self.invalidations} invalidations"
        )


@dataclass
class _Compiled:
    plan: Plan
    fingerprint: str


class Session:
    """A caching query engine bound to one database.

    Accepts *queries* in three shapes everywhere: a query-language
    string, a :class:`repro.expr.RelExpr`, or an already-built
    :class:`repro.query.plans.Plan`.
    """

    def __init__(self, database, max_cache_entries: int = 256):
        self._db = database
        self._max_entries = int(max_cache_entries)
        self._plans: dict[str, _Compiled] = {}
        self._results: dict[str, ExtendedRelation] = {}
        self._stats = SessionStats()
        self._epoch = database.version

    @property
    def database(self):
        """The catalog this session plans and executes against."""
        return self._db

    # -- expression entry points --------------------------------------------

    def rel(self, name: str) -> RelExpr:
        """A lazy expression scanning the catalog relation *name*.

        The name is resolved eagerly so typos fail here, with the
        catalog's "did you mean" hint, rather than at collect time.
        """
        self._db.get(name)
        return RelExpr(self, _Rel(name))

    def from_relation(self, relation: ExtendedRelation) -> RelExpr:
        """A lazy expression over an ad-hoc (non-catalog) relation."""
        return RelExpr(self, _Literal(relation))

    # -- planning -----------------------------------------------------------

    def plan(self, query) -> Plan:
        """The optimized logical plan of *query* (cached)."""
        self._sync()
        return self._compile(query).plan

    def fingerprint(self, query) -> str:
        """The canonical fingerprint of *query*'s optimized plan."""
        self._sync()
        return self._compile(query).fingerprint

    def explain(self, query) -> str:
        """The optimized logical plan of *query*, as indented text."""
        self._sync()
        return self._compile(query).plan.describe()

    # -- execution ----------------------------------------------------------

    def execute(self, query) -> ExtendedRelation:
        """Plan (or reuse) and run *query* through the result cache."""
        self._sync()
        self._stats.queries += 1
        compiled = self._compile(query)
        return self._run(compiled.plan, root=True)

    def collect_all(self, queries) -> list[ExtendedRelation]:
        """Execute many queries, sharing results of common subplans.

        Subtree results are memoized by fingerprint, so a prefix shared
        between any two queries in the batch (or with anything executed
        earlier in this session) is evaluated only once.
        """
        self._sync()
        results = []
        for query in queries:
            self._stats.queries += 1
            results.append(self._run(self._compile(query).plan, root=True))
        return results

    # -- cache management ---------------------------------------------------

    def stats(self) -> SessionStats:
        """The accumulated counters (live object, not a copy)."""
        return self._stats

    def cache_info(self) -> dict[str, int]:
        """Current cache sizes, for quick inspection."""
        return {"plans": len(self._plans), "results": len(self._results)}

    def clear_cache(self) -> None:
        """Drop both caches (stats are kept)."""
        self._plans.clear()
        self._results.clear()

    # -- internals ----------------------------------------------------------

    def _sync(self) -> None:
        """Invalidate the caches when the catalog has changed."""
        if self._db.version != self._epoch:
            self.clear_cache()
            self._epoch = self._db.version
            self._stats.invalidations += 1

    def _compile(self, query) -> _Compiled:
        if isinstance(query, str):
            source_key = f"sql::{query}"
        elif isinstance(query, RelExpr):
            source_key = f"expr::{query.key()}"
        elif isinstance(query, Plan):
            # Raw plans are caller-managed; fingerprint but don't cache.
            return _Compiled(query, plan_fingerprint(query))
        else:
            raise PlanError(
                f"cannot plan {query!r} (expected a query string, a "
                "RelExpr, or a Plan)"
            )
        cached = self._plans.get(source_key)
        if cached is not None:
            self._stats.plan_cache_hits += 1
            return cached
        if isinstance(query, str):
            plan = compile_text(query, self._db)
        else:
            plan = optimize(query.lower(self._db))
        compiled = _Compiled(plan, plan_fingerprint(plan))
        self._stats.plans_built += 1
        self._remember(self._plans, source_key, compiled)
        return compiled

    def _run(self, plan: Plan, root: bool = False) -> ExtendedRelation:
        key = plan_key(plan)
        cached = self._results.get(key)
        if cached is not None:
            if root:
                self._stats.result_cache_hits += 1
            else:
                self._stats.subplan_cache_hits += 1
            return cached
        inputs = tuple(self._run(child) for child in plan.children())
        result = plan.apply(inputs, self._db)
        self._stats.node_executions += 1
        self._remember(self._results, key, result)
        return result

    def _remember(self, cache: dict, key, value) -> None:
        """Insert with FIFO eviction at the cache-size cap."""
        if len(cache) >= self._max_entries:
            cache.pop(next(iter(cache)))
        cache[key] = value

    def __repr__(self) -> str:
        return (
            f"Session({self._db.name!r}, {len(self._plans)} cached plans, "
            f"{len(self._results)} cached results)"
        )
