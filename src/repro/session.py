"""The unified query engine: one cache, two front ends.

A :class:`Session` owns everything between "query" and "result" for a
:class:`repro.storage.Database`:

* **catalog resolution + planning** -- query strings and fluent
  :class:`repro.expr.RelExpr` chains lower into the identical plan IR
  (:mod:`repro.query.plans`) and pass through the same optimizer;
* **a plan cache** keyed on the canonical source (query text or
  expression key), so repeated queries skip parse/bind/optimize;
* **a result cache** keyed on canonical plan fingerprints
  (:mod:`repro.query.fingerprint`), memoized *per subtree*: two queries
  sharing a prefix -- or one query collected twice -- evaluate the
  shared subplan once;
* **targeted invalidation** -- when the catalog changes
  (``add(..., replace=True)``, ``drop``, ...), only the cached plans and
  results that *depend on a changed relation* are evicted, tracked
  through :attr:`repro.storage.Database.version` and
  :meth:`repro.storage.Database.changed_names_since`; caches over
  untouched relations survive;
* **subscriptions** -- :meth:`Session.subscribe` registers a standing
  query that is re-collected after every catalog change affecting it
  (the continuous-query hook the streaming engine drives on each
  flush).

Example::

    session = db.session()
    fluent = session.rel("RA").select(attr("rating").is_({"ex"}))
    sql = "SELECT * FROM RA WHERE rating IS {ex}"
    assert session.fingerprint(fluent) == session.fingerprint(sql)
    session.execute(sql)        # executes
    fluent.collect()            # result-cache hit: same fingerprint
    session.stats().result_cache_hits
    1
"""

from __future__ import annotations

import time

from dataclasses import dataclass

from repro.ds.kernel import STATS as KERNEL_STATS
from repro.errors import PlanError, ReproError
from repro.exec import cost as _cost
from repro.exec.executors import STATS as EXEC_STATS
from repro.exec.executors import current_config, partition_count
from repro.exec.physical import apply_node, lower_node
from repro.expr import RelExpr, _Literal, _Rel
from repro.model.relation import ExtendedRelation
from repro.obs import tracing
from repro.obs.profile import NodeProfile, QueryProfile
from repro.obs.registry import registry as _metrics_registry
from repro.query.executor import compile_text
from repro.query.fingerprint import fingerprint as plan_fingerprint
from repro.query.fingerprint import plan_key
from repro.query.planner import optimize
from repro.query.plans import Plan, scan_names


@dataclass
class SessionStats:
    """Counters a :class:`Session` accumulates (see :meth:`Session.stats`)."""

    queries: int = 0
    plans_built: int = 0
    plan_cache_hits: int = 0
    result_cache_hits: int = 0
    subplan_cache_hits: int = 0
    node_executions: int = 0
    invalidations: int = 0
    entries_invalidated: int = 0
    subscription_refreshes: int = 0

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.queries} queries: {self.plans_built} plans built "
            f"({self.plan_cache_hits} plan hits), "
            f"{self.result_cache_hits} result hits, "
            f"{self.subplan_cache_hits} subplan hits, "
            f"{self.node_executions} nodes executed, "
            f"{self.invalidations} invalidations"
        )


def _plan_cache_hit_ratio() -> float:
    registry = _metrics_registry()
    hits = registry.group_total("session", "plan_cache_hits")
    built = registry.group_total("session", "plans_built")
    return hits / (hits + built) if hits + built else 0.0


def _result_cache_hit_ratio() -> float:
    registry = _metrics_registry()
    hits = registry.group_total("session", "result_cache_hits")
    queries = registry.group_total("session", "queries")
    return hits / queries if queries else 0.0


# Cache-effectiveness gauges over every live session, computed at
# collection time from the attached SessionStats group.
_metrics_registry().gauge(
    "session.plan_cache_hit_ratio",
    help="plan-cache hits / (hits + plans built), over live sessions",
    callback=_plan_cache_hit_ratio,
)
_metrics_registry().gauge(
    "session.result_cache_hit_ratio",
    help="whole-query result-cache hits / queries, over live sessions",
    callback=_result_cache_hit_ratio,
)


@dataclass
class _Compiled:
    plan: Plan
    fingerprint: str
    relations: frozenset


class Subscription:
    """A standing query re-collected after relevant catalog changes.

    Created by :meth:`Session.subscribe`.  :attr:`result` always holds
    the latest collected relation; when a *callback* was given it is
    invoked with each fresh result.  If the query itself fails (e.g.
    the subscribed relation was dropped), the error is recorded on
    :attr:`error` and the previous result is kept, so unrelated catalog
    mutations never blow up in the mutator's stack; a raising
    *callback* is recorded separately on :attr:`callback_error` (the
    result is already fresh at that point, so no retry is needed).
    """

    def __init__(self, session: "Session", query, callback=None):
        self._session = session
        self.query = query
        self.callback = callback
        self.result: ExtendedRelation | None = None
        self.error: Exception | None = None
        self.callback_error: Exception | None = None
        self.refreshes = 0
        self.active = True

    def refresh(self) -> ExtendedRelation | None:
        """Re-collect the query now; returns the fresh result.

        Exceptions are contained (see the class docstring): refreshes
        run inside catalog mutators (``db.add``, a stream engine's
        flush), which must not be broken by subscriber code.
        """
        try:
            self.result = self._session.execute(self.query)
        except ReproError as exc:
            self.error = exc
            return self.result
        self.error = None
        self.refreshes += 1
        self._session._stats.subscription_refreshes += 1
        if self.callback is not None:
            try:
                self.callback(self.result)
                self.callback_error = None
            except Exception as exc:  # noqa: BLE001 -- subscriber code
                self.callback_error = exc
        return self.result

    def cancel(self) -> None:
        """Deregister from the session; no further refreshes happen."""
        self._session.unsubscribe(self)

    def __repr__(self) -> str:
        size = len(self.result) if self.result is not None else "-"
        return (
            f"Subscription({self.query!r}, {self.refreshes} refreshes, "
            f"{size} tuples)"
        )


class Session:
    """A caching query engine bound to one database.

    Accepts *queries* in three shapes everywhere: a query-language
    string, a :class:`repro.expr.RelExpr`, or an already-built
    :class:`repro.query.plans.Plan`.
    """

    def __init__(self, database, max_cache_entries: int = 256):
        self._db = database
        self._max_entries = int(max_cache_entries)
        self._plans: dict[str, _Compiled] = {}
        self._results: dict[str, ExtendedRelation] = {}
        self._result_deps: dict[str, frozenset] = {}
        self._subscriptions: list[Subscription] = []
        self._listening = False
        self._stats = SessionStats()
        # Weakly tracked: the registry sums SessionStats fields over
        # live sessions under the ``session.*`` metric names.
        _metrics_registry().attach("session", self._stats)
        self._epoch = database.version

    @property
    def database(self):
        """The catalog this session plans and executes against."""
        return self._db

    # -- expression entry points --------------------------------------------

    def rel(self, name: str) -> RelExpr:
        """A lazy expression scanning the catalog relation *name*.

        The name is resolved eagerly so typos fail here, with the
        catalog's "did you mean" hint, rather than at collect time.
        """
        self._db.get(name)
        return RelExpr(self, _Rel(name))

    def from_relation(self, relation: ExtendedRelation) -> RelExpr:
        """A lazy expression over an ad-hoc (non-catalog) relation."""
        return RelExpr(self, _Literal(relation))

    # -- planning -----------------------------------------------------------

    def plan(self, query) -> Plan:
        """The optimized logical plan of *query* (cached)."""
        self._sync()
        return self._compile(query).plan

    def fingerprint(self, query) -> str:
        """The canonical fingerprint of *query*'s optimized plan."""
        self._sync()
        return self._compile(query).fingerprint

    def explain(self, query) -> str:
        """The optimized logical plan of *query*, as indented text."""
        self._sync()
        return self._compile(query).plan.describe()

    # -- execution ----------------------------------------------------------

    def execute(self, query) -> ExtendedRelation:
        """Plan (or reuse) and run *query* through the result cache."""
        self._sync()
        self._stats.queries += 1
        compiled = self._compile(query)
        if not tracing.enabled():
            return self._run(compiled.plan, root=True)
        with tracing.span(
            "session.execute", fingerprint=compiled.fingerprint
        ) as current:
            result = self._run(compiled.plan, root=True)
            current.note(rows=len(result))
            return result

    def explain_analyze(self, query) -> QueryProfile:
        """Execute *query* and return the plan annotated with measurements.

        Every node is evaluated through the physical layer exactly as
        :meth:`execute` would -- same executor, same partitioning --
        but *bypassing the result caches*, so the timings measure real
        work.  Each :class:`~repro.obs.profile.NodeProfile` carries the
        node's wall time, exact input/output row counts (identical
        under every executor, by the serial-equivalence contract),
        partition fan-out, and the kernel-vs-fallback combination split
        (combination counters bumped inside forked process-pool workers
        stay in the children, so the split can undercount under the
        process executor; row counts and timings are always measured in
        this process).  The session's caches and stats are untouched.
        """
        self._sync()
        compiled = self._compile(query)
        config = current_config()
        start = time.perf_counter()
        _, root = self._profile_node(compiled.plan)
        wall = time.perf_counter() - start
        text = query if isinstance(query, str) else compiled.plan.label()
        return QueryProfile(
            query=text,
            executor=config.kind,
            workers=config.workers,
            root=root,
            wall_seconds=wall,
        )

    def _profile_node(self, plan: Plan) -> tuple[ExtendedRelation, NodeProfile]:
        child_results = []
        child_profiles = []
        for child in plan.children():
            result, profile = self._profile_node(child)
            child_results.append(result)
            child_profiles.append(profile)
        inputs = tuple(child_results)
        kernel_baseline = KERNEL_STATS.snapshot()
        exec_baseline = EXEC_STATS.snapshot()
        start = time.perf_counter()
        result = apply_node(plan, inputs, self._db)
        wall = time.perf_counter() - start
        kernel_delta = KERNEL_STATS.since(kernel_baseline)
        exec_after = EXEC_STATS.snapshot()
        rows_in = tuple(len(relation) for relation in inputs)
        profile = NodeProfile(
            label=plan.label(),
            strategy=lower_node(plan).strategy,
            rows_in=rows_in,
            rows_out=len(result),
            wall_seconds=wall,
            partitions=partition_count(max(rows_in, default=0)),
            parallel_batches=(
                exec_after.parallel_batches - exec_baseline.parallel_batches
            ),
            tasks=exec_after.tasks - exec_baseline.tasks,
            kernel_combinations=kernel_delta.kernel_combinations,
            fallback_combinations=kernel_delta.fallback_combinations,
            children=tuple(child_profiles),
        )
        return result, profile

    def collect_all(self, queries) -> list[ExtendedRelation]:
        """Execute many queries, sharing results of common subplans.

        Subtree results are memoized by fingerprint, so a prefix shared
        between any two queries in the batch (or with anything executed
        earlier in this session) is evaluated only once.
        """
        self._sync()
        results = []
        for query in queries:
            self._stats.queries += 1
            results.append(self._run(self._compile(query).plan, root=True))
        return results

    # -- subscriptions ------------------------------------------------------

    def subscribe(self, query, callback=None, eager: bool = True) -> Subscription:
        """Register a standing *query*, re-collected after catalog changes.

        The query may be a string, a :class:`RelExpr` or a plan, exactly
        as for :meth:`execute`.  After any catalog mutation that touches
        a relation the query depends on (a streaming engine's flush, a
        ``replace`` or ``drop``), the subscription re-executes and --
        when a *callback* was given -- calls ``callback(result)``.  With
        *eager* (the default) the query runs once immediately; with
        ``eager=False`` it stays uncollected until the first catalog
        change touching one of its relations.
        """
        subscription = Subscription(self, query, callback)
        self._subscriptions.append(subscription)
        if not self._listening:
            self._db.add_listener(self._on_catalog_change)
            self._listening = True
        if eager:
            subscription.refresh()
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Deregister *subscription*; stops listening when none remain."""
        if subscription in self._subscriptions:
            self._subscriptions.remove(subscription)
        subscription.active = False
        if not self._subscriptions and self._listening:
            self._db.remove_listener(self._on_catalog_change)
            self._listening = False

    def subscriptions(self) -> tuple[Subscription, ...]:
        """The currently registered subscriptions."""
        return tuple(self._subscriptions)

    def _on_catalog_change(self, names) -> None:
        """Database listener: refresh subscriptions the change affects.

        *names* -- the relations mutated since the last notification
        (one for a plain add/drop, several for a batched bulk load, see
        :meth:`repro.storage.Database.batch`) -- are folded into the
        changed set because brand-new names are absent from
        ``changed_names_since`` (they cannot stale a cache), yet they
        are exactly what an ``eager=False`` subscription awaiting its
        relation's first publish depends on.  A bulk load thus triggers
        one sweep, and each affected subscription refreshes once.
        """
        changed = self._db.changed_names_since(self._epoch) | frozenset(names)
        self._sync()
        affected: list[Subscription] = []
        for subscription in list(self._subscriptions):
            if subscription.error is not None:
                # Broken by an earlier change (e.g. its relation was
                # dropped): retry on any mutation, so a drop + re-add --
                # which surfaces as a plain add with no changed names --
                # recovers the subscription.
                affected.append(subscription)
                continue
            try:
                dependencies = self._compile(subscription.query).relations
            except ReproError as exc:
                subscription.error = exc
                continue
            if dependencies & changed:
                # Covers never-collected (eager=False) subscriptions
                # too: they wait, untouched, until a dependency changes.
                affected.append(subscription)
        self._refresh_batch(affected)

    def _refresh_batch(self, affected: list[Subscription]) -> None:
        """Refresh the affected subscriptions, grouped by compiled plan.

        Subscriptions over the same query (same plan fingerprint)
        refresh back to back, so every group-mate after the first hits
        the still-warm result cache, and each distinct query executes
        once per sweep; within a query, the physical layer fans its
        node work out through the configured executor.  Refresh order
        stays registration order within a group and
        first-member-registration order across groups, so callbacks
        fire in a deterministic sequence.
        """
        groups: dict[str, list[Subscription]] = {}
        for subscription in affected:
            try:
                fingerprint = self._compile(subscription.query).fingerprint
            except ReproError:
                # Still uncompilable (e.g. its relation stayed dropped):
                # refresh alone so the error lands on the subscription.
                fingerprint = f"?{id(subscription)}"
            groups.setdefault(fingerprint, []).append(subscription)
        for group in groups.values():
            for subscription in group:
                subscription.refresh()

    # -- cache management ---------------------------------------------------

    def stats(self) -> SessionStats:
        """The accumulated counters (live object, not a copy)."""
        return self._stats

    def cache_info(self) -> dict[str, int]:
        """Current cache sizes, for quick inspection."""
        return {"plans": len(self._plans), "results": len(self._results)}

    def clear_cache(self) -> None:
        """Drop both caches (stats are kept)."""
        self._plans.clear()
        self._results.clear()
        self._result_deps.clear()

    # -- internals ----------------------------------------------------------

    def _sync(self) -> None:
        """Evict cache entries stale against the current catalog.

        Invalidation is *targeted*: only entries whose plan scans one of
        the relations changed since this session's epoch are dropped.
        Queries over untouched relations keep their cached plans and
        results across the change.
        """
        if self._db.version == self._epoch:
            return
        changed = self._db.changed_names_since(self._epoch)
        self._epoch = self._db.version
        evicted = 0
        if changed:
            for source_key, compiled in list(self._plans.items()):
                if compiled.relations & changed:
                    del self._plans[source_key]
                    evicted += 1
            for result_key in list(self._results):
                if self._result_deps.get(result_key, frozenset()) & changed:
                    del self._results[result_key]
                    self._result_deps.pop(result_key, None)
                    evicted += 1
        else:
            # A version bump without change records (only possible with
            # a hand-rolled catalog): fall back to a full flush.
            evicted = len(self._plans) + len(self._results)
            self.clear_cache()
        if evicted:
            self._stats.invalidations += 1
            self._stats.entries_invalidated += evicted

    def _compile(self, query) -> _Compiled:
        if isinstance(query, str):
            source_key = f"sql::{query}"
        elif isinstance(query, RelExpr):
            source_key = f"expr::{query.key()}"
        elif isinstance(query, Plan):
            # Raw plans are caller-managed; fingerprint but don't cache.
            return _Compiled(query, plan_fingerprint(query), scan_names(query))
        else:
            raise PlanError(
                f"cannot plan {query!r} (expected a query string, a "
                "RelExpr, or a Plan)"
            )
        cached = self._plans.get(source_key)
        if cached is not None:
            self._stats.plan_cache_hits += 1
            return cached
        if isinstance(query, str):
            plan = compile_text(query, self._db)
        else:
            plan = optimize(query.lower(self._db))
        compiled = _Compiled(plan, plan_fingerprint(plan), scan_names(plan))
        self._stats.plans_built += 1
        self._remember(self._plans, source_key, compiled)
        return compiled

    def _run(self, plan: Plan, root: bool = False) -> ExtendedRelation:
        key = plan_key(plan)
        cached = self._results.get(key)
        if cached is not None:
            if root:
                self._stats.result_cache_hits += 1
            else:
                self._stats.subplan_cache_hits += 1
            return cached
        inputs = tuple(self._run(child) for child in plan.children())
        # Evaluate through the physical layer: the node may shard its
        # work over the configured executor, and the input cardinalities
        # hint the cost model so ``auto`` mode prices the node's actual
        # fan-out.  Cache keys (per-subtree plan fingerprints) are
        # untouched by physical lowering.
        with _cost.workload(
            entities=max((len(relation) for relation in inputs), default=0),
            sources=max(len(inputs), 1),
        ):
            result = apply_node(plan, inputs, self._db)
        self._stats.node_executions += 1
        self._remember(self._results, key, result)
        self._result_deps[key] = scan_names(plan)
        return result

    def _remember(self, cache: dict, key, value) -> None:
        """Insert with FIFO eviction at the cache-size cap."""
        if len(cache) >= self._max_entries:
            oldest = next(iter(cache))
            cache.pop(oldest)
            if cache is self._results:
                self._result_deps.pop(oldest, None)
        cache[key] = value

    def __repr__(self) -> str:
        return (
            f"Session({self._db.name!r}, {len(self._plans)} cached plans, "
            f"{len(self._results)} cached results)"
        )
