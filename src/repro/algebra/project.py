"""Extended projection (Section 3.3).

The extended projection restricts every tuple to a subset of attributes
that must include the key attributes; the tuple membership attribute is
carried along implicitly (the paper lists it explicitly in the projected
attribute set).  Because keys are retained, no two projected tuples can
collide, and memberships never need merging.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.model.relation import ExtendedRelation


def project(
    relation: ExtendedRelation,
    names: Iterable[str],
    name: str | None = None,
) -> ExtendedRelation:
    """``project(R, names)``: restriction to *names* (keys required).

    A thin wrapper over the single-node plan
    :class:`repro.query.plans.ProjectPlan`.

    >>> from repro.datasets.restaurants import table_ra
    >>> result = project(table_ra(), ["rname", "phone", "speciality", "rating"])
    >>> result.schema.names
    ('rname', 'phone', 'speciality', 'rating')
    """
    from repro.query.plans import LiteralPlan, ProjectPlan

    result = ProjectPlan(LiteralPlan(relation), tuple(names)).execute(None)
    return result if name is None else result.with_name(name)


def project_eager(
    relation: ExtendedRelation,
    names: Iterable[str],
    name: str | None = None,
) -> ExtendedRelation:
    """The eager projection kernel plan execution maps onto."""
    schema = relation.schema.project(list(names), name)
    projected = [etuple.project(schema) for etuple in relation]
    return ExtendedRelation(schema, projected, on_unsupported="drop")
