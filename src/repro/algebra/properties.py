"""Mechanical verification of Theorem 1 (Section 3.6).

The paper states two properties every extended relational operation must
satisfy so that query processing over the *stored* extension of a
relation is sufficient (and hence finite):

* **Closure**: given input relations whose tuples all have ``sn > 0``,
  an operation never produces a tuple with ``sn = 0``.
* **Boundedness**: augmenting the inputs with their *complements* --
  hypothetical relations holding tuples for all entities about which the
  input has no positive evidence (``sn = 0``, and, absent any refuting
  evidence, ``sp = 1`` with vacuous attribute values) -- adds nothing to
  the set of result tuples with ``sn > 0``.

The proof lives in the authors' technical report TR93-14, which is not
publicly available; this module verifies both properties mechanically on
arbitrary relations, and the hypothesis-based test-suite exercises them
on thousands of generated cases.

Why complements carry ``sp = 1``: a complement tuple models *complete
ignorance* about the entity.  If a complement tuple carried ``sp < 1``
(positive evidence of non-membership), Dempster-combining it with a
matched real tuple would *change* that tuple's membership, breaking the
equality in the boundedness property -- the test-suite demonstrates this
with an explicit negative example.  CWA_ER's "any tuple not in the
database has sn = 0" therefore reads naturally as ``(0, 1)``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from repro.errors import OperationError
from repro.model.etuple import ExtendedTuple
from repro.model.evidence import EvidenceSet
from repro.model.membership import TupleMembership
from repro.model.relation import ExtendedRelation


def verify_closure(result: ExtendedRelation) -> bool:
    """``True`` when every tuple of *result* has ``sn > 0``."""
    return all(etuple.membership.is_supported for etuple in result)


def complement_relation(
    relation: ExtendedRelation,
    keys: Iterable[tuple],
    sp: object = 1,
) -> ExtendedRelation:
    """A (hypothetical) complement fragment of *relation*.

    Builds tuples for the given *keys* -- which must not occur in
    *relation* -- with membership ``(0, sp)`` and vacuous evidence for
    every non-key attribute.  ``sp`` defaults to 1 (complete ignorance);
    pass a smaller value only to demonstrate how boundedness would fail.

    The returned relation uses the ``allow`` policy because complement
    tuples violate CWA_ER by construction.
    """
    schema = relation.schema
    membership = TupleMembership(0, sp)
    complements: list[ExtendedTuple] = []
    for key in keys:
        if not isinstance(key, tuple):
            key = (key,)
        if len(key) != len(schema.key_names):
            raise OperationError(
                f"complement key {key!r} does not match key attributes "
                f"{schema.key_names}"
            )
        if relation.get(key) is not None:
            raise OperationError(
                f"key {key!r} already present in {relation.name!r}; "
                "complements only hold entities without positive evidence"
            )
        values: dict[str, object] = dict(zip(schema.key_names, key))
        for attr_name in schema.nonkey_names:
            attribute = schema.attribute(attr_name)
            if attribute.uncertain:
                values[attr_name] = EvidenceSet.vacuous(attribute.domain)
            else:
                values[attr_name] = _arbitrary_value(attribute)
        complements.append(ExtendedTuple(schema, values, membership))
    return ExtendedRelation(schema, complements, on_unsupported="allow")


def _arbitrary_value(attribute):
    """A legal definite value for a certain attribute of a complement
    tuple (its content is immaterial: the tuple carries sn = 0)."""
    domain = attribute.domain
    if domain.is_enumerable:
        return sorted(domain.frame().values, key=repr)[0]
    sample = getattr(domain, "low", None)
    if sample is not None:
        return sample
    probe: object
    for probe in ("", 0):
        if domain.contains(probe):
            return probe
    raise OperationError(
        f"cannot synthesize a complement value for domain {domain.name!r}"
    )


def augment_with_complement(
    relation: ExtendedRelation,
    keys: Iterable[tuple],
    sp: object = 1,
) -> ExtendedRelation:
    """``R union complement(R)`` -- the paper's ``R (+) R-bar``.

    Since the complement's keys are disjoint from the relation's, the
    extended union is a plain concatenation; the result is built with
    the ``allow`` policy so the ``sn = 0`` tuples survive.
    """
    complement = complement_relation(relation, keys, sp)
    combined = list(relation.tuples()) + list(complement.tuples())
    return ExtendedRelation(relation.schema, combined, on_unsupported="allow")


def verify_boundedness(
    operation: Callable[..., ExtendedRelation],
    relations: Sequence[ExtendedRelation],
    complement_keys: Sequence[Iterable[tuple]],
    sp: object = 1,
) -> bool:
    """Check the boundedness property for *operation*.

    Applies *operation* once to *relations* and once to the same
    relations augmented with complements over *complement_keys* (one key
    collection per relation), then compares the ``sn > 0`` tuples of
    both results for exact equality.

    >>> from repro.datasets.restaurants import table_ra, table_rb
    >>> from repro.algebra import union
    >>> verify_boundedness(union, [table_ra(), table_rb()],
    ...                    [[("phantom1",)], [("phantom2",)]])
    True
    """
    if len(relations) != len(complement_keys):
        raise OperationError(
            "need exactly one complement key collection per input relation"
        )
    plain = operation(*relations)
    augmented_inputs = [
        augment_with_complement(relation, keys, sp)
        for relation, keys in zip(relations, complement_keys)
    ]
    augmented = operation(*augmented_inputs)
    return _supported_tuples(plain) == _supported_tuples(augmented)


def _supported_tuples(relation: ExtendedRelation) -> dict:
    """The sn > 0 tuples of a relation, keyed for comparison."""
    return {
        etuple.key(): (tuple(etuple.items()), etuple.membership)
        for etuple in relation
        if etuple.membership.is_supported
    }
