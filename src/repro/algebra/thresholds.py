"""Membership threshold conditions (Section 3.1.3).

A membership threshold condition ``Q`` constrains the *revised* tuple
membership of a selection (or join) result: e.g. ``sn > 0.5`` keeps only
tuples whose revised necessary support exceeds one half, and ``sn = 1``
keeps only tuples that definitely satisfy the condition.

To stay consistent with the interpretation of extended relations
(CWA_ER), every threshold is automatically conjoined with ``sn > 0``;
the selection operation enforces this, so a user-supplied ``Q`` can
never smuggle an unsupported tuple into a result.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import OperationError
from repro.ds.mass import coerce_mass_value
from repro.model.membership import TupleMembership


class MembershipThreshold:
    """A predicate over revised ``(sn, sp)`` membership pairs.

    Build instances from the factory functions (:func:`sn_greater` and
    friends) or combine them with ``&``.

    >>> threshold = sn_greater(0) & sp_at_least("1/2")
    >>> threshold(TupleMembership("1/4", "3/4"))
    True
    """

    __slots__ = ("_check", "_description")

    def __init__(self, check: Callable[[TupleMembership], bool], description: str):
        self._check = check
        self._description = description

    @property
    def description(self) -> str:
        """Human-readable rendering, e.g. ``"sn > 0"``."""
        return self._description

    def __call__(self, membership: TupleMembership) -> bool:
        return bool(self._check(membership))

    def __and__(self, other: "MembershipThreshold") -> "MembershipThreshold":
        if not isinstance(other, MembershipThreshold):
            raise OperationError(f"cannot conjoin threshold with {other!r}")
        return MembershipThreshold(
            lambda tm: self._check(tm) and other._check(tm),
            f"{self._description} and {other._description}",
        )

    def __repr__(self) -> str:
        return f"MembershipThreshold({self._description})"


def sn_greater(bound: object) -> MembershipThreshold:
    """``sn > bound``."""
    value = coerce_mass_value(bound)
    return MembershipThreshold(lambda tm: tm.sn > value, f"sn > {value}")


def sn_at_least(bound: object) -> MembershipThreshold:
    """``sn >= bound``."""
    value = coerce_mass_value(bound)
    return MembershipThreshold(lambda tm: tm.sn >= value, f"sn >= {value}")


def sn_equals(bound: object) -> MembershipThreshold:
    """``sn = bound`` (e.g. ``sn = 1`` for definite answers only)."""
    value = coerce_mass_value(bound)
    return MembershipThreshold(lambda tm: tm.sn == value, f"sn = {value}")


def sp_greater(bound: object) -> MembershipThreshold:
    """``sp > bound``."""
    value = coerce_mass_value(bound)
    return MembershipThreshold(lambda tm: tm.sp > value, f"sp > {value}")


def sp_at_least(bound: object) -> MembershipThreshold:
    """``sp >= bound``."""
    value = coerce_mass_value(bound)
    return MembershipThreshold(lambda tm: tm.sp >= value, f"sp >= {value}")


def sp_equals(bound: object) -> MembershipThreshold:
    """``sp = bound``."""
    value = coerce_mass_value(bound)
    return MembershipThreshold(lambda tm: tm.sp == value, f"sp = {value}")


#: The canonical threshold: tuples with any positive necessary support.
SN_POSITIVE = sn_greater(0)

#: Only tuples that *definitely* satisfy the condition.
SN_CERTAIN = sn_equals(1)

#: No additional constraint (the implicit ``sn > 0`` still applies).
ALWAYS = MembershipThreshold(lambda tm: True, "true")
