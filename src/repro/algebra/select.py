"""Extended selection (Section 3.1).

For every tuple ``r`` of the input relation, the selection:

1. evaluates the selection condition ``P`` to a support pair via
   ``F_SS(r, P)`` (see :mod:`repro.algebra.support`),
2. revises the tuple membership with the multiplicative rule
   ``F_TM(r.(sn,sp), F_SS(r, P))`` -- predicate satisfaction and original
   membership are treated as independent events (Figure 3),
3. keeps the tuple when the revised membership passes the membership
   threshold condition ``Q`` *and* the implicit ``sn > 0`` required for
   the result to be a valid extended relation.

The original attribute values are retained in the result (the paper's
footnote 4 contrasts this with DeMichiel's approach, which rewrites
attribute values during selection).
"""

from __future__ import annotations

from repro.model.etuple import ExtendedTuple
from repro.model.relation import ExtendedRelation
from repro.algebra.predicates import Predicate
from repro.algebra.thresholds import SN_POSITIVE, MembershipThreshold


def select(
    relation: ExtendedRelation,
    predicate: Predicate,
    threshold: MembershipThreshold = SN_POSITIVE,
    name: str | None = None,
) -> ExtendedRelation:
    """``select(R, P, Q)``: the paper's extended selection.

    A thin wrapper over the single-node plan
    :class:`repro.query.plans.SelectPlan`; composite queries should use
    the lazy expression API (:meth:`repro.storage.Database.rel`) so the
    planner can optimize across operations.

    Parameters
    ----------
    relation:
        The input extended relation.
    predicate:
        The selection condition ``P`` (is-/theta-predicates, possibly
        conjoined).
    threshold:
        The membership threshold condition ``Q``; conjoined with
        ``sn > 0`` automatically.
    name:
        Optional result relation name (defaults to the input's name).

    >>> from repro.datasets.restaurants import table_ra
    >>> from repro.algebra import IsPredicate, select
    >>> result = select(table_ra(), IsPredicate("speciality", {"si"}))
    >>> sorted(t.key()[0] for t in result)
    ['garden', 'wok']
    """
    from repro.query.plans import LiteralPlan, SelectPlan

    result = SelectPlan(LiteralPlan(relation), predicate, threshold).execute(None)
    return result if name is None else result.with_name(name)


def select_eager(
    relation: ExtendedRelation,
    predicate: Predicate,
    threshold: MembershipThreshold = SN_POSITIVE,
    name: str | None = None,
) -> ExtendedRelation:
    """The eager selection kernel plan execution maps onto."""
    predicate.validate_against(relation.schema)
    schema = relation.schema if name is None else relation.schema.with_name(name)
    selected: list[ExtendedTuple] = []
    for etuple in relation:
        support = predicate.support(etuple)
        revised = etuple.membership.combine_product(support)
        if not revised.is_supported:
            continue
        if not threshold(revised):
            continue
        if schema is relation.schema:
            selected.append(etuple.with_membership(revised))
        else:
            selected.append(
                ExtendedTuple(schema, dict(etuple.items()), revised)
            )
    return ExtendedRelation(schema, selected, on_unsupported="drop")
