"""Selection/join condition ASTs.

A *selection condition* (Section 3.1.1) is an atomic predicate -- an
``is``-predicate or a theta-predicate -- or a conjunction of atomic
predicates.  Predicates evaluate against an extended tuple to a support
pair ``(sn, sp)`` rather than a boolean, because the attribute values
involved are evidence sets.

The paper defines conjunction only (with atomic predicates assumed
mutually independent, combined by the multiplicative rule).  ``Or`` and
``Not`` are provided as clearly-marked extensions using the independent
disjunction/negation rules on support pairs.

Convenience constructors keep call sites readable::

    from repro.algebra import attr, lit

    p = attr("speciality").is_in({"si"}) & attr("rating").is_in({"ex"})
    q = attr("bldg-no") >= lit(500)
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable

from repro.errors import PredicateError
from repro.ds.kernel import kernel_enabled
from repro.model.etuple import ExtendedTuple
from repro.model.evidence import EvidenceSet
from repro.model.membership import SupportPair
from repro.algebra.support import is_support, normalize_theta, theta_support


class Predicate(ABC):
    """Base class of selection conditions."""

    @abstractmethod
    def support(self, etuple: ExtendedTuple) -> SupportPair:
        """``F_SS``: the support pair of *etuple* for this predicate."""

    @abstractmethod
    def attributes(self) -> frozenset[str]:
        """The attribute names the predicate references."""

    def __and__(self, other: "Predicate") -> "And":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)

    def validate_against(self, schema) -> None:
        """Raise :class:`PredicateError` when the predicate references
        attributes absent from *schema*."""
        missing = [name for name in sorted(self.attributes()) if name not in schema]
        if missing:
            raise PredicateError(
                f"predicate references unknown attribute(s) "
                f"{', '.join(missing)} of relation {schema.name!r}"
            )

    @abstractmethod
    def rename_attributes(self, mapping) -> "Predicate":
        """A copy with attribute references renamed via ``{old: new}``.

        Used by the query planner to translate predicates across the
        attribute prefixing a cartesian product applies.
        """


class Operand(ABC):
    """A theta-predicate operand: an attribute reference or a literal."""

    @abstractmethod
    def resolve(self, etuple: ExtendedTuple) -> EvidenceSet:
        """The operand's evidence set in the context of *etuple*."""

    @abstractmethod
    def attributes(self) -> frozenset[str]:
        """Attribute names referenced by the operand."""

    # Operator sugar so `attr("a") >= lit(5)` builds a ThetaPredicate.
    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, Operand):
            return ThetaPredicate(self, "=", other)
        return NotImplemented

    def __ne__(self, other):  # type: ignore[override]
        raise PredicateError("theta-predicates do not include '!='")

    def __lt__(self, other: "Operand") -> "ThetaPredicate":
        return ThetaPredicate(self, "<", other)

    def __le__(self, other: "Operand") -> "ThetaPredicate":
        return ThetaPredicate(self, "<=", other)

    def __gt__(self, other: "Operand") -> "ThetaPredicate":
        return ThetaPredicate(self, ">", other)

    def __ge__(self, other: "Operand") -> "ThetaPredicate":
        return ThetaPredicate(self, ">=", other)

    __hash__ = None  # type: ignore[assignment]


class AttributeOperand(Operand):
    """A reference to an attribute of the evaluated tuple."""

    __slots__ = ("_name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise PredicateError(f"attribute name must be a string, got {name!r}")
        self._name = name

    @property
    def name(self) -> str:
        """The referenced attribute name."""
        return self._name

    def resolve(self, etuple: ExtendedTuple) -> EvidenceSet:
        return etuple.evidence(self._name)

    def attributes(self) -> frozenset[str]:
        return frozenset({self._name})

    def is_in(self, values: Iterable) -> "IsPredicate":
        """Build the is-predicate ``name is {values}``."""
        return IsPredicate(self._name, values)

    def is_(self, values: Iterable) -> "IsPredicate":
        """Alias for :meth:`is_in`, matching the SQL ``IS {...}`` spelling."""
        return IsPredicate(self._name, values)

    def __repr__(self) -> str:
        return f"attr({self._name!r})"


class LiteralOperand(Operand):
    """A constant operand: a scalar or an evidence set."""

    __slots__ = ("_evidence",)

    def __init__(self, value: object):
        if isinstance(value, EvidenceSet):
            self._evidence = value
        elif isinstance(value, str) and value.startswith("[") and value.endswith("]"):
            self._evidence = EvidenceSet.parse(value)
        else:
            self._evidence = EvidenceSet.definite(value)

    @property
    def evidence(self) -> EvidenceSet:
        """The literal as an evidence set."""
        return self._evidence

    def resolve(self, etuple: ExtendedTuple) -> EvidenceSet:
        return self._evidence

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return f"lit({self._evidence.format()})"


def attr(name: str) -> AttributeOperand:
    """Shorthand for :class:`AttributeOperand`."""
    return AttributeOperand(name)


def lit(value: object) -> LiteralOperand:
    """Shorthand for :class:`LiteralOperand`."""
    return LiteralOperand(value)


class IsPredicate(Predicate):
    """``A is {c1, ..., cn}``: membership of the attribute in a value set.

    Support: ``(Bel({c1..cn}), Pls({c1..cn}))`` of the tuple's evidence.

    When the attribute's evidence rides on the compiled kernel (see
    :mod:`repro.ds.kernel`), the tested value set is encoded once per
    interned frame and every tuple evaluates by subset-mask tests --
    a relation scan never re-hashes the predicate's value set.
    """

    __slots__ = ("_attribute", "_values", "_mask_cache")

    def __init__(self, attribute: str, values: Iterable):
        if not attribute or not isinstance(attribute, str):
            raise PredicateError(
                f"is-predicate needs an attribute name, got {attribute!r}"
            )
        self._attribute = attribute
        self._values = frozenset(values)
        if not self._values:
            raise PredicateError("is-predicate needs at least one value")
        self._mask_cache: dict = {}

    @property
    def attribute(self) -> str:
        """The tested attribute."""
        return self._attribute

    @property
    def values(self) -> frozenset:
        """The tested value set."""
        return self._values

    def support(self, etuple: ExtendedTuple) -> SupportPair:
        evidence = etuple.evidence(self._attribute)
        mass_function = evidence.mass_function
        if kernel_enabled() and mass_function.frame is not None:
            compiled = mass_function.compiled()
            interned = compiled.interned
            query_mask = self._mask_cache.get(interned)
            if query_mask is None:
                query_mask = interned.mask_of(self._values)
                if len(self._mask_cache) >= 8:
                    # A predicate normally meets one frame per attribute;
                    # more means frames are being re-interned (cache
                    # churn) -- drop stale entries rather than pin dead
                    # InternedFrame objects forever.
                    self._mask_cache.clear()
                self._mask_cache[interned] = query_mask
            sn, sp = compiled.bel_pls(query_mask)
            return SupportPair(sn, sp)
        return is_support(evidence, self._values)

    def attributes(self) -> frozenset[str]:
        return frozenset({self._attribute})

    def rename_attributes(self, mapping) -> "IsPredicate":
        return IsPredicate(
            mapping.get(self._attribute, self._attribute), self._values
        )

    def __repr__(self) -> str:
        values = ",".join(sorted(map(str, self._values)))
        return f"({self._attribute} is {{{values}}})"


class ThetaPredicate(Predicate):
    """``A theta B`` for theta in {=, <, >, <=, >=} over evidence sets."""

    __slots__ = ("_left", "_op", "_right")

    def __init__(self, left: Operand | str, op: str, right: Operand | object):
        if isinstance(left, str):
            left = AttributeOperand(left)
        if not isinstance(right, Operand):
            right = LiteralOperand(right)
        if not isinstance(left, Operand):
            raise PredicateError(f"invalid theta operand {left!r}")
        self._left = left
        self._op = normalize_theta(op)
        self._right = right

    @property
    def op(self) -> str:
        """The canonical comparison operator."""
        return self._op

    @property
    def left(self) -> Operand:
        """Left operand."""
        return self._left

    @property
    def right(self) -> Operand:
        """Right operand."""
        return self._right

    def support(self, etuple: ExtendedTuple) -> SupportPair:
        return theta_support(
            self._left.resolve(etuple), self._right.resolve(etuple), self._op
        )

    def attributes(self) -> frozenset[str]:
        return self._left.attributes() | self._right.attributes()

    def rename_attributes(self, mapping) -> "ThetaPredicate":
        def rename_operand(operand: Operand) -> Operand:
            if isinstance(operand, AttributeOperand):
                return AttributeOperand(mapping.get(operand.name, operand.name))
            return operand

        return ThetaPredicate(
            rename_operand(self._left), self._op, rename_operand(self._right)
        )

    def __repr__(self) -> str:
        return f"({self._left!r} {self._op} {self._right!r})"


class And(Predicate):
    """Conjunction of independent predicates (multiplicative rule)."""

    __slots__ = ("_parts",)

    def __init__(self, *parts: Predicate):
        flattened: list[Predicate] = []
        for part in parts:
            if isinstance(part, And):
                flattened.extend(part.parts)
            elif isinstance(part, Predicate):
                flattened.append(part)
            else:
                raise PredicateError(f"expected a Predicate, got {part!r}")
        if len(flattened) < 2:
            raise PredicateError("a conjunction needs at least two predicates")
        self._parts = tuple(flattened)

    @property
    def parts(self) -> tuple[Predicate, ...]:
        """The conjoined predicates, flattened."""
        return self._parts

    def support(self, etuple: ExtendedTuple) -> SupportPair:
        combined = self._parts[0].support(etuple)
        for part in self._parts[1:]:
            combined = combined.combine_product(part.support(etuple))
        return combined

    def attributes(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for part in self._parts:
            names = names | part.attributes()
        return names

    def rename_attributes(self, mapping) -> "And":
        return And(*[part.rename_attributes(mapping) for part in self._parts])

    def __repr__(self) -> str:
        return "(" + " and ".join(map(repr, self._parts)) + ")"


class Or(Predicate):
    """Disjunction of independent predicates.

    *Extension*: the paper defines conjunction only; this uses the
    independent-events disjunction rule on support pairs.
    """

    __slots__ = ("_parts",)

    def __init__(self, *parts: Predicate):
        flattened: list[Predicate] = []
        for part in parts:
            if isinstance(part, Or):
                flattened.extend(part.parts)
            elif isinstance(part, Predicate):
                flattened.append(part)
            else:
                raise PredicateError(f"expected a Predicate, got {part!r}")
        if len(flattened) < 2:
            raise PredicateError("a disjunction needs at least two predicates")
        self._parts = tuple(flattened)

    @property
    def parts(self) -> tuple[Predicate, ...]:
        """The disjoined predicates, flattened."""
        return self._parts

    def support(self, etuple: ExtendedTuple) -> SupportPair:
        combined = self._parts[0].support(etuple)
        for part in self._parts[1:]:
            combined = combined.combine_disjunction(part.support(etuple))
        return combined

    def attributes(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for part in self._parts:
            names = names | part.attributes()
        return names

    def rename_attributes(self, mapping) -> "Or":
        return Or(*[part.rename_attributes(mapping) for part in self._parts])

    def __repr__(self) -> str:
        return "(" + " or ".join(map(repr, self._parts)) + ")"


class Not(Predicate):
    """Negation of a predicate.

    *Extension*: support is the complement interval ``(1 - sp, 1 - sn)``.
    """

    __slots__ = ("_part",)

    def __init__(self, part: Predicate):
        if not isinstance(part, Predicate):
            raise PredicateError(f"expected a Predicate, got {part!r}")
        self._part = part

    @property
    def part(self) -> Predicate:
        """The negated predicate."""
        return self._part

    def support(self, etuple: ExtendedTuple) -> SupportPair:
        return self._part.support(etuple).negate()

    def attributes(self) -> frozenset[str]:
        return self._part.attributes()

    def rename_attributes(self, mapping) -> "Not":
        return Not(self._part.rename_attributes(mapping))

    def __repr__(self) -> str:
        return f"(not {self._part!r})"
