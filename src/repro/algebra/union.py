"""Extended union (Section 3.2): attribute-value conflict resolution.

The extended union of two union-compatible relations ``R`` and ``S``
matched on their common key:

* keeps tuples whose key appears in only one relation unchanged (the
  other relation is totally ignorant about that entity, and combining
  with vacuous evidence is the identity);
* for tuples matched on the key, combines **every common non-key
  attribute** with Dempster's rule of combination, and combines the two
  **tuple membership** pairs with Dempster's rule on the boolean frame
  (the paper's function ``F``).

This operation *is* the paper's attribute-value conflict resolution: the
two source relations are treated as independent bodies of evidence about
the same real-world entities, and Dempster's rule pools them, shrinking
uncertainty where they agree and renormalizing where they conflict.

Total conflict (``kappa = 1``) means the sources are irreconcilable for
that attribute; per Section 2.2 "some actions may be necessary to inform
the data administrators".  Three policies implement that action:

* ``"raise"`` (default) -- propagate :class:`TotalConflictError`;
* ``"vacuous"`` -- record the conflict and fall back to total ignorance
  for the offending *uncertain* attribute (a certain attribute cannot
  hold ignorance, so the tuple is dropped and recorded instead);
* ``"drop"`` -- record the conflict and drop the merged tuple.

:func:`union_with_report` additionally returns a :class:`UnionReport`
with per-attribute conflict measures for the data administrator.

The merge decomposes per entity (matching is on the definite key), so
under a parallel executor (:mod:`repro.exec`) the loop shards into
per-entity partition tasks via :func:`_merge_partitioned` -- both
relations hash-partition on the key, each shard merges independently,
and reassembly walks the serial iteration order, reproducing the serial
relation, report and first-conflict error exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TotalConflictError
from repro.ds.combination import combine_with_conflict
from repro.ds.mass import Numeric
from repro.exec.executors import get_executor, partition_count
from repro.model.etuple import ExtendedTuple
from repro.model.evidence import EvidenceSet
from repro.model.membership import TupleMembership
from repro.model.relation import ExtendedRelation
from repro.errors import OperationError

#: Accepted total-conflict policies.
CONFLICT_POLICIES = ("raise", "vacuous", "drop")


@dataclass(frozen=True)
class ConflictRecord:
    """One observed conflict between the two sources.

    ``attribute`` is the attribute name, or ``"(sn,sp)"`` for the tuple
    membership evidence.  ``kappa`` is Dempster's conflict mass;
    ``total`` marks irreconcilable (``kappa = 1``) conflicts.
    """

    key: tuple
    attribute: str
    kappa: Numeric
    total: bool


@dataclass
class UnionReport:
    """Administrator-facing summary of an extended union."""

    matched: list[tuple] = field(default_factory=list)
    left_only: list[tuple] = field(default_factory=list)
    right_only: list[tuple] = field(default_factory=list)
    conflicts: list[ConflictRecord] = field(default_factory=list)
    dropped: list[tuple] = field(default_factory=list)

    @property
    def total_conflicts(self) -> list[ConflictRecord]:
        """Only the irreconcilable conflicts."""
        return [record for record in self.conflicts if record.total]

    def max_kappa(self) -> Numeric:
        """The largest observed conflict mass (0 when conflict-free)."""
        return max((record.kappa for record in self.conflicts), default=0)

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{len(self.matched)} matched, {len(self.left_only)} left-only, "
            f"{len(self.right_only)} right-only, {len(self.conflicts)} "
            f"conflicting attribute pairs ({len(self.total_conflicts)} total), "
            f"{len(self.dropped)} tuples dropped"
        )


def _combine_evidence(
    left: EvidenceSet, right: EvidenceSet
) -> tuple[EvidenceSet | None, Numeric]:
    """Dempster-combine two attribute values; ``(None, 1)`` on total
    conflict.  Returns the conflict mass alongside the result.

    Runs on the compiled evidence kernel whenever both sides carry the
    attribute's enumerated frame (see :mod:`repro.ds.kernel`); the
    merged evidence then stays compiled, so the integration fold and
    the streaming engine's resident states never re-derive masks.
    """
    combined, kappa = combine_with_conflict(
        left.mass_function, right.mass_function
    )
    if combined is None:
        return None, kappa
    return EvidenceSet(combined, left.domain or right.domain), kappa


def _membership_kappa(a: TupleMembership, b: TupleMembership) -> Numeric:
    """Dempster conflict between two membership pairs."""
    return a.sn * (1 - b.sp) + (1 - a.sp) * b.sn


def union_with_report(
    left: ExtendedRelation,
    right: ExtendedRelation,
    name: str | None = None,
    on_conflict: str = "raise",
) -> tuple[ExtendedRelation, UnionReport]:
    """Extended union returning the merged relation and a conflict report.

    >>> from repro.datasets.restaurants import table_ra, table_rb
    >>> merged, report = union_with_report(table_ra(), table_rb())
    >>> len(merged), len(report.matched), len(report.left_only)
    (6, 5, 1)
    """
    if on_conflict not in CONFLICT_POLICIES:
        raise OperationError(
            f"on_conflict must be one of {CONFLICT_POLICIES}, got {on_conflict!r}"
        )
    left.schema.require_union_compatible(right.schema)
    schema = left.schema.with_name(
        name if name is not None else f"{left.name}_union_{right.name}"
    )
    n = partition_count(len(left) + len(right))
    if n <= 1:
        return _union_serial(left, right, schema, on_conflict)
    return _merge_partitioned(
        left, right, schema, on_conflict, n, _union_serial, keep_unmatched=True
    )


def _union_serial(
    left: ExtendedRelation,
    right: ExtendedRelation,
    schema,
    on_conflict: str,
) -> tuple[ExtendedRelation, UnionReport]:
    """The single-loop union core (also the per-partition task body)."""
    report = UnionReport()
    merged_tuples: list[ExtendedTuple] = []

    def rebuilt(etuple: ExtendedTuple) -> ExtendedTuple:
        return ExtendedTuple(schema, dict(etuple.items()), etuple.membership)

    for l_tuple in left:
        key = l_tuple.key()
        r_tuple = right.get(key)
        if r_tuple is None:
            report.left_only.append(key)
            merged_tuples.append(rebuilt(l_tuple))
            continue
        report.matched.append(key)
        merged = _merge_pair(l_tuple, r_tuple, schema, key, report, on_conflict)
        if merged is not None:
            merged_tuples.append(merged)
    for r_tuple in right:
        key = r_tuple.key()
        if key not in left:
            report.right_only.append(key)
            merged_tuples.append(rebuilt(r_tuple))
    return (
        ExtendedRelation(schema, merged_tuples, on_unsupported="drop"),
        report,
    )


def _merge_shard(common, pair):
    """One shard of a partitioned merge (module-level: remote-shippable).

    *common* is the per-batch constant ``(serial_core, schema,
    on_conflict)``; total-conflict errors return as data so the
    coordinator can pick the serial-order winner across shards.
    """
    serial_core, schema, on_conflict = common
    try:
        return serial_core(pair[0], pair[1], schema, on_conflict), None
    except TotalConflictError as exc:
        return None, exc


def _merge_partitioned(
    left: ExtendedRelation,
    right: ExtendedRelation,
    schema,
    on_conflict: str,
    n: int,
    serial_core,
    keep_unmatched: bool,
) -> tuple[ExtendedRelation, UnionReport]:
    """Shard a key-matched merge into per-entity partition tasks.

    Both relations are hash-partitioned on the shared key, so each
    entity's tuples land in the same shard and *serial_core* (the union
    or intersection loop) runs per shard.  Reassembly walks the input
    relations in their serial iteration order, so the merged relation
    and every report list are identical to the serial result --
    including which :class:`TotalConflictError` fires first under the
    ``raise`` policy (errors are collected per shard and the one whose
    entity comes earliest in left-iteration order wins).
    """
    pairs = list(zip(left.partitions(n), right.partitions(n)))
    executor = get_executor()
    if executor.kind == "remote":
        # The encoded form pickles (serial_core, schema, on_conflict)
        # once per batch, so shards can ship to worker daemons; the
        # closure below would pin the whole batch to the local fallback.
        outcomes = executor.map_encoded(
            _merge_shard, (serial_core, schema, on_conflict), pairs
        )
    else:

        def task(pair):
            return _merge_shard((serial_core, schema, on_conflict), pair)

        outcomes = executor.map(task, pairs)
    errors = [exc for _, exc in outcomes if exc is not None]
    if errors:
        position = {key: index for index, key in enumerate(left.keys())}
        fallback = len(position)
        raise min(
            errors,
            key=lambda exc: position.get(
                getattr(exc, "entity_key", None), fallback
            ),
        )

    merged_by_key: dict[tuple, ExtendedTuple] = {}
    conflicts_by_key: dict[tuple, list[ConflictRecord]] = {}
    dropped: set[tuple] = set()
    for (relation_part, report_part), _ in outcomes:
        for etuple in relation_part:
            merged_by_key[etuple.key()] = etuple
        for record in report_part.conflicts:
            conflicts_by_key.setdefault(record.key, []).append(record)
        dropped.update(report_part.dropped)

    report = UnionReport()
    merged_tuples: list[ExtendedTuple] = []
    for key in left.keys():
        if key in right:
            report.matched.append(key)
            report.conflicts.extend(conflicts_by_key.get(key, ()))
            if key in dropped:
                report.dropped.append(key)
        else:
            report.left_only.append(key)
        etuple = merged_by_key.get(key)
        if etuple is not None:
            merged_tuples.append(etuple)
    for key in right.keys():
        if key not in left:
            report.right_only.append(key)
            if keep_unmatched:
                etuple = merged_by_key.get(key)
                if etuple is not None:
                    merged_tuples.append(etuple)
    return (
        ExtendedRelation(schema, merged_tuples, on_unsupported="drop"),
        report,
    )


def _merge_pair(
    l_tuple: ExtendedTuple,
    r_tuple: ExtendedTuple,
    schema,
    key: tuple,
    report: UnionReport,
    on_conflict: str,
) -> ExtendedTuple | None:
    """Merge two key-matched tuples; ``None`` when the tuple is dropped."""
    values: dict[str, object] = {
        name: l_tuple.value(name) for name in schema.key_names
    }
    for attr_name in schema.nonkey_names:
        attribute = schema.attribute(attr_name)
        combined, kappa = _combine_evidence(
            l_tuple.evidence(attr_name), r_tuple.evidence(attr_name)
        )
        if kappa != 0:
            report.conflicts.append(
                ConflictRecord(key, attr_name, kappa, combined is None)
            )
        if combined is None:
            if on_conflict == "raise":
                error = TotalConflictError(
                    f"total conflict on attribute {attr_name!r} of tuple "
                    f"{key!r}: "
                    f"{l_tuple.evidence(attr_name).format()} vs "
                    f"{r_tuple.evidence(attr_name).format()}"
                )
                # Which entity conflicted; partitioned merges use this
                # to re-raise the serial-order-first error.
                error.entity_key = key
                raise error
            if on_conflict == "vacuous" and attribute.uncertain:
                domain = attribute.domain
                values[attr_name] = EvidenceSet.vacuous(domain)
                continue
            report.dropped.append(key)
            return None
        values[attr_name] = combined

    membership_kappa = _membership_kappa(l_tuple.membership, r_tuple.membership)
    if membership_kappa == 1:
        report.conflicts.append(ConflictRecord(key, "(sn,sp)", membership_kappa, True))
        if on_conflict == "raise":
            error = TotalConflictError(
                f"total conflict on membership of tuple {key!r}: "
                f"{l_tuple.membership.format()} vs {r_tuple.membership.format()}"
            )
            error.entity_key = key
            raise error
        report.dropped.append(key)
        return None
    if membership_kappa != 0:
        report.conflicts.append(
            ConflictRecord(key, "(sn,sp)", membership_kappa, False)
        )
    membership = l_tuple.membership.combine_dempster(r_tuple.membership)
    return ExtendedTuple(schema, values, membership)


def union(
    left: ExtendedRelation,
    right: ExtendedRelation,
    name: str | None = None,
    on_conflict: str = "raise",
) -> ExtendedRelation:
    """``R union S`` matched on the common key (see module docstring).

    A thin wrapper over the single-node plan
    :class:`repro.query.plans.UnionPlan`; use
    :func:`union_with_report` directly when the conflict report matters.

    >>> from repro.datasets.restaurants import table_ra, table_rb
    >>> merged = union(table_ra(), table_rb())
    >>> merged.get(("mehl",)).membership.format()
    '(5/6,5/6)'
    """
    from repro.query.plans import LiteralPlan, UnionPlan

    merged = UnionPlan(
        LiteralPlan(left), LiteralPlan(right), on_conflict
    ).execute(None)
    return merged if name is None else merged.with_name(name)
