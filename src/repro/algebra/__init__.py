"""The extended relational algebra (Section 3 of the paper).

Five operations are defined over extended relations, each marked with a
tilde in the paper:

* **selection** -- evaluates a predicate to a support pair per tuple via
  the selection support function ``F_SS``, revises the membership with
  the multiplicative rule ``F_TM``, and keeps tuples passing a
  membership threshold condition ``Q`` (always conjoined with
  ``sn > 0``);
* **union** -- merges tuples matched on the common key, pooling both the
  attribute evidence and the membership evidence with Dempster's rule
  of combination (this is the attribute-value conflict resolution
  operation);
* **projection** -- restricts to a subset of attributes that must retain
  the key and implicitly keeps the membership attribute;
* **cartesian product** -- concatenates tuple pairs, combining
  memberships with ``F_TM``;
* **join** -- a cartesian product followed by a selection.

All operations satisfy the closure and boundedness properties of
Section 3.6 (Theorem 1); :mod:`repro.algebra.properties` verifies them
mechanically.
"""

from repro.algebra.predicates import (
    And,
    AttributeOperand,
    IsPredicate,
    LiteralOperand,
    Not,
    Or,
    Predicate,
    ThetaPredicate,
    attr,
    lit,
)
from repro.algebra.support import is_support, selection_support, theta_support
from repro.algebra.thresholds import (
    ALWAYS,
    SN_CERTAIN,
    SN_POSITIVE,
    MembershipThreshold,
    sn_at_least,
    sn_greater,
    sp_at_least,
    sp_greater,
)
from repro.algebra.select import select
from repro.algebra.union import UnionReport, union, union_with_report
from repro.algebra.intersection import intersection, intersection_with_report
from repro.algebra.project import project
from repro.algebra.product import product
from repro.algebra.join import equijoin, join
from repro.algebra.rename import rename
from repro.algebra.properties import (
    augment_with_complement,
    complement_relation,
    verify_boundedness,
    verify_closure,
)

__all__ = [
    "Predicate",
    "IsPredicate",
    "ThetaPredicate",
    "And",
    "Or",
    "Not",
    "AttributeOperand",
    "LiteralOperand",
    "attr",
    "lit",
    "is_support",
    "theta_support",
    "selection_support",
    "MembershipThreshold",
    "SN_POSITIVE",
    "SN_CERTAIN",
    "ALWAYS",
    "sn_greater",
    "sn_at_least",
    "sp_greater",
    "sp_at_least",
    "select",
    "union",
    "union_with_report",
    "UnionReport",
    "intersection",
    "intersection_with_report",
    "project",
    "product",
    "join",
    "equijoin",
    "rename",
    "complement_relation",
    "augment_with_complement",
    "verify_closure",
    "verify_boundedness",
]
