"""Extended intersection (extension beyond the paper).

Where the extended union keeps *every* entity either source knows about,
the extended intersection keeps only entities **both** sources support
(matched keys), combining their evidence with Dempster's rule exactly as
the union does.  It answers "what do the sources agree exists?" -- the
consensus subset of the integration -- and is the natural counterpart
the paper leaves implicit (its union already performs the combination;
intersection merely restricts to the matched keys).

Like every operation, the result satisfies closure and boundedness:
unmatched tuples are absent, matched tuples have sn > 0 because both
inputs did (the same argument as for the union), and complement tuples
cannot match anything.
"""

from __future__ import annotations

from repro.exec.executors import partition_count
from repro.model.etuple import ExtendedTuple
from repro.model.relation import ExtendedRelation
from repro.errors import OperationError
from repro.algebra.union import (
    CONFLICT_POLICIES,
    UnionReport,
    _merge_pair,
    _merge_partitioned,
)


def intersection(
    left: ExtendedRelation,
    right: ExtendedRelation,
    name: str | None = None,
    on_conflict: str = "raise",
) -> ExtendedRelation:
    """``R intersect S``: Dempster-merge of the key-matched tuples only.

    A thin wrapper over the single-node plan
    :class:`repro.query.plans.IntersectPlan`; use
    :func:`intersection_with_report` directly when the conflict report
    matters.

    >>> from repro.datasets.restaurants import table_ra, table_rb
    >>> consensus = intersection(table_ra(), table_rb())
    >>> sorted(t.key()[0] for t in consensus)
    ['country', 'garden', 'mehl', 'olive', 'wok']
    """
    from repro.query.plans import IntersectPlan, LiteralPlan

    merged = IntersectPlan(
        LiteralPlan(left), LiteralPlan(right), on_conflict
    ).execute(None)
    return merged if name is None else merged.with_name(name)


def intersection_with_report(
    left: ExtendedRelation,
    right: ExtendedRelation,
    name: str | None = None,
    on_conflict: str = "raise",
) -> tuple[ExtendedRelation, UnionReport]:
    """Extended intersection plus the conflict report.

    Like the union, the matched-entity work shards into per-entity
    partition tasks under a parallel executor (see
    :func:`repro.algebra.union._merge_partitioned`); the serial result
    is reproduced exactly either way.
    """
    if on_conflict not in CONFLICT_POLICIES:
        raise OperationError(
            f"on_conflict must be one of {CONFLICT_POLICIES}, got {on_conflict!r}"
        )
    left.schema.require_union_compatible(right.schema)
    schema = left.schema.with_name(
        name if name is not None else f"{left.name}_intersect_{right.name}"
    )
    n = partition_count(len(left) + len(right))
    if n <= 1:
        return _intersection_serial(left, right, schema, on_conflict)
    return _merge_partitioned(
        left, right, schema, on_conflict, n, _intersection_serial,
        keep_unmatched=False,
    )


def _intersection_serial(
    left: ExtendedRelation,
    right: ExtendedRelation,
    schema,
    on_conflict: str,
) -> tuple[ExtendedRelation, UnionReport]:
    """The single-loop intersection core (also the per-partition body)."""
    report = UnionReport()
    merged_tuples: list[ExtendedTuple] = []
    for l_tuple in left:
        key = l_tuple.key()
        r_tuple = right.get(key)
        if r_tuple is None:
            report.left_only.append(key)
            continue
        report.matched.append(key)
        merged = _merge_pair(l_tuple, r_tuple, schema, key, report, on_conflict)
        if merged is not None:
            merged_tuples.append(merged)
    for r_tuple in right:
        if r_tuple.key() not in left:
            report.right_only.append(r_tuple.key())
    return (
        ExtendedRelation(schema, merged_tuples, on_unsupported="drop"),
        report,
    )
