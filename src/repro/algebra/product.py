"""Extended cartesian product (Section 3.4).

The product concatenates every pair of tuples from the two inputs and
combines their membership pairs with the multiplicative rule ``F_TM``
(the two tuples' memberships are independent events).  Clashing
attribute names are disambiguated with relation-name prefixes by
:meth:`RelationSchema.concat`; the product key is the union of both
keys.

Tuples whose combined membership has ``sn = 0`` cannot exist in a valid
extended relation and are not materialized -- consistent with CWA_ER and
required for the closure property.  (With CWA_ER-conformant inputs this
never triggers, since ``sn1 > 0`` and ``sn2 > 0`` imply
``sn1 * sn2 > 0``.)
"""

from __future__ import annotations

from repro.model.etuple import ExtendedTuple
from repro.model.relation import ExtendedRelation


def _rename_map(schema, other_schema) -> dict[str, str]:
    """Attribute renaming applied by ``schema.concat`` to *schema*'s side."""
    clashes = set(schema.names) & set(other_schema.names)
    return {
        name: (f"{schema.name}_{name}" if name in clashes else name)
        for name in schema.names
    }


def product(
    left: ExtendedRelation,
    right: ExtendedRelation,
    name: str | None = None,
) -> ExtendedRelation:
    """``R x S``: the extended cartesian product.

    A thin wrapper over the single-node plan
    :class:`repro.query.plans.ProductPlan`.

    >>> from repro.datasets.restaurants import table_ra, table_rm_a
    >>> pairs = product(table_ra(), table_rm_a())
    >>> len(pairs) == len(table_ra()) * len(table_rm_a())
    True
    """
    from repro.query.plans import LiteralPlan, ProductPlan

    result = ProductPlan(LiteralPlan(left), LiteralPlan(right)).execute(None)
    return result if name is None else result.with_name(name)


def product_eager(
    left: ExtendedRelation,
    right: ExtendedRelation,
    name: str | None = None,
) -> ExtendedRelation:
    """The eager product kernel plan execution maps onto."""
    schema = left.schema.concat(right.schema, name)
    left_map = _rename_map(left.schema, right.schema)
    right_map = _rename_map(right.schema, left.schema)
    combined: list[ExtendedTuple] = []
    for l_tuple in left:
        l_values = {left_map[k]: v for k, v in l_tuple.items()}
        for r_tuple in right:
            values = dict(l_values)
            for k, v in r_tuple.items():
                values[right_map[k]] = v
            membership = l_tuple.membership.combine_product(r_tuple.membership)
            if not membership.is_supported:
                continue
            combined.append(ExtendedTuple(schema, values, membership))
    return ExtendedRelation(schema, combined, on_unsupported="drop")
