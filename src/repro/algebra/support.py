"""The selection support function ``F_SS`` (Section 3.1.1).

A selection condition is an atomic predicate or a conjunction of atomic
predicates; each tuple satisfies it only to a degree, quantified as a
support pair ``(sn, sp)``:

* **is-predicate** ``A is {c1, ..., cn}``: by Dempster-Shafer theory,
  ``sn = Bel({c1..cn})`` and ``sp = Pls({c1..cn})`` of the tuple's
  evidence set for ``A``.
* **theta-predicate** ``A theta B`` for theta in {=, <, >, <=, >=}, where
  ``A`` and ``B`` are evidence sets: every pair of focal elements
  ``(a_i, b_j)`` contributes mass ``m_A(a_i) * m_B(b_j)``

  - to ``sn`` when ``a_i theta b_j`` *is TRUE*: every member of ``a_i``
    stands in relation theta to every member of ``b_j``;
  - to ``sp`` when ``a_i theta b_j`` *may be TRUE*: some member of
    ``a_i`` stands in relation theta to some member of ``b_j``.

* **compound predicate** ``S and T`` (independent atomic predicates):
  the multiplicative rule ``(sn_S * sn_T, sp_S * sp_T)``.

OMEGA focal elements in theta-predicates resolve to the concrete domain
when the evidence carries an enumerated frame; otherwise the library is
conservative -- an OMEGA operand can never make the predicate *certainly*
true (it contributes only to ``sp``), because without enumerating the
domain the universal quantification cannot be verified.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.errors import PredicateError
from repro.ds.belief import uncertainty_interval
from repro.ds.frame import is_omega
from repro.model.evidence import EvidenceSet
from repro.model.membership import SupportPair

#: The comparison operators admitted in theta-predicates.
THETA_OPERATORS: dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}

#: Operator aliases accepted on input.
THETA_ALIASES = {"==": "=", "≤": "<=", "≥": ">=", "=<": "<=", "=>": ">="}


def normalize_theta(op: str) -> str:
    """Canonicalize a theta operator symbol, validating it."""
    canonical = THETA_ALIASES.get(op, op)
    if canonical not in THETA_OPERATORS:
        raise PredicateError(
            f"unknown theta operator {op!r}; expected one of "
            f"{sorted(THETA_OPERATORS)}"
        )
    return canonical


def is_support(evidence: EvidenceSet, values: Iterable) -> SupportPair:
    """Support of ``A is {c1..cn}``: ``(Bel, Pls)`` of the value set.

    Over an enumerated frame both bounds come from one subset-mask pass
    of the compiled evidence kernel (see :mod:`repro.ds.kernel`).

    >>> from repro.model import EvidenceSet
    >>> es = EvidenceSet("[si^0.5, hu^0.25, Ω^0.25]")
    >>> is_support(es, {"si"}).as_tuple()
    (Fraction(1, 2), Fraction(3, 4))
    """
    value_set = frozenset(values)
    if not value_set:
        raise PredicateError("an is-predicate needs at least one value")
    sn, sp = uncertainty_interval(evidence.mass_function, value_set)
    return SupportPair(sn, sp)


def _resolve_element(evidence: EvidenceSet, element) -> frozenset | None:
    """Concretize a focal element; ``None`` when OMEGA cannot be resolved."""
    if not is_omega(element):
        return element
    frame = evidence.mass_function.frame
    if frame is not None:
        return frozenset(frame.values)
    return None


def _compare_elements(
    left: frozenset | None, right: frozenset | None, theta: Callable
) -> tuple[bool, bool]:
    """Classify a focal-element pair: ``(is_true, may_be_true)``.

    ``None`` stands for an unresolvable OMEGA: the universal check fails
    (conservatively) and the existential check succeeds (conservatively).
    """
    if left is None or right is None:
        return False, True
    try:
        is_true = all(theta(a, b) for a in left for b in right)
        may_be = any(theta(a, b) for a in left for b in right)
    except TypeError as exc:
        raise PredicateError(
            f"cannot compare values of focal elements "
            f"{sorted(map(repr, left))} and {sorted(map(repr, right))}: {exc}"
        ) from exc
    return is_true, may_be


def theta_support(
    left: EvidenceSet, right: EvidenceSet, op: str
) -> SupportPair:
    """Support of ``A theta B`` over two evidence sets.

    >>> from repro.model import EvidenceSet
    >>> a = EvidenceSet({frozenset({1, 4}): "3/5", frozenset({2, 6}): "2/5"})
    >>> b = EvidenceSet({frozenset({2, 4}): "4/5", frozenset({5,}): "1/5"})
    >>> theta_support(a, b, "<").as_tuple()
    (Fraction(3, 25), Fraction(1, 1))
    """
    theta = THETA_OPERATORS[normalize_theta(op)]
    sn = 0
    sp = 0
    for a_element, a_mass in left.items():
        a_concrete = _resolve_element(left, a_element)
        for b_element, b_mass in right.items():
            b_concrete = _resolve_element(right, b_element)
            weight = a_mass * b_mass
            if weight == 0:
                continue
            is_true, may_be = _compare_elements(a_concrete, b_concrete, theta)
            if is_true:
                sn = sn + weight
            if may_be:
                sp = sp + weight
    # Guard against float round-off pushing sn microscopically above sp.
    if sn > sp:
        sn = sp
    return SupportPair(sn, sp)


def selection_support(etuple, predicate) -> SupportPair:
    """``F_SS(r, P)``: the support of tuple *etuple* for predicate *P*.

    Dispatches to the predicate's own support computation; provided as a
    free function to mirror the paper's notation.
    """
    return predicate.support(etuple)
