"""Extended join (Section 3.5).

The paper defines the extended join as an extended cartesian product
followed by an extended selection::

    R join[Q, P] S  =  select[Q, P](R x S)

The join condition ``P`` references the product schema's attribute
names; when the two inputs share attribute names, those are prefixed
with the relation name (``RA_rname``), exactly as
:func:`repro.algebra.product.product` renames them.

:func:`equijoin` is a convenience wrapper building the conjunction of
``=`` theta-predicates for the given attribute pairs.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import OperationError
from repro.model.relation import ExtendedRelation
from repro.algebra.predicates import And, Predicate, ThetaPredicate
from repro.algebra.product import product, _rename_map
from repro.algebra.select import select
from repro.algebra.thresholds import SN_POSITIVE, MembershipThreshold


def join(
    left: ExtendedRelation,
    right: ExtendedRelation,
    predicate: Predicate,
    threshold: MembershipThreshold = SN_POSITIVE,
    name: str | None = None,
) -> ExtendedRelation:
    """``R join[Q, P] S``: product then selection.

    Example: joining the restaurant relation with the managed-by
    relationship on the (prefixed) restaurant-name attributes::

        linked = join(ra, rm, ThetaPredicate("RA_rname", "=", attr("RM_A_rname")))
    """
    paired = product(left, right, name)
    return select(paired, predicate, threshold, name)


def equijoin(
    left: ExtendedRelation,
    right: ExtendedRelation,
    on: Iterable[tuple[str, str]] | Iterable[str],
    threshold: MembershipThreshold = SN_POSITIVE,
    name: str | None = None,
) -> ExtendedRelation:
    """Join on equality of attribute pairs.

    *on* is either pairs ``(left_attr, right_attr)`` or bare names
    meaning the same attribute on both sides.  Names are given in the
    *input* schemas; this helper translates them to the product schema's
    (possibly prefixed) names.

    >>> from repro.datasets.restaurants import table_ra, table_rm_a
    >>> linked = equijoin(table_ra(), table_rm_a(), [("rname", "rname")])
    >>> len(linked) > 0
    True
    """
    pairs: list[tuple[str, str]] = []
    for entry in on:
        if isinstance(entry, str):
            pairs.append((entry, entry))
        else:
            l_name, r_name = entry
            pairs.append((l_name, r_name))
    if not pairs:
        raise OperationError("equijoin needs at least one attribute pair")
    left_map = _rename_map(left.schema, right.schema)
    right_map = _rename_map(right.schema, left.schema)
    predicates = [
        ThetaPredicate(left_map[l_name], "=", _attr(right_map[r_name]))
        for l_name, r_name in pairs
    ]
    predicate: Predicate = predicates[0] if len(predicates) == 1 else And(*predicates)
    return join(left, right, predicate, threshold, name)


def _attr(name: str):
    from repro.algebra.predicates import AttributeOperand

    return AttributeOperand(name)
