"""Attribute renaming.

Not one of the paper's five operations, but required plumbing for
composing them: cartesian products prefix clashing attribute names, and
query plans need to undo or customize that.  Renaming touches neither
attribute values nor memberships.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.model.relation import ExtendedRelation


def rename(
    relation: ExtendedRelation,
    mapping: Mapping[str, str],
    name: str | None = None,
) -> ExtendedRelation:
    """A copy of *relation* with attributes renamed via ``{old: new}``.

    A thin wrapper over the single-node plan
    :class:`repro.query.plans.RenamePlan`.

    >>> from repro.datasets.restaurants import table_ra
    >>> renamed = rename(table_ra(), {"rname": "restaurant"})
    >>> "restaurant" in renamed.schema
    True
    """
    from repro.query.plans import LiteralPlan, RenamePlan

    result = RenamePlan(LiteralPlan(relation), dict(mapping)).execute(None)
    return result if name is None else result.with_name(name)


def rename_eager(
    relation: ExtendedRelation,
    mapping: Mapping[str, str],
    name: str | None = None,
) -> ExtendedRelation:
    """The eager renaming kernel plan execution maps onto."""
    schema = relation.schema.rename_attributes(mapping, name)
    renamed_tuples = [etuple.renamed(schema, dict(mapping)) for etuple in relation]
    return ExtendedRelation(schema, renamed_tuples, on_unsupported="drop")
