"""The streaming integration engine: exact incremental Dempster folds.

The batch pipeline (:class:`repro.integration.pipeline.IntegrationPipeline`,
:class:`repro.integration.federation.Federation`) re-merges whole
relations.  :class:`StreamEngine` instead maintains the integrated
relation *incrementally*: Dempster's rule is associative and
commutative, so each arriving tuple folds into the entity's cached
combined state with a single pairwise combination -- O(delta) work per
event instead of O(n) -- while retractions and overwrites re-fold only
the affected entity's surviving contributions.  The result is **exact**
on the conflict-free path: whenever no total conflict arises (e.g.
every evidence set keeps some mass on OMEGA), any event interleaving
and any batching produce precisely the relation
``Federation.integrate`` would compute on the final per-source
snapshots (verified property-based by the test-suite).  When a total
conflict *does* fire a fallback policy, no fold order is canonical
(exception handling is not associative); the engine is then still
deterministic -- it always publishes the left-to-right fold of the
final snapshots in source-registration order -- but that may differ
from the federation's balanced tree fold over the same snapshots.

Micro-batching: events accumulate into the resident
:class:`~repro.stream.state.MergeState`; :meth:`StreamEngine.flush`
closes the batch, materializes the integrated relation, publishes it
into an attached :class:`~repro.storage.Database` (bumping the catalog
version, so cached session plans re-execute against fresh data and
:meth:`repro.session.Session.subscribe` hooks re-collect), and emits a
:class:`~repro.stream.changelog.BatchDelta` recording the inserted /
updated / removed / conflicted entities and the watermark -- the
sequence number up to which events are durably reflected.
"""

from __future__ import annotations

import os
import threading
import time
import weakref

from dataclasses import dataclass

from repro.ds.kernel import STATS as KERNEL_STATS
from repro.errors import StreamError, TotalConflictError
from repro.exec import cost as _exec_cost
from repro.exec.executors import get_executor, partition_count
from repro.integration.merging import MergeReport, TupleMerger
from repro.model.evidence import EvidenceSet
from repro.integration.pipeline import coerce_reliability, discount_tuple
from repro.model.etuple import ExtendedTuple
from repro.model.membership import CERTAIN
from repro.model.relation import ExtendedRelation, partition_index
from repro.obs import tracing
from repro.obs.profile import FlushProfile
from repro.obs.registry import registry as _metrics_registry
from repro.stream.changelog import BatchDelta, ChangeLog
from repro.stream.state import Contribution, MergeState


@dataclass
class StreamStats:
    """Counters a :class:`StreamEngine` accumulates.

    ``kernel_combinations`` / ``fallback_combinations`` attribute each
    evidence combination this engine performed to the compiled-kernel or
    frozenset path (see :mod:`repro.ds.kernel`); attributes over
    unenumerable domains account for the fallback share.
    """

    upserts: int = 0
    retractions: int = 0
    reliability_updates: int = 0
    flushes: int = 0
    publishes: int = 0
    empty_flush_skips: int = 0
    combinations: int = 0
    refolds: int = 0
    kernel_combinations: int = 0
    fallback_combinations: int = 0

    @property
    def events(self) -> int:
        """All accepted events."""
        return self.upserts + self.retractions + self.reliability_updates

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.events} events ({self.upserts} upserts, "
            f"{self.retractions} retractions, "
            f"{self.reliability_updates} reliability updates), "
            f"{self.flushes} flushes, {self.combinations} combinations, "
            f"{self.refolds} refolds; evidence combinations: "
            f"{self.kernel_combinations} kernel-path, "
            f"{self.fallback_combinations} fallback"
        )


@dataclass
class _SourceState:
    """One registered stream source and its current tuple snapshot."""

    name: str
    reliability: object
    tuples: dict


#: Live engines, weakly tracked so the lag/age gauges below can sum over
#: them at collection time without pinning finished engines in memory.
#: WeakSet is not thread-safe, so registration holds the lock; the gauge
#: readers copy via list() and tolerate a snapshot racing a constructor.
_ENGINES: "weakref.WeakSet[StreamEngine]" = weakref.WeakSet()
_ENGINES_LOCK = threading.Lock()


def _ingest_lag_events() -> int:
    return sum(engine.pending_events for engine in list(_ENGINES))


def _watermark_age_seconds() -> float:
    stamps = [engine._watermark_time for engine in list(_ENGINES)]
    if not stamps:
        return 0.0
    return max(0.0, time.monotonic() - min(stamps))


_metrics_registry().gauge(
    "stream.ingest_lag_events",
    help="events accepted but not yet flushed, over live engines",
    callback=_ingest_lag_events,
)
_metrics_registry().gauge(
    "stream.watermark_age_seconds",
    help="seconds since any live engine last advanced its watermark",
    callback=_watermark_age_seconds,
)


def _refold_bucket(common, bucket):
    """Re-fold one shipped partition of ``(key, parts)`` pairs.

    Module-level so the warm pool (:mod:`repro.exec.warmpool`) can
    pickle it by reference; ``common`` is the batch-constant
    ``(merger, schema, order)`` triple (``order`` rides along for
    symmetry with the in-process task, though the parts were already
    selected in order by the driver).  Mirrors
    :meth:`repro.stream.state.EntityState.refold` exactly -- same
    empty/conflict semantics, same combination count -- but operates on
    the shipped parts, so the state graph never crosses the pipe.
    """
    merger, schema, _order = common
    baseline = KERNEL_STATS.snapshot()
    combinations = 0
    states = []
    error = None
    for key, parts in bucket:
        if not parts:
            states.append((key, None, False, []))
            continue
        report = MergeReport()
        try:
            merged = merger.merge_entity(parts, schema, report)
        except TotalConflictError as exc:
            error = exc
            break
        combinations += len(parts) - 1
        states.append(
            (key, merged, merged is None, list(report.conflicts))
        )
    delta = KERNEL_STATS.since(baseline)
    return (
        states,
        combinations,
        delta.kernel_combinations,
        delta.fallback_combinations,
        error,
        os.getpid(),
    )


class StreamEngine:
    """Continuous integration of per-source events into one relation.

    Parameters
    ----------
    schema:
        The global (preprocessed) schema all sources speak; incoming
        tuples must be union-compatible with it.
    name:
        The integrated relation's name (must be an identifier when a
        *database* is attached).
    merger:
        The :class:`TupleMerger` supplying per-attribute integration
        methods and the total-conflict policy.  With ``"raise"`` (the
        default merger) a totally conflicting upsert raises and the
        event is rolled back; ``"vacuous"``/``"drop"`` record the entity
        as conflicted instead.
    database:
        Optional catalog to publish the integrated relation into on
        every flush (under *name*, replacing the prior version).
    backend:
        Optional :class:`~repro.storage.backends.StorageBackend` making
        the stream durable: every flush persists the batch through it
        before publishing.  Snapshot backends (json/sqlite) store the
        integrated relation plus the watermark; a
        :class:`~repro.storage.backends.LogBackend` keeps a true
        write-ahead log of the accepted events, from which
        :meth:`~repro.storage.backends.LogBackend.recover_stream`
        rebuilds the engine -- relation, per-source state and watermark
        -- exactly.
    batch_size:
        Auto-flush after this many events; ``None`` (default) flushes
        only on explicit :meth:`flush` calls.
    max_changelog_batches:
        Changelog retention (oldest batches trimmed first); ``None``
        keeps everything.  Default 1024 -- a long-running stream must
        not grow memory without bound.
    profile_batches:
        When true, every flush attaches a
        :class:`~repro.obs.profile.FlushProfile` timing breakdown
        (refold / materialize / publish phases) to its
        :class:`~repro.stream.changelog.BatchDelta` under
        ``delta.profile``.  Off by default: the breakdown costs a few
        clock reads per flush and is diagnostic, not semantic.

    >>> from repro.datasets.restaurants import table_ra, table_rb
    >>> engine = StreamEngine(table_ra().schema, name="R")
    >>> for etuple in table_ra():
    ...     _ = engine.upsert("daily", etuple)
    >>> for etuple in table_rb():
    ...     _ = engine.upsert("tribune", etuple)
    >>> delta = engine.flush()
    >>> len(engine.relation), len(delta.inserted)
    (6, 6)
    """

    def __init__(
        self,
        schema,
        name: str = "integrated",
        merger: TupleMerger | None = None,
        database=None,
        batch_size: int | None = None,
        max_changelog_batches: int | None = 1024,
        backend=None,
        profile_batches: bool = False,
    ):
        if database is not None and not str(name).isidentifier():
            raise StreamError(
                f"integrated relation name {name!r} is not a valid "
                f"identifier (it must be addressable in the catalog)"
            )
        if batch_size is not None and batch_size < 1:
            raise StreamError(f"batch_size must be >= 1, got {batch_size!r}")
        self._schema = schema.with_name(name)
        self._merger = merger if merger is not None else TupleMerger()
        self._db = database
        self._batch_size = batch_size
        self._state = MergeState()
        self._sources: dict[str, _SourceState] = {}
        self._source_index: dict[str, int] = {}
        self._published: dict[tuple, ExtendedTuple] = {}
        self._published_once = False
        self._touched: set[tuple] = set()
        self._seq = 0
        self._flushed_seq = 0
        self._relation: ExtendedRelation | None = None
        self._changelog = ChangeLog(max_batches=max_changelog_batches)
        self._stats = StreamStats()
        # Weakly tracked: the registry sums StreamStats fields over live
        # engines (``stream.*``) and the lag/age gauges read through the
        # engine set; per-source counters are cached to keep the per-
        # event cost at one dict lookup.
        _metrics_registry().attach("stream", self._stats)
        with _ENGINES_LOCK:
            _ENGINES.add(self)
        self._watermark_time = time.monotonic()
        self._source_counters: dict[tuple, object] = {}
        self._profile_batches = bool(profile_batches)
        self._backend = None
        self._wal: list[tuple] = []
        self._durable_once = False
        if backend is not None:
            backend.begin_stream(
                self._schema.name, self._schema, self._merger.on_conflict
            )
            self._backend = backend

    # -- accessors ----------------------------------------------------------

    @property
    def schema(self):
        """The integrated relation's schema."""
        return self._schema

    @property
    def relation(self) -> ExtendedRelation | None:
        """The integrated relation as of the last flush."""
        return self._relation

    @property
    def changelog(self) -> ChangeLog:
        """Per-batch deltas, oldest first."""
        return self._changelog

    @property
    def watermark(self) -> int:
        """Last event sequence number reflected in :attr:`relation`."""
        return self._flushed_seq

    @property
    def seq(self) -> int:
        """Sequence number of the last accepted event."""
        return self._seq

    @property
    def pending_events(self) -> int:
        """Events accepted since the last flush."""
        return self._seq - self._flushed_seq

    @property
    def backend(self):
        """The attached durability backend (None for in-memory streams)."""
        return self._backend

    def stats(self) -> StreamStats:
        """The accumulated counters (live object, not a copy)."""
        return self._stats

    def sources(self) -> tuple[str, ...]:
        """Registered source names, in registration order."""
        return tuple(self._sources)

    def reliability(self, source: str) -> object:
        """The current reliability of *source*."""
        return self._require_source(source).reliability

    def source_snapshot(self, source: str) -> ExtendedRelation:
        """The raw (undiscounted) tuples *source* currently asserts.

        On the conflict-free path, running ``Federation.integrate`` over
        all source snapshots (with the same reliabilities and merger)
        reproduces the engine's integrated relation exactly; with
        total-conflict fallbacks the engine instead matches the
        registration-order left fold of these snapshots (see the module
        docstring).
        """
        state = self._require_source(source)
        schema = self._schema.with_name(str(source))
        return ExtendedRelation(
            schema,
            [
                ExtendedTuple(schema, dict(t.items()), t.membership)
                for t in state.tuples.values()
            ],
        )

    # -- event ingestion ----------------------------------------------------

    def register_source(self, name: str, reliability: object = 1) -> None:
        """Register a source; *reliability* in [0, 1] discounts it.

        Sources are auto-registered (at full reliability) on their first
        event, so explicit registration is only needed to pre-set a
        reliability or fix the fold order up front.  Explicit
        registration is journaled (as a reliability record) when a
        durability backend is attached: the fold order it pins must
        survive recovery, even though registration alone is not an
        event.
        """
        self._register(name, reliability)
        self._journal("reliability", name, self._sources[name].reliability)

    def _register(self, name: str, reliability: object = 1) -> None:
        """Registration without journaling (auto-registration: the
        triggering event itself re-registers identically on replay)."""
        if name in self._sources:
            raise StreamError(f"duplicate source name {name!r}")
        self._source_index[name] = len(self._sources)
        self._sources[name] = _SourceState(
            name, self._coerce_reliability(reliability), {}
        )

    def upsert(self, source: str, values, membership=None) -> tuple:
        """Fold one tuple from *source* into the integrated state.

        *values* is either an :class:`ExtendedTuple` (union-compatible
        with the engine schema) or a values mapping; *membership*
        optionally overrides the ``(sn, sp)`` pair (default: the tuple's
        own, or certain for mappings).  Returns the entity key.

        A first-time arrival for an entity costs one Dempster
        combination against the cached combined state; re-asserting an
        existing (source, key) marks only that entity for re-folding.
        """
        etuple = self._coerce_tuple(values, membership)
        if not etuple.membership.is_supported:
            raise StreamError(
                f"upsert of {etuple.key()!r} carries sn = 0; CWA_ER "
                f"forbids storing unsupported tuples (retract instead)"
            )
        state = self._sources.get(source)
        auto_registered = state is None
        if auto_registered:
            self._register(source)
            state = self._sources[source]
        key = etuple.key()
        entity = self._state.entity(key)
        prior = entity.contributions.get(source)
        discounted = self._discount(etuple, state.reliability)
        contribution = Contribution(etuple, discounted, state.reliability)
        # The fast path may only *extend* the canonical fold: appending
        # is sound when this source comes after every contributor so far
        # in registration order.  Out-of-order arrivals re-fold at flush
        # instead -- the published state is thus always the registration-
        # order fold, deterministic even on the (non-associative)
        # total-conflict fallback path.
        in_order = all(
            self._source_index[name] < self._source_index[source]
            for name in entity.contributions
        )
        entity.contributions[source] = contribution
        state.tuples[key] = etuple
        if prior is None and in_order and not entity.dirty and not entity.conflicted:
            # Fast path: the cached combined state is valid and this
            # source did not contribute yet -- one pairwise combination.
            try:
                self._fold_in(entity, discounted)
            except TotalConflictError:
                # Keep the pre-event state consistent under "raise":
                # the rejected event leaves no contribution, (since
                # _fold_in only publishes its conflict records on
                # success) no phantom audit-trail entries, and -- when
                # this very event introduced the source -- no
                # registration either, so the fold order stays what the
                # accepted events alone would have produced.
                self._rollback_upsert(
                    entity, state, source, key, prior, auto_registered
                )
                self._count_source(source, "conflicts")
                raise
            if entity.conflicted:
                self._count_source(source, "conflicts")
        else:
            was_dirty = entity.dirty
            entity.dirty = True
            if self._merger.on_conflict == "raise":
                # Deferring this re-fold to flush() would accept an
                # irreconcilable event and then fail *every* flush,
                # wedging the watermark: under "raise" the conflict must
                # surface here, with the event fully rolled back.
                try:
                    self._refold(entity, tuple(self._sources))
                except TotalConflictError:
                    self._rollback_upsert(
                        entity, state, source, key, prior, auto_registered
                    )
                    entity.dirty = was_dirty
                    self._count_source(source, "conflicts")
                    raise
        self._journal("upsert", source, etuple)
        self._seq += 1
        self._touched.add(key)
        self._stats.upserts += 1
        self._count_source(source, "events")
        self._maybe_autoflush()
        return key

    def retract(self, source: str, key) -> None:
        """Withdraw *source*'s assertion about the entity *key*.

        Exact: the entity is re-folded from the surviving sources'
        contributions at the next flush.  When no source supports the
        entity any more it leaves the integrated relation entirely.
        """
        state = self._require_source(source)
        key = self._coerce_key(key)
        if key not in state.tuples:
            raise StreamError(
                f"source {source!r} asserts no tuple {key!r} to retract"
            )
        del state.tuples[key]
        entity = self._state.get(key)
        del entity.contributions[source]
        if entity.contributions:
            entity.dirty = True
        else:
            self._state.discard_if_empty(key)
        self._journal("retract", source, key)
        self._seq += 1
        self._touched.add(key)
        self._stats.retractions += 1
        self._count_source(source, "events")
        self._maybe_autoflush()

    def set_reliability(self, source: str, reliability: object) -> None:
        """Change *source*'s reliability; its entities re-fold lazily.

        Under the merger's ``raise`` policy the re-folds run eagerly
        instead: raising the reliability can strip away the discount
        ignorance that masked a total conflict, and that must surface
        here -- fully reverted -- rather than wedge every later flush.

        An unknown *source* is auto-registered at this reliability
        (mirroring :meth:`upsert`), so a stream can pre-set a source's
        trust before its first tuple arrives.  Setting the current
        value again is a no-op.
        """
        state = self._sources.get(source)
        if state is None:
            self._register(source, reliability)
            self._journal(
                "reliability", source, self._sources[source].reliability
            )
            self._seq += 1
            self._stats.reliability_updates += 1
            self._count_source(source, "events")
            self._maybe_autoflush()
            return
        old = state.reliability
        new = self._coerce_reliability(reliability)
        if new == old:
            return
        state.reliability = new

        def rediscount(factor) -> None:
            for key, raw in state.tuples.items():
                contribution = self._state.get(key).contributions[source]
                contribution.discounted = self._discount(raw, factor)
                contribution.reliability = factor

        rediscount(new)
        for key in state.tuples:
            self._state.get(key).dirty = True
            self._touched.add(key)
        if self._merger.on_conflict == "raise":
            order = tuple(self._sources)
            refolded = []
            try:
                for key in state.tuples:
                    entity = self._state.get(key)
                    self._refold(entity, order)
                    refolded.append(key)
            except TotalConflictError:
                # Revert entirely: reliability, discounts, and the
                # entities already re-folded at the new factor (the rest
                # stay dirty and re-fold to the reverted state at flush).
                state.reliability = old
                rediscount(old)
                for key in refolded:
                    self._refold(
                        self._state.get(key), order, count_refold=False
                    )
                raise
        self._journal("reliability", source, new)
        self._seq += 1
        self._stats.reliability_updates += 1
        self._count_source(source, "events")
        self._maybe_autoflush()

    # -- flushing -----------------------------------------------------------

    def flush(self) -> BatchDelta:
        """Close the micro-batch and publish the integrated relation.

        Re-folds only the entities the batch touched, materializes the
        relation, publishes it into the attached database (if any),
        appends a :class:`BatchDelta` to the changelog and returns it.
        With ``profile_batches=True`` the delta carries a
        :class:`~repro.obs.profile.FlushProfile` phase breakdown.

        Under a parallel executor (:mod:`repro.exec`) the pending
        re-folds drain as per-partition merge batches: dirty entities
        group by their key's hash partition and each group re-folds in
        one task.  Entities are disjoint and the published relation is
        materialized from the engine's entity map (whose order never
        depends on fold timing), so the flushed relation, the delta and
        the conflict records are identical to the serial flush.
        """
        if not tracing.enabled():
            return self._flush()
        with tracing.span("stream.flush", stream=self._schema.name) as current:
            delta = self._flush()
            current.note(events=delta.events, changed=len(delta.changed))
            return delta

    def _flush(self) -> BatchDelta:
        profiling = self._profile_batches
        started = time.perf_counter() if profiling else 0.0
        combinations_before = self._stats.combinations if profiling else 0
        order = tuple(self._sources)
        conflicts: list = []
        # Sorted key order everywhere self._touched (a set) drives work
        # or output: refold order fixes which entity's raise-policy
        # conflict surfaces first, and the conflict records' order flows
        # into the published BatchDelta -- neither may depend on set
        # iteration order (hash-seed dependent).
        touched = sorted(self._touched, key=repr)
        dirty = [
            entity
            for key in touched
            if (entity := self._state.get(key)) is not None and entity.dirty
        ]
        # Describe the batch to the cost model (entity/source/focal shape
        # sampled from the dirty set) so ``auto`` mode prices the actual
        # refold workload rather than the defaults.
        with _exec_cost.workload(**self._workload_hint(dirty)):
            n = partition_count(len(dirty))
            if n > 1:
                self._refold_partitioned(dirty, order, n)
            else:
                for entity in dirty:
                    self._refold(entity, order)
        refold_done = time.perf_counter() if profiling else 0.0
        for key in touched:
            entity = self._state.get(key)
            if entity is not None:
                conflicts.extend(entity.fold_conflicts)
        tuples = [
            entity.combined
            for entity in self._state
            if entity.combined is not None
        ]
        relation = ExtendedRelation(self._schema, tuples, on_unsupported="drop")
        current = {etuple.key(): etuple for etuple in relation}

        inserted, updated, removed, conflicted = [], [], [], []
        for key in touched:
            before = self._published.get(key)
            after = current.get(key)
            if before is None and after is not None:
                inserted.append(key)
            elif before is not None and after is None:
                removed.append(key)
            elif before is not None and after is not None and before != after:
                updated.append(key)
            entity = self._state.get(key)
            if entity is not None and entity.conflicted:
                conflicted.append(key)

        delta = BatchDelta(
            batch=self._changelog.total_batches + 1,
            watermark=self._seq,
            events=self._seq - self._flushed_seq,
            inserted=tuple(inserted),
            updated=tuple(updated),
            removed=tuple(removed),
            conflicted=tuple(conflicted),
            conflicts=tuple(conflicts),
        )
        materialize_done = time.perf_counter() if profiling else 0.0
        # Commit the engine's own bookkeeping (changelog, watermark,
        # published snapshot) *before* notifying the outside world:
        # Database.add runs catalog listeners, and an exception escaping
        # one of them must not lose the batch from the audit trail.
        self._relation = relation
        self._published = current
        self._changelog.append(delta)
        self._touched = set()
        if self._flushed_seq != self._seq:
            self._watermark_time = time.monotonic()
        self._flushed_seq = self._seq
        self._stats.flushes += 1
        if self._backend is not None:
            # Durability first (write-ahead): the batch must be on disk
            # before the catalog -- and its listeners -- see it.  A
            # failed write puts the events back: they stay part of the
            # next batch attempt instead of silently vanishing from the
            # journal while the watermark advances past them.
            events, self._wal = self._wal, []
            if events or not delta.is_empty() or not self._durable_once:
                try:
                    self._backend.write_batch(
                        self._schema.name, delta, events, relation
                    )
                except BaseException:
                    self._wal = events + self._wal
                    raise
                self._durable_once = True
            else:
                # No events journaled and no visible change: the store
                # already holds exactly this relation and watermark, so
                # skip the backend round trip entirely.
                self._stats.empty_flush_skips += 1
        if self._db is not None and (
            not self._published_once or not delta.is_empty()
        ):
            self._published_once = True
            self._stats.publishes += 1
            self._db.add(relation, replace=True)
        # Feed the executor's shard-locality ledger (if the executor has
        # one) with this flush's precise dirty keys, so shard-resident
        # remote workers receive an O(delta) sync instead of a snapshot
        # before the next key-only scatter.  Quiet flushes no-op inside
        # the manager.
        publish = getattr(get_executor(), "publish_relation", None)
        if publish is not None:
            publish(
                relation,
                changed=tuple(delta.inserted) + tuple(delta.updated),
                removed=delta.removed,
            )
        if profiling:
            done = time.perf_counter()
            profile = FlushProfile(
                events=delta.events,
                entities_refolded=len(dirty),
                combinations=self._stats.combinations - combinations_before,
                partitions=n,
                refold_seconds=refold_done - started,
                materialize_seconds=materialize_done - refold_done,
                publish_seconds=done - materialize_done,
                total_seconds=done - started,
                sources=order,
            )
            # BatchDelta is frozen for consumers; the engine finishes
            # constructing it here, once the publish phase has a time.
            object.__setattr__(delta, "profile", profile)
        return delta

    def snapshot_events(self) -> list[tuple]:
        """The minimal event sequence rebuilding this engine's state.

        Replaying the returned ``(kind, source, payload)`` triples
        through a fresh engine reproduces the current sources (order and
        reliability), every per-source contribution, the entity order of
        the integrated relation and hence -- folds being deterministic
        -- the relation itself.  This is what
        :meth:`~repro.storage.backends.LogBackend.compact` folds a
        stream's event history down to: reliability records first (they
        pin source-registration order), then each entity's surviving
        raw tuples in first-arrival entity order, each entity's sources
        in registration order.
        """
        events: list[tuple] = [
            ("reliability", name, state.reliability)
            for name, state in self._sources.items()
        ]
        for entity in self._state:
            for source in sorted(
                entity.contributions, key=self._source_index.__getitem__
            ):
                events.append(
                    ("upsert", source, entity.contributions[source].raw)
                )
        return events

    # -- internals ----------------------------------------------------------

    def _journal(self, kind: str, source: str, payload) -> None:
        """Buffer one accepted event for the backend's write-ahead log.

        Called only after the event fully succeeded (rolled-back
        ``raise``-policy conflicts never reach the journal), so replay
        sees exactly the accepted event sequence.
        """
        if self._backend is not None:
            self._wal.append((kind, source, payload))

    def _count_source(self, source: str, kind: str) -> None:
        """Bump the ``stream.source.<name>.<kind>`` registry counter."""
        key = (source, kind)
        counter = self._source_counters.get(key)
        if counter is None:
            counter = _metrics_registry().counter(
                f"stream.source.{source}.{kind}"
            )
            self._source_counters[key] = counter
        counter.inc()

    def _refold(self, entity, order, count_refold: bool = True) -> None:
        """Refold one entity, attributing evidence-combination counts.

        The kernel-vs-fallback split comes from diffing the process-wide
        :data:`repro.ds.kernel.STATS` counters around the refold, which
        attributes exactly this engine's combinations as long as the
        engine is driven from one thread (the engine's general
        constraint).  Mirrors the prior accounting on the error path: a
        propagating :class:`TotalConflictError` leaves the tuple-level
        counters untouched.
        """
        baseline = KERNEL_STATS.snapshot()
        combinations = entity.refold(self._merger, self._schema, order)
        self._stats.combinations += combinations
        self._attribute_kernel_usage(baseline)
        if count_refold:
            self._stats.refolds += 1

    def _attribute_kernel_usage(self, baseline) -> None:
        """Add the kernel/fallback counter deltas since *baseline*."""
        delta = KERNEL_STATS.since(baseline)
        self._stats.kernel_combinations += delta.kernel_combinations
        self._stats.fallback_combinations += delta.fallback_combinations

    def _workload_hint(self, dirty) -> dict:
        """Sample the dirty set into :func:`repro.exec.cost.workload` kwargs.

        A small prefix sample (the dirty list is already in stable
        sorted-key order) estimates the average source count and the
        largest focal-set size per entity -- the two inputs the cost
        model cannot observe from global counters.  Sampling keeps the
        hint O(1) per flush regardless of batch size.
        """
        if not dirty:
            return {}
        sample = dirty[:8]
        sources = sum(
            len(entity.contributions) for entity in sample
        ) / len(sample)
        focal_sizes = []
        for entity in sample:
            largest = 0
            for contribution in entity.contributions.values():
                for _name, value in contribution.discounted.items():
                    if isinstance(value, EvidenceSet):
                        largest = max(largest, len(value.mass_function))
            if largest:
                focal_sizes.append(largest)
        hint = {"entities": len(dirty), "sources": sources}
        if focal_sizes:
            hint["focal"] = sum(focal_sizes) / len(focal_sizes)
        return hint

    def _refold_partitioned(self, dirty, order, n: int) -> None:
        """Drain the pending re-folds as per-partition merge batches.

        Thread tasks re-fold the (disjoint) entities in place; process
        tasks re-fold forked copies and ship the resulting state back,
        which the parent commits.  Either way each entity's fold is the
        identical ``merge_entity`` computation the serial path runs, so
        the committed states are exact.  Kernel-vs-fallback attribution:
        in-process executors are measured around the whole batch (the
        engine is single-driver, so the process-wide delta is exactly
        this batch); process pools measure inside each child and the
        deltas are summed.

        A ``raise``-policy :class:`TotalConflictError` is re-raised
        after the successfully re-folded entities' state and counters
        are committed; entities whose fresh state was not committed
        simply stay dirty and re-fold at the next flush, exactly as the
        serial path leaves later entities unfolded after a mid-loop
        raise.  (Counter increments performed by concurrent worker
        threads inside the evidence kernel may undercount slightly --
        the counters are observability-only.)
        """
        executor = get_executor()
        buckets: list[list] = [[] for _ in range(n)]
        for entity in dirty:
            buckets[partition_index(entity.key, n)].append(entity)
        buckets = [bucket for bucket in buckets if bucket]
        merger, schema = self._merger, self._schema

        batch_baseline = KERNEL_STATS.snapshot()
        if executor.kind in ("process", "auto", "remote"):
            # Compact task encoding for the warm pool: ship each
            # entity's surviving parts rather than the EntityState
            # graph, with the merger/schema/order pickled once for the
            # whole batch.  Each outcome tags the worker pid so kernel
            # attribution below can tell child work from inline work.
            payloads = [
                [(entity.key, entity.parts(order)) for entity in bucket]
                for bucket in buckets
            ]
            outcomes = executor.map_encoded(
                _refold_bucket, (merger, schema, order), payloads
            )
        else:

            def task(bucket):
                baseline = KERNEL_STATS.snapshot()
                combinations = 0
                states = []
                error = None
                for entity in bucket:
                    try:
                        combinations += entity.refold(merger, schema, order)
                    except TotalConflictError as exc:
                        error = exc
                        break
                    states.append(
                        (
                            entity.key,
                            entity.combined,
                            entity.conflicted,
                            list(entity.fold_conflicts),
                        )
                    )
                delta = KERNEL_STATS.since(baseline)
                return (
                    states,
                    combinations,
                    delta.kernel_combinations,
                    delta.fallback_combinations,
                    error,
                    os.getpid(),
                )

            outcomes = executor.map(task, buckets)
        errors = []
        own_pid = os.getpid()
        from_children = False
        for states, combinations, kernel_delta, fallback_delta, error, pid in (
            outcomes
        ):
            self._stats.combinations += combinations
            self._stats.refolds += len(states)
            if pid != own_pid:
                # Child processes measured their own kernel usage; the
                # parent's process-wide counters never saw that work.
                from_children = True
                self._stats.kernel_combinations += kernel_delta
                self._stats.fallback_combinations += fallback_delta
            for key, combined, conflicted, fold_conflicts in states:
                entity = self._state.get(key)
                entity.combined = combined
                entity.conflicted = conflicted
                entity.fold_conflicts = fold_conflicts
                entity.dirty = False
            if error is not None:
                errors.append(error)
        if not from_children:
            self._attribute_kernel_usage(batch_baseline)
        if errors:
            raise errors[0]

    def _rollback_upsert(
        self, entity, state, source, key, prior, auto_registered
    ) -> None:
        """Undo a rejected upsert: contribution, snapshot, registration."""
        if prior is None:
            del entity.contributions[source]
            del state.tuples[key]
            self._state.discard_if_empty(key)
        else:
            entity.contributions[source] = prior
            state.tuples[key] = prior.raw
        if auto_registered and not state.tuples:
            del self._sources[source]
            del self._source_index[source]

    def _fold_in(self, entity, discounted: ExtendedTuple) -> None:
        """Combine one discounted arrival into the cached entity state.

        Conflict records reach the entity's pending list only when the
        combination returns -- a ``raise``-policy conflict propagates
        without leaving audit-trail entries for the rolled-back event.
        """
        if not discounted.membership.is_supported:
            return  # fully discounted away: the identity contribution
        if entity.combined is None:
            entity.combined = discounted
            return
        report = MergeReport()
        baseline = KERNEL_STATS.snapshot()
        merged = self._merger.merge_pair(
            entity.combined, discounted, self._schema, report
        )
        self._stats.combinations += 1
        self._attribute_kernel_usage(baseline)
        entity.fold_conflicts.extend(report.conflicts)
        if merged is None:
            entity.combined = None
            entity.conflicted = True
        else:
            entity.combined = merged

    def _coerce_tuple(self, values, membership) -> ExtendedTuple:
        if isinstance(values, ExtendedTuple):
            self._schema.require_union_compatible(values.schema)
            return ExtendedTuple(
                self._schema,
                dict(values.items()),
                membership if membership is not None else values.membership,
            )
        return ExtendedTuple(
            self._schema,
            values,
            membership if membership is not None else CERTAIN,
        )

    def _coerce_key(self, key) -> tuple:
        return key if isinstance(key, tuple) else (key,)

    def _coerce_reliability(self, reliability):
        return coerce_reliability(reliability, StreamError)

    def _discount(self, etuple: ExtendedTuple, reliability) -> ExtendedTuple:
        if reliability == 1:
            return etuple
        return discount_tuple(etuple, self._schema, reliability)

    def _require_source(self, source: str) -> _SourceState:
        state = self._sources.get(source)
        if state is None:
            known = ", ".join(self._sources) or "(none)"
            raise StreamError(
                f"unknown source {source!r} (registered: {known})"
            )
        return state

    def _maybe_autoflush(self) -> None:
        if (
            self._batch_size is not None
            and self._seq - self._flushed_seq >= self._batch_size
        ):
            self.flush()

    def __len__(self) -> int:
        return len(self._state)

    def __repr__(self) -> str:
        return (
            f"StreamEngine({self._schema.name!r}, "
            f"{len(self._sources)} sources, {len(self._state)} entities, "
            f"watermark {self._flushed_seq}/{self._seq})"
        )
