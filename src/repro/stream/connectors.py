"""Event connectors: JSONL encoding and replay of source streams.

One event per line, self-describing via ``op``:

.. code-block:: json

    {"op": "upsert", "source": "daily",
     "values": {"rname": "wok", "rating": "[gd^1/4, avg^3/4]"},
     "membership": ["1", "1"]}
    {"op": "retract", "source": "daily", "key": ["wok"]}
    {"op": "reliability", "source": "daily", "value": "4/5"}
    {"op": "flush"}

Evidence values use the paper's bracket notation (parsed by
:class:`repro.model.evidence.EvidenceSet`), numbers serialize exactly
(fractions as ``"1/3"`` strings), and memberships are ``[sn, sp]``
pairs -- the same conventions as :mod:`repro.storage.serialization`, so
event files are human-readable and round-trip losslessly.
"""

from __future__ import annotations

import json

from dataclasses import dataclass
from fractions import Fraction
from pathlib import Path

from repro.errors import StreamError
from repro.model.evidence import EvidenceSet
from repro.model.relation import ExtendedRelation
from repro.storage.serialization import _number_from_json, _number_to_json


def _atom_to_json(value) -> object:
    """Encode a key part or attribute scalar.

    Unlike memberships/reliabilities (always numeric, serialized as
    ``"n/d"`` strings), keys and values may be genuine text -- so exact
    fractions are tagged rather than stringified, keeping ``"1/2"`` the
    text distinguishable from the number one half.
    """
    if isinstance(value, Fraction):
        return {"fraction": f"{value.numerator}/{value.denominator}"}
    return value


def _atom_from_json(value) -> object:
    if isinstance(value, dict) and set(value) == {"fraction"}:
        return Fraction(value["fraction"])
    return value


@dataclass(frozen=True)
class UpsertEvent:
    """Assert (or re-assert) one tuple of a source."""

    source: str
    values: dict
    membership: tuple | None = None


@dataclass(frozen=True)
class RetractEvent:
    """Withdraw a source's assertion about one entity."""

    source: str
    key: tuple


@dataclass(frozen=True)
class ReliabilityEvent:
    """Change a source's reliability."""

    source: str
    reliability: object


@dataclass(frozen=True)
class FlushEvent:
    """Close the current micro-batch."""


Event = UpsertEvent | RetractEvent | ReliabilityEvent | FlushEvent


def event_to_json(event: Event) -> dict:
    """Serialize one event to a JSON-compatible document."""
    if isinstance(event, UpsertEvent):
        document: dict = {
            "op": "upsert",
            "source": event.source,
            "values": {
                name: _atom_to_json(value)
                for name, value in event.values.items()
            },
        }
        if event.membership is not None:
            sn, sp = event.membership
            document["membership"] = [_number_to_json(sn), _number_to_json(sp)]
        return document
    if isinstance(event, RetractEvent):
        return {
            "op": "retract",
            "source": event.source,
            "key": [_atom_to_json(part) for part in event.key],
        }
    if isinstance(event, ReliabilityEvent):
        return {
            "op": "reliability",
            "source": event.source,
            "value": _number_to_json(event.reliability),
        }
    if isinstance(event, FlushEvent):
        return {"op": "flush"}
    raise StreamError(f"cannot serialize event {event!r}")


def event_from_json(document: dict) -> Event:
    """Deserialize one event document."""
    if not isinstance(document, dict):
        raise StreamError(f"event must be a JSON object, got {document!r}")
    op = document.get("op")
    try:
        if op == "upsert":
            membership = document.get("membership")
            if membership is not None:
                sn, sp = membership
                membership = (_number_from_json(sn), _number_from_json(sp))
            return UpsertEvent(
                source=document["source"],
                values={
                    name: _atom_from_json(value)
                    for name, value in document["values"].items()
                },
                membership=membership,
            )
        if op == "retract":
            return RetractEvent(
                source=document["source"],
                key=tuple(
                    _atom_from_json(part) for part in document["key"]
                ),
            )
        if op == "reliability":
            return ReliabilityEvent(
                source=document["source"],
                reliability=_number_from_json(document["value"]),
            )
        if op == "flush":
            return FlushEvent()
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise StreamError(f"malformed {op!r} event: {exc}") from exc
    raise StreamError(f"unknown event op {op!r}")


def write_events(events, path) -> int:
    """Write events as JSONL; returns the number of lines written."""
    lines = [json.dumps(event_to_json(event)) for event in events]
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def read_events(path):
    """Iterate the events of a JSONL file (blank lines skipped)."""
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            text = line.strip()
            if not text:
                continue
            try:
                document = json.loads(text)
            except json.JSONDecodeError as exc:
                raise StreamError(
                    f"{path}:{line_number}: not valid JSON: {exc}"
                ) from exc
            try:
                yield event_from_json(document)
            except StreamError as exc:
                raise StreamError(f"{path}:{line_number}: {exc}") from exc


def relation_to_events(relation: ExtendedRelation, source: str):
    """The upsert events that would rebuild *relation* from *source*.

    Handy for turning an existing table into a replayable stream:
    evidence sets render in bracket notation, keys as scalars.
    """
    events = []
    for etuple in relation:
        values = {}
        for name, value in etuple.items():
            if isinstance(value, EvidenceSet):
                values[name] = (
                    value.definite_value()
                    if not relation.schema.attribute(name).uncertain
                    else value.format()
                )
            else:
                values[name] = value
        membership = (etuple.membership.sn, etuple.membership.sp)
        events.append(UpsertEvent(source, values, membership))
    return events


@dataclass
class ReplayReport:
    """What one :func:`replay` run applied (a StreamStats delta)."""

    upserts: int = 0
    retractions: int = 0
    reliability_updates: int = 0
    flushes: int = 0

    @property
    def events(self) -> int:
        """State-changing events applied (flushes counted separately)."""
        return self.upserts + self.retractions + self.reliability_updates

    def summary(self) -> str:
        """One-line digest."""
        return (
            f"{self.events} events ({self.upserts} upserts, "
            f"{self.retractions} retractions, "
            f"{self.reliability_updates} reliability updates), "
            f"{self.flushes} flushes"
        )


def apply_event(engine, event: Event) -> None:
    """Apply one decoded event to a :class:`StreamEngine`."""
    if isinstance(event, UpsertEvent):
        engine.upsert(event.source, event.values, event.membership)
    elif isinstance(event, RetractEvent):
        engine.retract(event.source, event.key)
    elif isinstance(event, ReliabilityEvent):
        engine.set_reliability(event.source, event.reliability)
    elif isinstance(event, FlushEvent):
        engine.flush()
    else:
        raise StreamError(f"cannot apply event {event!r}")


def replay(engine, events, flush_remainder: bool = True) -> ReplayReport:
    """Drive *events* through *engine*; flushes any tail by default.

    The report is the delta of the engine's own counters across the
    run -- one counting implementation, and auto-flushes (``batch_size``)
    are included in ``flushes``.
    """
    stats = engine.stats()
    before = (
        stats.upserts,
        stats.retractions,
        stats.reliability_updates,
        stats.flushes,
    )
    for event in events:
        apply_event(engine, event)
    if flush_remainder and (engine.pending_events or not len(engine.changelog)):
        engine.flush()
    return ReplayReport(
        upserts=stats.upserts - before[0],
        retractions=stats.retractions - before[1],
        reliability_updates=stats.reliability_updates - before[2],
        flushes=stats.flushes - before[3],
    )
