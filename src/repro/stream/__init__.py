"""Streaming integration: incremental evidence ingestion.

The paper's central operator -- Dempster's rule -- is associative and
commutative, so an integrated relation never needs recomputing from
scratch when new evidence arrives.  This package turns the batch
Figure-1 pipeline into a continuous one:

``repro.stream.engine``
    :class:`StreamEngine` -- per-source ``upsert``/``retract``/
    reliability events folded exactly into per-entity merge state;
    micro-batched ``flush()`` with watermark semantics, publishing into
    a :class:`repro.storage.Database`.
``repro.stream.state``
    The resident :class:`MergeState` (per-entity, per-source cached
    contributions + the combined fold).
``repro.stream.changelog``
    :class:`BatchDelta`/:class:`ChangeLog` -- the per-batch record of
    inserted / updated / removed / conflicted entities.
``repro.stream.connectors``
    JSONL event encoding and :func:`replay` (the substrate of the
    ``repro stream`` CLI subcommand).
"""

from repro.stream.changelog import BatchDelta, ChangeLog
from repro.stream.connectors import (
    Event,
    FlushEvent,
    ReliabilityEvent,
    ReplayReport,
    RetractEvent,
    UpsertEvent,
    apply_event,
    event_from_json,
    event_to_json,
    read_events,
    relation_to_events,
    replay,
    write_events,
)
from repro.stream.engine import StreamEngine, StreamStats
from repro.stream.state import Contribution, EntityState, MergeState

__all__ = [
    "BatchDelta",
    "ChangeLog",
    "Contribution",
    "EntityState",
    "Event",
    "FlushEvent",
    "MergeState",
    "ReliabilityEvent",
    "ReplayReport",
    "RetractEvent",
    "StreamEngine",
    "StreamStats",
    "UpsertEvent",
    "apply_event",
    "event_from_json",
    "event_to_json",
    "read_events",
    "relation_to_events",
    "replay",
    "write_events",
]
