"""Resident merge state for incremental integration.

The streaming engine exploits the associativity/commutativity of
Dempster's rule: the integrated value of an entity is the fold of the
(discounted) evidence its sources currently supply, so

* a **new** source arrival for an entity costs exactly one
  :meth:`~repro.integration.merging.TupleMerger.merge_pair` call against
  the cached combined tuple -- no relation-level re-merge;
* an **overwrite** or **retraction** invalidates only that one entity,
  which is re-folded from its surviving per-source contributions at the
  next flush (Dempster's rule has no general inverse, so exact
  retraction means re-folding the survivors -- still O(sources-of-one-
  entity), never O(relation)).

:class:`MergeState` is the container (one :class:`EntityState` per
entity key); :class:`Contribution` caches each source's tuple both raw
and discounted at the reliability it was discounted with, so reliability
updates can re-discount lazily.

The cached tuples hold their evidence in compiled kernel form
(:mod:`repro.ds.kernel`) for enumerated domains: `combined` is the
output of kernel combinations (still compiled), and discounting
preserves compilation, so the per-arrival fast path runs entirely on
bitmask evidence without re-interning anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.integration.merging import MergeReport, TupleMerger
from repro.model.etuple import ExtendedTuple


@dataclass
class Contribution:
    """One source's current evidence about one entity."""

    raw: ExtendedTuple
    discounted: ExtendedTuple
    reliability: object


class EntityState:
    """The merge state of a single real-world entity.

    ``combined`` caches the fold of all contributions; ``dirty`` marks
    it stale (overwrite, retraction or reliability change), and
    ``conflicted`` records that the last fold hit a total conflict whose
    policy dropped the entity from the integrated relation.
    ``fold_conflicts`` holds the :class:`ConflictRecord`\\ s observed by
    the entity's *current* fold: a fast-path combination appends, a
    refold replaces the whole list.  A batch delta reports them for
    every entity the batch touched, so a still-conflicting entity
    re-reports identically whether the batch extended its fold or
    re-folded it -- the changelog does not depend on arrival order.
    """

    __slots__ = (
        "key",
        "contributions",
        "combined",
        "dirty",
        "conflicted",
        "fold_conflicts",
    )

    def __init__(self, key: tuple):
        self.key = key
        self.contributions: dict[str, Contribution] = {}
        self.combined: ExtendedTuple | None = None
        self.dirty = False
        self.conflicted = False
        self.fold_conflicts: list = []

    def parts(self, order) -> list[ExtendedTuple]:
        """The discounted contributions in source-registration *order*.

        Contributions discounted to ``sn = 0`` are skipped: a fully
        discounted source supplies no support, exactly as the batch
        pipeline drops such tuples before matching (CWA_ER).
        """
        selected = []
        for source in order:
            contribution = self.contributions.get(source)
            if contribution is None:
                continue
            if not contribution.discounted.membership.is_supported:
                continue
            selected.append(contribution.discounted)
        return selected

    def refold(self, merger: TupleMerger, schema, order) -> int:
        """Recombine this entity from scratch; returns combinations used.

        State flags are only updated after the merge *returns*: when the
        merger's ``raise`` policy propagates a
        :class:`~repro.errors.TotalConflictError` mid-fold, the entity
        stays ``dirty`` (so a later flush retries instead of silently
        publishing the stale cached fold) and its conflict records are
        untouched.
        """
        parts = self.parts(order)
        if not parts:
            self.combined = None
            self.conflicted = False
            self.dirty = False
            self.fold_conflicts = []
            return 0
        report = MergeReport()
        merged = merger.merge_entity(parts, schema, report)
        self.dirty = False
        self.fold_conflicts = list(report.conflicts)
        if merged is None:
            self.combined = None
            self.conflicted = True
        else:
            self.combined = merged
            self.conflicted = False
        return len(parts) - 1

    def __repr__(self) -> str:
        state = "conflicted" if self.conflicted else (
            "dirty" if self.dirty else "clean"
        )
        return (
            f"EntityState({self.key!r}, {len(self.contributions)} "
            f"contribution(s), {state})"
        )


class MergeState:
    """All entity states, indexed by entity key."""

    def __init__(self):
        self.entities: dict[tuple, EntityState] = {}

    def entity(self, key: tuple) -> EntityState:
        """The state for *key*, created on first use."""
        state = self.entities.get(key)
        if state is None:
            state = EntityState(key)
            self.entities[key] = state
        return state

    def get(self, key: tuple) -> EntityState | None:
        """The state for *key*, or ``None``."""
        return self.entities.get(key)

    def discard_if_empty(self, key: tuple) -> None:
        """Drop the entity once no source supports it any more."""
        state = self.entities.get(key)
        if state is not None and not state.contributions:
            del self.entities[key]

    def __len__(self) -> int:
        return len(self.entities)

    def __iter__(self):
        return iter(self.entities.values())

    def __repr__(self) -> str:
        dirty = sum(1 for entity in self if entity.dirty)
        return f"MergeState({len(self)} entities, {dirty} dirty)"
