"""Per-batch deltas of the streaming integration engine.

Every :meth:`~repro.stream.engine.StreamEngine.flush` closes one
micro-batch and emits a :class:`BatchDelta`: which entities the batch
inserted into, updated in, or removed from the integrated relation,
which hit a total conflict, and the
:class:`~repro.algebra.union.ConflictRecord`\\ s of the *current* folds
of every entity the batch touched (so a still-conflicting entity
re-reports on each touch, independent of arrival order).
The :class:`ChangeLog` accumulates them -- the administrator-facing
audit trail the paper asks for ("some actions may be necessary to
inform the data administrators ... about the conflict"), extended to
the continuous-ingestion regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BatchDelta:
    """The effect of one flushed micro-batch on the integrated relation.

    ``watermark`` is the sequence number of the last event folded into
    the published relation; everything at or below it is durable in the
    integrated view.
    """

    batch: int
    watermark: int
    events: int
    inserted: tuple
    updated: tuple
    removed: tuple
    conflicted: tuple
    conflicts: tuple = ()
    #: Optional :class:`repro.obs.profile.FlushProfile` timing breakdown,
    #: populated when the engine was built with ``profile_batches=True``.
    profile: object | None = None

    @property
    def changed(self) -> tuple:
        """Every key this batch touched in the published relation."""
        return self.inserted + self.updated + self.removed

    def is_empty(self) -> bool:
        """True when the batch changed nothing visible."""
        return not (self.inserted or self.updated or self.removed)

    def summary(self) -> str:
        """One-line digest for logs."""
        return (
            f"batch {self.batch} (watermark {self.watermark}): "
            f"{self.events} event(s), {len(self.inserted)} inserted, "
            f"{len(self.updated)} updated, {len(self.removed)} removed, "
            f"{len(self.conflicted)} conflicted"
        )


@dataclass
class ChangeLog:
    """The ordered record of flushed batches.

    ``max_batches`` bounds retention (oldest dropped first) so a
    long-running engine does not grow memory without limit; ``None``
    keeps everything.  :attr:`total_batches` and the watermark keep
    counting across trimmed history.
    """

    batches: list[BatchDelta] = field(default_factory=list)
    max_batches: int | None = None
    total_batches: int = 0

    def append(self, delta: BatchDelta) -> None:
        """Record one flushed batch, trimming past the retention cap."""
        self.batches.append(delta)
        self.total_batches += 1
        if self.max_batches is not None and len(self.batches) > self.max_batches:
            del self.batches[: len(self.batches) - self.max_batches]

    @property
    def last(self) -> BatchDelta | None:
        """The most recent batch, or ``None`` before the first flush."""
        return self.batches[-1] if self.batches else None

    @property
    def watermark(self) -> int:
        """Sequence number durably reflected in the published relation."""
        return self.batches[-1].watermark if self.batches else 0

    def tail(self, n: int) -> tuple:
        """The last *n* batches, oldest first."""
        return tuple(self.batches[-n:])

    def total_events(self) -> int:
        """Events across the retained batches."""
        return sum(delta.events for delta in self.batches)

    def total_conflicted(self) -> int:
        """Entities reported conflicted, summed over retained batches."""
        return sum(len(delta.conflicted) for delta in self.batches)

    def summary(self) -> str:
        """One line per batch."""
        return "\n".join(delta.summary() for delta in self.batches)

    def __len__(self) -> int:
        return len(self.batches)

    def __iter__(self):
        return iter(self.batches)

    def __repr__(self) -> str:
        return (
            f"ChangeLog({len(self.batches)}/{self.total_batches} batches "
            f"retained, watermark {self.watermark})"
        )
