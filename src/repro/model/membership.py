"""Tuple membership: the ``(sn, sp)`` support pair.

Section 2.3 of the paper models the membership of a tuple in a relation
as evidence over the boolean frame Psi = {true, false}:

* ``sn = m({true})`` -- the *necessary* support,
* ``sp = m({true}) + m(Psi) = 1 - m({false})`` -- the *possible* support,

with ``0 <= sn <= sp <= 1``.  ``(1, 1)`` is certain existence, ``(0, 0)``
certain non-existence, ``(0, 1)`` complete ignorance.

Two combination rules act on membership pairs:

* :meth:`TupleMembership.combine_dempster` -- the paper's function ``F``:
  Dempster's rule on the boolean frame.  Used by the extended **union**
  to pool the membership evidence two databases provide about the same
  entity (verified against Table 4's *mehl* row:
  ``(0.5, 0.5) (+) (0.8, 1) = (5/6, 5/6)``).
* :meth:`TupleMembership.combine_product` -- the paper's ``F_TM``:
  component-wise multiplication, treating the inputs as independent
  events.  Used by **selection** (original membership x predicate
  support, Figure 3) and by the **cartesian product**.

The same structure doubles as the *support pair* that the selection
support function ``F_SS`` assigns to predicates, so the algebra reuses
this class for predicate supports.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import MembershipError, TotalConflictError
from repro.ds.frame import MEMBERSHIP_FRAME, OMEGA
from repro.ds.mass import MassFunction, Numeric, coerce_mass_value


class TupleMembership:
    """An ``(sn, sp)`` pair with ``0 <= sn <= sp <= 1``.

    >>> TupleMembership("1/2", "1/2").combine_dempster(TupleMembership("4/5", 1))
    TupleMembership(sn=5/6, sp=5/6)
    """

    __slots__ = ("_sn", "_sp")

    #: Absolute tolerance for float round-off at the interval borders.
    FLOAT_TOLERANCE = 1e-9

    def __init__(self, sn: object, sp: object):
        necessary = coerce_mass_value(sn)
        possible = coerce_mass_value(sp)
        if isinstance(necessary, float) or isinstance(possible, float):
            # Clamp float round-off (e.g. the closed-form Dempster rule
            # can produce sn exceeding sp by ~1e-16); genuine violations
            # beyond the tolerance still raise below.
            tolerance = self.FLOAT_TOLERANCE
            if -tolerance <= necessary < 0:
                necessary = 0.0
            if 1 < possible <= 1 + tolerance:
                possible = 1.0
            if possible < necessary <= possible + tolerance:
                necessary = possible
        if not 0 <= necessary <= possible <= 1:
            raise MembershipError(
                f"membership must satisfy 0 <= sn <= sp <= 1, got "
                f"(sn={necessary!r}, sp={possible!r})"
            )
        self._sn = necessary
        self._sp = possible

    # -- constructors --------------------------------------------------------

    @classmethod
    def certain(cls) -> "TupleMembership":
        """``(1, 1)``: the tuple exists with full certainty."""
        return cls(Fraction(1), Fraction(1))

    @classmethod
    def unknown(cls) -> "TupleMembership":
        """``(0, 1)``: complete ignorance about membership."""
        return cls(Fraction(0), Fraction(1))

    @classmethod
    def impossible(cls) -> "TupleMembership":
        """``(0, 0)``: the tuple certainly does not exist."""
        return cls(Fraction(0), Fraction(0))

    @classmethod
    def from_mass(cls, mass: MassFunction) -> "TupleMembership":
        """Build from a mass function over the frame {True, False}."""
        return cls(mass.mass({True}), 1 - mass.mass({False}))

    def to_mass(self) -> MassFunction:
        """The equivalent mass function over {True, False}."""
        return MassFunction(
            {
                frozenset({True}): self._sn,
                frozenset({False}): 1 - self._sp,
                OMEGA: self._sp - self._sn,
            },
            MEMBERSHIP_FRAME,
        )

    # -- accessors -------------------------------------------------------------

    @property
    def sn(self) -> Numeric:
        """Necessary support ``m({true})``."""
        return self._sn

    @property
    def sp(self) -> Numeric:
        """Possible support ``1 - m({false})``."""
        return self._sp

    @property
    def m_true(self) -> Numeric:
        """Mass on {true} (alias of :attr:`sn`)."""
        return self._sn

    @property
    def m_false(self) -> Numeric:
        """Mass on {false}."""
        return 1 - self._sp

    @property
    def m_unknown(self) -> Numeric:
        """Mass on the whole boolean frame (ignorance)."""
        return self._sp - self._sn

    @property
    def is_supported(self) -> bool:
        """``sn > 0``: the CWA_ER storage criterion."""
        return self._sn > 0

    @property
    def is_certain(self) -> bool:
        """``(sn, sp) == (1, 1)``."""
        return self._sn == 1 and self._sp == 1

    @property
    def is_impossible(self) -> bool:
        """``(sn, sp) == (0, 0)``."""
        return self._sp == 0

    # -- combination rules --------------------------------------------------

    def combine_dempster(self, other: "TupleMembership") -> "TupleMembership":
        """The paper's ``F``: Dempster's rule on the boolean frame.

        Uses the closed form (cross-checked against the generic rule by
        the test-suite).  Raises :class:`TotalConflictError` when one
        source is certain the tuple exists and the other is certain it
        does not.
        """
        sn1, sp1 = self._sn, self._sp
        sn2, sp2 = other._sn, other._sp
        kappa = sn1 * (1 - sp2) + (1 - sp1) * sn2
        if kappa == 1:
            raise TotalConflictError(
                "tuple membership evidence is totally conflicting "
                f"({self} vs {other})"
            )
        remaining = 1 - kappa
        mass_true = sn1 * sp2 + sp1 * sn2 - sn1 * sn2
        mass_false = (1 - sp1) * (1 - sn2) + (sp1 - sn1) * (1 - sp2)
        return TupleMembership(mass_true / remaining, 1 - mass_false / remaining)

    def combine_product(self, other: "TupleMembership") -> "TupleMembership":
        """The paper's ``F_TM``: independent-events conjunction.

        ``(sn1*sn2, sp1*sp2)`` -- the rule used by selection (Figure 3)
        and the cartesian product, and also the multiplicative rule for
        conjoining the supports of independent predicates (Section 3.1.1,
        after Baldwin and Hau-Kashyap).
        """
        return TupleMembership(self._sn * other._sn, self._sp * other._sp)

    def combine_disjunction(self, other: "TupleMembership") -> "TupleMembership":
        """Independent-events disjunction: support for ``S or T``.

        ``sn = sn1 + sn2 - sn1*sn2`` (and likewise for ``sp``).  The paper
        only needs conjunction; disjunctive predicates are an extension
        and use this rule.
        """
        return TupleMembership(
            self._sn + other._sn - self._sn * other._sn,
            self._sp + other._sp - self._sp * other._sp,
        )

    def negate(self) -> "TupleMembership":
        """Support for the complement event: ``(1 - sp, 1 - sn)``."""
        return TupleMembership(1 - self._sp, 1 - self._sn)

    # -- conversions ------------------------------------------------------------

    def to_float(self) -> "TupleMembership":
        """A copy with float components."""
        return TupleMembership(float(self._sn), float(self._sp))

    def to_exact(self) -> "TupleMembership":
        """A copy with exact components (floats via shortest repr)."""
        sn = Fraction(str(self._sn)) if isinstance(self._sn, float) else self._sn
        sp = Fraction(str(self._sp)) if isinstance(self._sp, float) else self._sp
        return TupleMembership(sn, sp)

    # -- plumbing ---------------------------------------------------------------

    def as_tuple(self) -> tuple[Numeric, Numeric]:
        """The raw ``(sn, sp)`` pair."""
        return (self._sn, self._sp)

    def __iter__(self):
        return iter((self._sn, self._sp))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TupleMembership):
            return NotImplemented
        return self._sn == other._sn and self._sp == other._sp

    def __hash__(self) -> int:
        return hash((self._sn, self._sp))

    def __repr__(self) -> str:
        return f"TupleMembership(sn={self._sn}, sp={self._sp})"

    def format(self, style: str = "auto", digits: int = 2) -> str:
        """Render as the paper's ``(sn,sp)`` column, e.g. ``(0.5,0.75)``."""
        from repro.ds.notation import format_mass_value

        return (
            f"({format_mass_value(self._sn, style, digits)},"
            f"{format_mass_value(self._sp, style, digits)})"
        )


#: The tuple certainly belongs to the relation.
CERTAIN = TupleMembership.certain()

#: Complete ignorance about the tuple's membership.
UNKNOWN = TupleMembership.unknown()

#: The tuple certainly does not belong to the relation.
IMPOSSIBLE = TupleMembership.impossible()

#: Alias: predicate supports share the (sn, sp) structure (Section 3.1).
SupportPair = TupleMembership
