"""Extended tuples.

An extended tuple binds a value to every attribute of a schema and
carries a tuple membership pair:

* **key** attributes hold definite scalar values (validated against the
  attribute domain);
* **uncertain** non-key attributes hold :class:`EvidenceSet` values
  (scalars are auto-wrapped as definite evidence; strings in bracket
  notation ``"[...]"`` are parsed);
* **certain** non-key attributes also store an :class:`EvidenceSet`, but
  it must be definite -- keeping one representation for all non-key
  values lets the algebra treat them uniformly.

Tuples are immutable; all "mutators" return new tuples.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import RelationError, SchemaError
from repro.ds.mass import MassFunction
from repro.model.attribute import Attribute
from repro.model.evidence import EvidenceSet
from repro.model.membership import CERTAIN, TupleMembership
from repro.model.schema import RelationSchema


def _coerce_membership(membership: object) -> TupleMembership:
    """Accept a TupleMembership or an (sn, sp) pair."""
    if isinstance(membership, TupleMembership):
        return membership
    if isinstance(membership, tuple) and len(membership) == 2:
        return TupleMembership(*membership)
    raise RelationError(
        f"tuple membership must be a TupleMembership or (sn, sp) pair, "
        f"got {membership!r}"
    )


def _coerce_value(attribute: Attribute, raw: object) -> object:
    """Normalize a raw attribute value according to the attribute kind."""
    if attribute.key:
        if isinstance(raw, EvidenceSet):
            raw = raw.definite_value()
        return attribute.domain.validate(raw)
    # Non-key values are stored as evidence sets.
    if isinstance(raw, EvidenceSet):
        evidence = EvidenceSet(raw.mass_function, attribute.domain)
    elif isinstance(raw, MassFunction):
        evidence = EvidenceSet(raw, attribute.domain)
    elif isinstance(raw, Mapping):
        evidence = EvidenceSet(raw, attribute.domain)
    elif isinstance(raw, str) and raw.startswith("[") and raw.endswith("]"):
        evidence = EvidenceSet.parse(raw, attribute.domain)
    else:
        evidence = EvidenceSet.definite(
            attribute.domain.validate(raw), attribute.domain
        )
    if not attribute.uncertain and not evidence.is_definite():
        raise RelationError(
            f"attribute {attribute.name!r} is certain but received the "
            f"uncertain value {evidence.format()}"
        )
    return evidence


class ExtendedTuple:
    """One row of an extended relation.

    >>> from repro.model import Attribute, RelationSchema, TextDomain, EnumeratedDomain
    >>> schema = RelationSchema("R", [
    ...     Attribute("rname", TextDomain("rname"), key=True),
    ...     Attribute("rating", EnumeratedDomain("rating", ["ex","gd","avg"]),
    ...               uncertain=True)])
    >>> t = ExtendedTuple(schema, {"rname": "wok", "rating": "[gd^0.25, avg^0.75]"})
    >>> t.key()
    ('wok',)
    >>> t.membership.is_certain
    True
    """

    __slots__ = ("_schema", "_values", "_membership")

    def __init__(
        self,
        schema: RelationSchema,
        values: Mapping[str, object],
        membership: object = CERTAIN,
    ):
        unknown = set(values) - set(schema.names)
        if unknown:
            raise SchemaError(
                f"values reference unknown attribute(s) "
                f"{', '.join(sorted(unknown))} of relation {schema.name!r}"
            )
        missing = set(schema.names) - set(values)
        if missing:
            raise SchemaError(
                f"tuple for {schema.name!r} is missing attribute(s) "
                f"{', '.join(sorted(missing))}"
            )
        self._schema = schema
        self._values = {
            attribute.name: _coerce_value(attribute, values[attribute.name])
            for attribute in schema.attributes
        }
        self._membership = _coerce_membership(membership)

    # -- accessors -----------------------------------------------------------

    @property
    def schema(self) -> RelationSchema:
        """The tuple's relation schema."""
        return self._schema

    @property
    def membership(self) -> TupleMembership:
        """The ``(sn, sp)`` membership pair."""
        return self._membership

    def key(self) -> tuple:
        """The definite key values, in key-attribute order."""
        return tuple(self._values[name] for name in self._schema.key_names)

    def value(self, name: str) -> object:
        """The stored value: a scalar for keys, an EvidenceSet otherwise."""
        if name not in self._values:
            raise SchemaError(
                f"tuple of {self._schema.name!r} has no attribute {name!r}"
            )
        return self._values[name]

    def evidence(self, name: str) -> EvidenceSet:
        """The attribute value as an evidence set (keys wrapped definite)."""
        value = self.value(name)
        if isinstance(value, EvidenceSet):
            return value
        return EvidenceSet.definite(value, self._schema.attribute(name).domain)

    def __getitem__(self, name: str) -> object:
        return self.value(name)

    def items(self):
        """Iterate ``(attribute name, stored value)`` in schema order."""
        for name in self._schema.names:
            yield name, self._values[name]

    # -- derivations --------------------------------------------------------------

    def with_membership(self, membership: object) -> "ExtendedTuple":
        """A copy with a different membership pair."""
        return ExtendedTuple(self._schema, self._values, membership)

    def with_values(self, replacements: Mapping[str, object]) -> "ExtendedTuple":
        """A copy with some attribute values replaced."""
        merged = dict(self._values)
        merged.update(replacements)
        return ExtendedTuple(self._schema, merged, self._membership)

    def project(self, schema: RelationSchema) -> "ExtendedTuple":
        """Restriction of this tuple to a projected schema.

        The membership pair travels with the tuple (the paper's extended
        projection keeps the membership attribute).
        """
        values = {name: self._values[name] for name in schema.names}
        return ExtendedTuple(schema, values, self._membership)

    def renamed(self, schema: RelationSchema, mapping: Mapping[str, str]) -> "ExtendedTuple":
        """This tuple under a renamed schema (``mapping`` is old -> new)."""
        values = {
            mapping.get(name, name): value for name, value in self._values.items()
        }
        return ExtendedTuple(schema, values, self._membership)

    # -- plumbing ---------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExtendedTuple):
            return NotImplemented
        return (
            self._schema.names == other._schema.names
            and self._values == other._values
            and self._membership == other._membership
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._schema.names,
                tuple(sorted(self._values.items(), key=lambda kv: kv[0], )),
                self._membership,
            )
        )

    def __repr__(self) -> str:
        rendered = []
        for name, value in self.items():
            if isinstance(value, EvidenceSet):
                rendered.append(f"{name}={value.format()}")
            else:
                rendered.append(f"{name}={value!r}")
        return (
            f"ExtendedTuple({', '.join(rendered)}, "
            f"(sn,sp)={self._membership.format()})"
        )
