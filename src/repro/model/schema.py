"""Relation schemas.

A schema names a relation and fixes its ordered attribute list.  Every
extended relation needs at least one key attribute (the paper assumes "the
preprocessed relations share a common key which determines the matched
tuples"), and keys must be certain.

Schemas provide the structural operations the algebra builds on:
union-compatibility (Section 3.2, footnote 5: same attribute set including
keys), projection (which must retain the keys so tuple identity survives),
concatenation for the cartesian product (with deterministic prefix-based
disambiguation of clashing names), and renaming.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.model.attribute import Attribute


class RelationSchema:
    """An ordered attribute list with a name and a designated key.

    >>> from repro.model import Attribute, TextDomain
    >>> schema = RelationSchema(
    ...     "R", [Attribute("rname", TextDomain("rname"), key=True),
    ...           Attribute("street", TextDomain("street"))])
    >>> schema.key_names
    ('rname',)
    """

    __slots__ = ("_name", "_attributes", "_by_name")

    def __init__(self, name: str, attributes: Sequence[Attribute]):
        if not name or not isinstance(name, str):
            raise SchemaError(f"relation name must be a non-empty string, got {name!r}")
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError(f"relation {name!r} needs at least one attribute")
        by_name: dict[str, Attribute] = {}
        for attribute in attrs:
            if not isinstance(attribute, Attribute):
                raise SchemaError(f"expected Attribute, got {attribute!r}")
            if attribute.name in by_name:
                raise SchemaError(
                    f"duplicate attribute {attribute.name!r} in relation {name!r}"
                )
            by_name[attribute.name] = attribute
        if not any(attribute.key for attribute in attrs):
            raise SchemaError(f"relation {name!r} needs at least one key attribute")
        self._name = name
        self._attributes = attrs
        self._by_name = by_name

    # -- accessors ---------------------------------------------------------

    @property
    def name(self) -> str:
        """The relation name."""
        return self._name

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """All attributes in declaration order."""
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        """All attribute names in declaration order."""
        return tuple(attribute.name for attribute in self._attributes)

    @property
    def key_names(self) -> tuple[str, ...]:
        """Names of the key attributes, in declaration order."""
        return tuple(a.name for a in self._attributes if a.key)

    @property
    def nonkey_names(self) -> tuple[str, ...]:
        """Names of the non-key attributes, in declaration order."""
        return tuple(a.name for a in self._attributes if not a.key)

    @property
    def uncertain_names(self) -> tuple[str, ...]:
        """Names of the attributes that may hold evidence sets."""
        return tuple(a.name for a in self._attributes if a.uncertain)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name; raises :class:`SchemaError`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"relation {self._name!r} has no attribute {name!r} "
                f"(attributes: {', '.join(self.names)})"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    # -- structural operations ----------------------------------------------

    def union_compatible(self, other: "RelationSchema") -> bool:
        """Footnote 5: same attribute set (names, domains, key designation).

        Attribute *order* does not matter, names and flags do.
        """
        if set(self.names) != set(other.names):
            return False
        return all(
            self._by_name[name].compatible_with(other._by_name[name])
            for name in self.names
        )

    def require_union_compatible(self, other: "RelationSchema") -> None:
        """Raise :class:`SchemaError` unless union-compatible with *other*."""
        if not self.union_compatible(other):
            raise SchemaError(
                f"relations {self._name!r} and {other._name!r} are not "
                f"union-compatible ({self.names} vs {other.names})"
            )

    def project(self, names: Iterable[str], new_name: str | None = None) -> "RelationSchema":
        """The schema of a projection onto *names*.

        The paper's extended projection keeps the key attributes (and the
        tuple membership attribute, which is implicit here); dropping a
        key would destroy tuple identity, so it is rejected.
        """
        requested = list(names)
        seen: set[str] = set()
        for name in requested:
            if name in seen:
                raise SchemaError(f"attribute {name!r} listed twice in projection")
            seen.add(name)
            if name not in self._by_name:
                raise SchemaError(
                    f"cannot project unknown attribute {name!r} of {self._name!r}"
                )
        missing_keys = [key for key in self.key_names if key not in seen]
        if missing_keys:
            raise SchemaError(
                f"projection on {self._name!r} must retain key attribute(s) "
                f"{', '.join(missing_keys)}"
            )
        projected = [self._by_name[name] for name in requested]
        return RelationSchema(new_name or self._name, projected)

    def rename_attributes(
        self, mapping: Mapping[str, str], new_name: str | None = None
    ) -> "RelationSchema":
        """Rename attributes via ``{old: new}``; unknown names are errors."""
        for old in mapping:
            if old not in self._by_name:
                raise SchemaError(
                    f"cannot rename unknown attribute {old!r} of {self._name!r}"
                )
        renamed = [
            attribute.renamed(mapping.get(attribute.name, attribute.name))
            for attribute in self._attributes
        ]
        return RelationSchema(new_name or self._name, renamed)

    def concat(
        self, other: "RelationSchema", new_name: str | None = None
    ) -> "RelationSchema":
        """The schema of the cartesian product ``self x other``.

        Clashing attribute names are disambiguated with ``<relation>_``
        prefixes (both sides are prefixed, mirroring the usual dotted
        notation).  The product key is the union of both keys.
        """
        clashes = set(self.names) & set(other.names)

        def resolved(schema: RelationSchema, attribute: Attribute) -> Attribute:
            if attribute.name in clashes:
                return attribute.renamed(f"{schema.name}_{attribute.name}")
            return attribute

        left = [resolved(self, attribute) for attribute in self._attributes]
        right = [resolved(other, attribute) for attribute in other._attributes]
        name = new_name or f"{self._name}_x_{other._name}"
        try:
            return RelationSchema(name, left + right)
        except SchemaError as exc:
            raise SchemaError(
                f"cannot concatenate schemas {self._name!r} and {other._name!r}: {exc}"
            ) from exc

    def with_name(self, name: str) -> "RelationSchema":
        """A copy of the schema under a new relation name."""
        return RelationSchema(name, self._attributes)

    # -- plumbing -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self._name == other._name and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash((self._name, self._attributes))

    def __repr__(self) -> str:
        parts = []
        for attribute in self._attributes:
            marker = "*" if attribute.key else ""
            parts.append(f"{marker}{attribute.display_name}")
        return f"RelationSchema({self._name!r}: {', '.join(parts)})"
