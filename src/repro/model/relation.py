"""Extended relations.

An extended relation is a set of extended tuples over one schema, indexed
by their definite keys.  Two invariants from Section 2.3 of the paper are
enforced:

* **CWA_ER** -- "the integrated database will store information about an
  entity iff there is some positive evidence to support its membership":
  every stored tuple must have ``sn > 0``.  The constructor either raises
  (``on_unsupported="raise"``, the default) or silently drops offending
  tuples (``on_unsupported="drop"``, which is how operation results
  materialize the CWA_ER reading that sn = 0 result tuples are simply
  not stored).  A third policy, ``"allow"``, admits sn = 0 tuples; it
  exists solely so the *hypothetical complement relations* of
  Section 3.6's boundedness property can be represented when verifying
  Theorem 1 -- such relations are not CWA_ER-conformant and are never
  produced by the algebra.
* **definite, unique keys** -- keys identify real-world entities, so two
  tuples with the same key cannot coexist in one relation.

Relations are immutable; "mutators" return new relations.
"""

from __future__ import annotations

import zlib

from collections.abc import Iterable, Iterator, Mapping

from repro.errors import RelationError
from repro.model.etuple import ExtendedTuple
from repro.model.membership import CERTAIN
from repro.model.schema import RelationSchema

#: Accepted values for the CWA_ER enforcement policy.
UNSUPPORTED_POLICIES = ("raise", "drop", "allow")


def partition_index(key: tuple, n: int) -> int:
    """The hash partition (0..n-1) an entity *key* belongs to.

    Deterministic across processes and runs (CRC32 of the key's
    ``repr``, which is stable for the hashable value types keys hold --
    unlike built-in ``hash``, which is salted per process for strings),
    so forked workers, reloads and repeated runs agree on the sharding.
    """
    return zlib.crc32(repr(key).encode("utf-8")) % n


class ExtendedRelation:
    """An immutable set of extended tuples with definite unique keys.

    >>> from repro.datasets.restaurants import table_ra
    >>> ra = table_ra()
    >>> len(ra)
    6
    >>> ra.get(("wok",)).evidence("speciality").format()
    '[si^1]'
    """

    __slots__ = ("_schema", "_index", "_policy")

    def __init__(
        self,
        schema: RelationSchema,
        tuples: Iterable[ExtendedTuple] = (),
        on_unsupported: str = "raise",
    ):
        if on_unsupported not in UNSUPPORTED_POLICIES:
            raise RelationError(
                f"on_unsupported must be one of {UNSUPPORTED_POLICIES}, "
                f"got {on_unsupported!r}"
            )
        index: dict[tuple, ExtendedTuple] = {}
        for etuple in tuples:
            if not isinstance(etuple, ExtendedTuple):
                raise RelationError(f"expected ExtendedTuple, got {etuple!r}")
            if etuple.schema.names != schema.names:
                raise RelationError(
                    f"tuple schema {etuple.schema.name!r} does not match "
                    f"relation schema {schema.name!r}"
                )
            if not etuple.membership.is_supported and on_unsupported != "allow":
                if on_unsupported == "drop":
                    continue
                raise RelationError(
                    f"CWA_ER violation: tuple {etuple.key()!r} has sn = 0 "
                    "(use on_unsupported='drop' to filter such tuples)"
                )
            key = etuple.key()
            if key in index:
                raise RelationError(
                    f"duplicate key {key!r} in relation {schema.name!r}"
                )
            index[key] = etuple
        self._schema = schema
        self._index = index
        self._policy = on_unsupported

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        schema: RelationSchema,
        rows: Iterable[Mapping[str, object] | tuple],
        on_unsupported: str = "raise",
    ) -> "ExtendedRelation":
        """Build a relation from plain rows.

        Each row is either a values mapping (membership defaults to
        certain) or a ``(values, membership)`` pair where membership is a
        :class:`TupleMembership` or an ``(sn, sp)`` tuple.
        """
        tuples = []
        for row in rows:
            if isinstance(row, Mapping):
                tuples.append(ExtendedTuple(schema, row, CERTAIN))
            else:
                values, membership = row
                tuples.append(ExtendedTuple(schema, values, membership))
        return cls(schema, tuples, on_unsupported)

    @classmethod
    def from_partitions(
        cls,
        schema: RelationSchema,
        parts: Iterable["ExtendedRelation"],
        on_unsupported: str = "raise",
    ) -> "ExtendedRelation":
        """Reassemble one relation from key-disjoint sub-relations.

        The inverse of :meth:`partitions`: tuples concatenate in part
        order (each part keeps its internal order), and the constructor
        re-enforces both invariants -- CWA_ER (per *on_unsupported*) and
        unique definite keys, so overlapping parts fail loudly instead
        of silently last-writer-wins.
        """
        tuples: list[ExtendedTuple] = []
        for part in parts:
            tuples.extend(part)
        return cls(schema, tuples, on_unsupported)

    # -- accessors ------------------------------------------------------------------

    @property
    def schema(self) -> RelationSchema:
        """The relation schema."""
        return self._schema

    @property
    def name(self) -> str:
        """The relation name (from the schema)."""
        return self._schema.name

    def tuples(self) -> tuple[ExtendedTuple, ...]:
        """All tuples, in insertion order."""
        return tuple(self._index.values())

    def keys(self) -> tuple[tuple, ...]:
        """All tuple keys, in insertion order."""
        return tuple(self._index)

    def get(self, key: tuple, default: ExtendedTuple | None = None):
        """The tuple with the given key, or *default*."""
        if not isinstance(key, tuple):
            key = (key,)
        return self._index.get(key, default)

    def __contains__(self, key: object) -> bool:
        if not isinstance(key, tuple):
            key = (key,)
        return key in self._index

    def __iter__(self) -> Iterator[ExtendedTuple]:
        return iter(self._index.values())

    def __len__(self) -> int:
        return len(self._index)

    # -- partitioning -------------------------------------------------------------------

    def partitions(self, n: int) -> tuple["ExtendedRelation", ...]:
        """This relation as *n* key-sharded sub-relations.

        A cheap hash-partitioned view: tuples are assigned to shards by
        :func:`partition_index` of their definite key, so two
        union-compatible relations partitioned with the same *n* place
        every entity's tuples in the same shard -- the property that
        makes per-entity operations (union, intersection, federation
        merges) decomposable per shard.  Each shard preserves this
        relation's relative tuple order and CWA_ER policy; shards may be
        empty.  :meth:`from_partitions` is the inverse.

        >>> from repro.datasets.restaurants import table_ra
        >>> parts = table_ra().partitions(3)
        >>> sum(len(part) for part in parts)
        6
        >>> merged = ExtendedRelation.from_partitions(
        ...     table_ra().schema, parts)
        >>> merged.same_tuples(table_ra())
        True
        """
        if n < 1:
            raise RelationError(f"partition count must be >= 1, got {n!r}")
        if n == 1:
            return (self,)
        buckets: list[list[ExtendedTuple]] = [[] for _ in range(n)]
        for key, etuple in self._index.items():
            buckets[partition_index(key, n)].append(etuple)
        return tuple(
            ExtendedRelation(self._schema, bucket, self._policy)
            for bucket in buckets
        )

    # -- derivations --------------------------------------------------------------------

    def with_name(self, name: str) -> "ExtendedRelation":
        """The same relation under a different name (policy preserved)."""
        renamed_schema = self._schema.with_name(name)
        tuples = [
            ExtendedTuple(
                renamed_schema,
                dict(etuple.items()),
                etuple.membership,
            )
            for etuple in self
        ]
        return ExtendedRelation(renamed_schema, tuples, self._policy)

    def add(self, etuple: ExtendedTuple) -> "ExtendedRelation":
        """A new relation with *etuple* inserted."""
        return ExtendedRelation(
            self._schema, list(self.tuples()) + [etuple], self._policy
        )

    def filter(self, predicate) -> "ExtendedRelation":
        """A new relation keeping tuples where ``predicate(tuple)`` holds.

        This is plain Python filtering for tooling purposes -- the
        *evidential* selection lives in :func:`repro.algebra.select`.
        """
        return ExtendedRelation(
            self._schema, [t for t in self if predicate(t)], on_unsupported="drop"
        )

    def map_tuples(self, transform) -> "ExtendedRelation":
        """A new relation with every tuple passed through *transform*."""
        return ExtendedRelation(
            self._schema, [transform(t) for t in self], self._policy
        )

    def to_float(self) -> "ExtendedRelation":
        """A copy with float masses and membership (for benchmarks)."""

        def convert(etuple: ExtendedTuple) -> ExtendedTuple:
            values = {}
            for name, value in etuple.items():
                values[name] = value.to_float() if hasattr(value, "to_float") else value
            return ExtendedTuple(
                self._schema, values, etuple.membership.to_float()
            )

        return ExtendedRelation(
            self._schema, [convert(t) for t in self], self._policy
        )

    # -- comparisons ----------------------------------------------------------------------

    def same_tuples(self, other: "ExtendedRelation") -> bool:
        """Key-wise exact equality of contents (ignores relation names)."""
        if set(self._index) != set(other._index):
            return False
        return all(
            self._index[key] == other._index[key] for key in self._index
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExtendedRelation):
            return NotImplemented
        return self._schema == other._schema and self.same_tuples(other)

    def __hash__(self) -> int:
        return hash((self._schema, frozenset(self._index.items())))

    def __repr__(self) -> str:
        return (
            f"ExtendedRelation({self._schema.name!r}, {len(self._index)} tuples)"
        )
