"""Relation attributes.

An attribute couples a name with a domain and two flags:

* ``key`` -- part of the relation key.  The paper's extended relations
  have *definite* key values (footnote 3: "Generalization to uncertain
  key values is outside the scope of this paper"), so a key attribute can
  never be uncertain.
* ``uncertain`` -- the attribute may hold evidence-set values.  The paper
  prefixes such attributes with a dagger (rendered ``y`` in the text,
  e.g. ``yspeciality``); :attr:`Attribute.display_name` reproduces that
  convention.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.model.domain import Domain

#: Prefix the paper puts in front of attributes that may hold uncertain
#: values (printed as a dagger in the original, ``y`` in the text dump).
UNCERTAIN_PREFIX = "y"


class Attribute:
    """A named, typed attribute of a relation schema.

    >>> from repro.model import EnumeratedDomain
    >>> speciality = Attribute(
    ...     "speciality",
    ...     EnumeratedDomain("speciality", ["am", "hu", "si", "ca", "mu", "it", "ta"]),
    ...     uncertain=True,
    ... )
    >>> speciality.display_name
    'yspeciality'
    """

    __slots__ = ("_name", "_domain", "_key", "_uncertain")

    def __init__(
        self,
        name: str,
        domain: Domain,
        key: bool = False,
        uncertain: bool = False,
    ):
        if not name or not isinstance(name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {name!r}")
        if not isinstance(domain, Domain):
            raise SchemaError(f"attribute {name!r} needs a Domain, got {domain!r}")
        if key and uncertain:
            raise SchemaError(
                f"key attribute {name!r} cannot be uncertain "
                "(extended relations have definite keys)"
            )
        self._name = name
        self._domain = domain
        self._key = bool(key)
        self._uncertain = bool(uncertain)

    @property
    def name(self) -> str:
        """The attribute name (without the uncertainty prefix)."""
        return self._name

    @property
    def domain(self) -> Domain:
        """The attribute's value domain."""
        return self._domain

    @property
    def key(self) -> bool:
        """Whether the attribute is part of the relation key."""
        return self._key

    @property
    def uncertain(self) -> bool:
        """Whether the attribute may hold evidence-set values."""
        return self._uncertain

    @property
    def display_name(self) -> str:
        """The paper's display form: uncertain attributes get a ``y``."""
        if self._uncertain:
            return UNCERTAIN_PREFIX + self._name
        return self._name

    def renamed(self, name: str) -> "Attribute":
        """A copy of the attribute under a new name."""
        return Attribute(name, self._domain, key=self._key, uncertain=self._uncertain)

    def as_key(self) -> "Attribute":
        """A copy marked as a key attribute (must be certain)."""
        return Attribute(self._name, self._domain, key=True, uncertain=self._uncertain)

    def as_nonkey(self) -> "Attribute":
        """A copy without the key flag."""
        return Attribute(
            self._name, self._domain, key=False, uncertain=self._uncertain
        )

    def compatible_with(self, other: "Attribute") -> bool:
        """Union-compatibility at the attribute level: same name, domain,
        key flag and uncertainty flag."""
        return (
            self._name == other._name
            and self._domain == other._domain
            and self._key == other._key
            and self._uncertain == other._uncertain
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return self.compatible_with(other)

    def __hash__(self) -> int:
        return hash((self._name, self._domain, self._key, self._uncertain))

    def __repr__(self) -> str:
        flags = []
        if self._key:
            flags.append("key")
        if self._uncertain:
            flags.append("uncertain")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"Attribute({self._name!r}: {self._domain.name}{suffix})"
