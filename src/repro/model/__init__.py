"""The extended relational model (Section 2.3 of the paper).

An *extended relation* differs from a traditional relation in two ways:

1. non-key attribute values may be **evidence sets** -- Dempster-Shafer
   mass functions over subsets of the attribute domain -- while key
   attributes stay definite;
2. every tuple carries a **tuple membership** pair ``(sn, sp)`` giving
   the necessary and possible support for the tuple belonging to the
   relation, with ``0 <= sn <= sp <= 1``.

The generalized closed world assumption (CWA_ER) interprets tuples absent
from a relation as having ``sn = 0``; accordingly a stored relation only
holds tuples with positive necessary support, which
:class:`~repro.model.relation.ExtendedRelation` enforces.
"""

from repro.model.domain import (
    AnyDomain,
    BooleanDomain,
    Domain,
    EnumeratedDomain,
    NumericDomain,
    TextDomain,
)
from repro.model.attribute import Attribute
from repro.model.schema import RelationSchema
from repro.model.evidence import EvidenceSet
from repro.model.membership import (
    CERTAIN,
    IMPOSSIBLE,
    UNKNOWN,
    TupleMembership,
)
from repro.model.etuple import ExtendedTuple
from repro.model.relation import ExtendedRelation

__all__ = [
    "Domain",
    "EnumeratedDomain",
    "NumericDomain",
    "TextDomain",
    "BooleanDomain",
    "AnyDomain",
    "Attribute",
    "RelationSchema",
    "EvidenceSet",
    "TupleMembership",
    "CERTAIN",
    "UNKNOWN",
    "IMPOSSIBLE",
    "ExtendedTuple",
    "ExtendedRelation",
]
