"""Attribute domains.

The paper writes the domain of attribute ``A`` as a capital theta with
subscript ``A`` -- "the set of values A can possibly be assigned".  Mass
functions allocate belief to subsets of it.  Domains come in two broad
flavours here:

* **enumerable** domains (:class:`EnumeratedDomain`, :class:`BooleanDomain`)
  whose full value set is known, enabling OMEGA resolution, pignistic
  transforms and exhaustive theta-predicate evaluation;
* **open** domains (:class:`NumericDomain`, :class:`TextDomain`,
  :class:`AnyDomain`) that only validate membership; mass on the whole
  domain stays symbolic.
"""

from __future__ import annotations

import numbers
import re
from abc import ABC, abstractmethod
from collections.abc import Iterable

from repro.errors import DomainError
from repro.ds.frame import FrameOfDiscernment


class Domain(ABC):
    """Abstract attribute domain."""

    __slots__ = ("_name",)

    def __init__(self, name: str):
        self._name = str(name)

    @property
    def name(self) -> str:
        """The domain's identifier (e.g. ``"speciality"``)."""
        return self._name

    @abstractmethod
    def contains(self, value: object) -> bool:
        """``True`` when *value* is a legal member of the domain."""

    @property
    def is_enumerable(self) -> bool:
        """``True`` when the full value set is finite and known."""
        return False

    def frame(self) -> FrameOfDiscernment | None:
        """The enumerated frame of discernment, when one exists."""
        return None

    def validate(self, value: object) -> object:
        """Return *value* unchanged, raising :class:`DomainError` when it
        does not belong to the domain."""
        if not self.contains(value):
            raise DomainError(f"value {value!r} is outside domain {self._name!r}")
        return value

    def validate_all(self, values: Iterable) -> None:
        """Validate every member of *values*."""
        for value in values:
            self.validate(value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Domain):
            return NotImplemented
        return type(self) is type(other) and self._signature() == other._signature()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._signature()))

    def _signature(self) -> tuple:
        return (self._name,)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._name!r})"


class EnumeratedDomain(Domain):
    """A finite domain given by its value set.

    >>> rating = EnumeratedDomain("rating", ["ex", "gd", "avg"])
    >>> rating.contains("ex")
    True
    >>> rating.is_enumerable
    True
    """

    __slots__ = ("_frame",)

    def __init__(self, name: str, values: Iterable):
        super().__init__(name)
        self._frame = FrameOfDiscernment(name, values)

    @property
    def values(self) -> frozenset:
        """The enumerated value set."""
        return self._frame.values

    def contains(self, value: object) -> bool:
        return self._frame.contains(value)

    @property
    def is_enumerable(self) -> bool:
        return True

    def frame(self) -> FrameOfDiscernment:
        return self._frame

    def _signature(self) -> tuple:
        return (self._name, self._frame.values)

    def __len__(self) -> int:
        return len(self._frame)

    def __iter__(self):
        return iter(self._frame)


class BooleanDomain(EnumeratedDomain):
    """The two-valued domain ``{True, False}``."""

    __slots__ = ()

    def __init__(self, name: str = "boolean"):
        super().__init__(name, [True, False])


class NumericDomain(Domain):
    """Numbers, optionally bounded and optionally integral.

    >>> bldg = NumericDomain("bldg-no", low=1, integral=True)
    >>> bldg.contains(2011)
    True
    >>> bldg.contains(3.5)
    False
    """

    __slots__ = ("_low", "_high", "_integral")

    def __init__(
        self,
        name: str,
        low: float | None = None,
        high: float | None = None,
        integral: bool = False,
    ):
        super().__init__(name)
        if low is not None and high is not None and low > high:
            raise DomainError(f"domain {name!r} has low {low!r} > high {high!r}")
        self._low = low
        self._high = high
        self._integral = bool(integral)

    @property
    def low(self):
        """Inclusive lower bound, or ``None``."""
        return self._low

    @property
    def high(self):
        """Inclusive upper bound, or ``None``."""
        return self._high

    @property
    def integral(self) -> bool:
        """Whether only integers are admitted."""
        return self._integral

    def contains(self, value: object) -> bool:
        if isinstance(value, bool) or not isinstance(value, numbers.Real):
            return False
        if self._integral and not isinstance(value, numbers.Integral):
            return False
        if self._low is not None and value < self._low:
            return False
        if self._high is not None and value > self._high:
            return False
        return True

    def _signature(self) -> tuple:
        return (self._name, self._low, self._high, self._integral)


class TextDomain(Domain):
    """Strings, optionally constrained by a regular expression.

    >>> phone = TextDomain("phone", pattern=r"\\d{3}-\\d{4}")
    >>> phone.contains("371-2155")
    True
    """

    __slots__ = ("_pattern",)

    def __init__(self, name: str, pattern: str | None = None):
        super().__init__(name)
        self._pattern = re.compile(pattern) if pattern is not None else None

    def contains(self, value: object) -> bool:
        if not isinstance(value, str):
            return False
        if self._pattern is not None and self._pattern.fullmatch(value) is None:
            return False
        return True

    def _signature(self) -> tuple:
        pattern = self._pattern.pattern if self._pattern is not None else None
        return (self._name, pattern)


class AnyDomain(Domain):
    """The unconstrained domain; every hashable value is admitted."""

    __slots__ = ()

    def __init__(self, name: str = "any"):
        super().__init__(name)

    def contains(self, value: object) -> bool:
        try:
            hash(value)
        except TypeError:
            return False
        return True
