"""Evidence sets: uncertain attribute values.

An *evidence set* (Section 2.1) is "a collection of subsets of the
attribute domain associated with a mass function assignment".  This class
couples a :class:`~repro.ds.mass.MassFunction` with the attribute's
:class:`~repro.model.domain.Domain`, validating that focal elements only
use legal domain values and attaching the enumerated frame when one
exists (so OMEGA resolves and transforms work).

A definite value is the special case of a single singleton focal element
with mass one; :meth:`EvidenceSet.definite` builds it and
:meth:`EvidenceSet.is_definite` recognizes it.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import DomainError, MassFunctionError
from repro.ds.frame import is_omega
from repro.ds.mass import MassFunction, Numeric
from repro.ds.notation import format_evidence, parse_evidence
from repro.model.domain import Domain


class EvidenceSet:
    """An uncertain attribute value: a mass function over a domain.

    Parameters
    ----------
    mass:
        A :class:`MassFunction`, a mapping acceptable to its constructor,
        or a string in the paper's bracket notation.
    domain:
        The attribute's domain.  When provided, all focal-element values
        are validated against it; when the domain is enumerable its frame
        is attached to the mass function.

    >>> from repro.model import EnumeratedDomain
    >>> speciality = EnumeratedDomain("speciality", ["am","hu","si","ca","mu","it","ta"])
    >>> es = EvidenceSet("[si^0.5, hu^0.25, Ω^0.25]", speciality)
    >>> es.bel({"si"})
    Fraction(1, 2)
    """

    __slots__ = ("_mass", "_domain")

    def __init__(self, mass, domain: Domain | None = None):
        frame = domain.frame() if domain is not None and domain.is_enumerable else None
        if isinstance(mass, str):
            mass_function = parse_evidence(mass, frame)
        elif isinstance(mass, MassFunction):
            if frame is None or mass.frame == frame:
                # Already attached to (and validated against) this very
                # frame: reuse as-is, preserving the compiled kernel
                # state across integration folds.
                mass_function = mass
            else:
                mass_function = mass.with_frame(frame)
        elif isinstance(mass, Mapping):
            mass_function = MassFunction(mass, frame)
        else:
            raise MassFunctionError(
                f"cannot build an evidence set from {mass!r}; expected a "
                "MassFunction, a mapping, or bracket notation"
            )
        if domain is not None and not domain.is_enumerable:
            for element in mass_function.focal_elements():
                if is_omega(element):
                    continue
                for value in element:
                    if not domain.contains(value):
                        raise DomainError(
                            f"value {value!r} is outside domain {domain.name!r}"
                        )
        self._mass = mass_function
        self._domain = domain

    # -- constructors -----------------------------------------------------------

    @classmethod
    def definite(cls, value: object, domain: Domain | None = None) -> "EvidenceSet":
        """The evidence set fully committed to a single value."""
        return cls(MassFunction.definite(value), domain)

    @classmethod
    def vacuous(cls, domain: Domain | None = None) -> "EvidenceSet":
        """Total ignorance: all mass on the whole domain."""
        return cls(MassFunction.vacuous(), domain)

    @classmethod
    def from_counts(cls, counts: Mapping, domain: Domain | None = None) -> "EvidenceSet":
        """Vote-share evidence (Section 1.2); see
        :meth:`MassFunction.from_counts`."""
        frame = domain.frame() if domain is not None and domain.is_enumerable else None
        return cls(MassFunction.from_counts(counts, frame), domain)

    @classmethod
    def parse(cls, text: str, domain: Domain | None = None) -> "EvidenceSet":
        """Parse the paper's bracket notation."""
        return cls(text, domain)

    # -- accessors ---------------------------------------------------------------

    @property
    def mass_function(self) -> MassFunction:
        """The underlying mass function."""
        return self._mass

    @property
    def domain(self) -> Domain | None:
        """The attribute domain, when known."""
        return self._domain

    def mass(self, element: object) -> Numeric:
        """The mass of a focal element."""
        return self._mass.mass(element)

    def __getitem__(self, element: object) -> Numeric:
        return self._mass.mass(element)

    def items(self):
        """Iterate ``(focal element, mass)`` in deterministic order."""
        return self._mass.items()

    def focal_elements(self):
        """The focal elements in deterministic order."""
        return self._mass.focal_elements()

    def bel(self, subset: object) -> Numeric:
        """Belief committed to *subset*."""
        return self._mass.bel(subset)

    def pls(self, subset: object) -> Numeric:
        """Plausibility of *subset*."""
        return self._mass.pls(subset)

    def ignorance(self) -> Numeric:
        """Mass on the whole domain (nonbelief)."""
        return self._mass.ignorance()

    @property
    def is_compiled(self) -> bool:
        """``True`` when the mass function carries its compiled kernel
        form (see :mod:`repro.ds.kernel`)."""
        return self._mass.is_compiled

    def compile(self) -> "EvidenceSet":
        """Eagerly compile to the kernel form; returns ``self``.

        A no-op for unenumerable domains (no frame to intern), and for
        evidence that is already compiled.  Loading a database compiles
        every enumerated evidence set up front, so queries and merges
        start on the fast path immediately.
        """
        self._mass.compiled()
        return self

    def is_definite(self) -> bool:
        """``True`` when the value is certain."""
        return self._mass.is_definite()

    def is_vacuous(self) -> bool:
        """``True`` when nothing at all is known."""
        return self._mass.is_vacuous()

    def definite_value(self):
        """The single certain value (raises unless definite)."""
        return self._mass.definite_value()

    # -- operations ---------------------------------------------------------------

    def combine(self, other: "EvidenceSet") -> "EvidenceSet":
        """Dempster's rule; domains must agree when both are known."""
        if (
            self._domain is not None
            and other._domain is not None
            and self._domain != other._domain
        ):
            raise DomainError(
                f"cannot combine evidence over domains "
                f"{self._domain.name!r} and {other._domain.name!r}"
            )
        return EvidenceSet(
            self._mass.combine(other._mass), self._domain or other._domain
        )

    def to_float(self) -> "EvidenceSet":
        """A copy with float masses."""
        return EvidenceSet(self._mass.to_float(), self._domain)

    def to_exact(self) -> "EvidenceSet":
        """A copy with exact masses."""
        return EvidenceSet(self._mass.to_exact(), self._domain)

    def format(self, style: str = "auto", digits: int = 3) -> str:
        """Render in the paper's bracket notation."""
        return format_evidence(self._mass, style, digits)

    # -- plumbing -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EvidenceSet):
            return NotImplemented
        return self._mass == other._mass

    def __hash__(self) -> int:
        return hash(self._mass)

    def __repr__(self) -> str:
        domain = f", domain={self._domain.name!r}" if self._domain is not None else ""
        return f"EvidenceSet({self.format()}{domain})"
