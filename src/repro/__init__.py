"""repro: evidential reasoning for database integration.

A complete Python implementation of

    Ee-Peng Lim, Jaideep Srivastava, Shashi Shekhar.
    "Resolving Attribute Incompatibility in Database Integration:
     An Evidential Reasoning Approach."  ICDE 1994.

The paper extends the relational model so that attribute values may be
*evidence sets* (Dempster-Shafer mass functions over subsets of the
attribute domain) and every tuple carries an ``(sn, sp)`` membership
pair; the extended union resolves attribute-value conflicts between
independently developed databases by pooling their evidence with
Dempster's rule of combination.

Package map
-----------
``repro.ds``           Dempster-Shafer substrate (mass, Bel/Pls, combination)
``repro.model``        extended relational model (domains ... relations)
``repro.algebra``      the five extended operations + Theorem 1 checks
``repro.expr``         lazy fluent expression builder (RelExpr)
``repro.session``      the caching query engine behind both front ends
``repro.query``        SQL-like language, planner, plan IR, fingerprints
``repro.integration``  the Figure 1 framework (preprocess, match, merge)
``repro.stream``       streaming integration (incremental delta-merges)
``repro.sources``      evidence from summaries (votes, classification, history)
``repro.baselines``    Dayal / DeMichiel / Tseng / PDM comparators
``repro.storage``      catalog, pluggable backends (json/sqlite/log), rendering
``repro.obs``          telemetry: metrics registry, tracing spans, profiles
``repro.datasets``     the paper's restaurant tables + synthetic generators

Quickstart
----------
Build queries fluently; nothing runs until ``collect()``, and the
session behind the database caches plans and results for you:

>>> from repro import Database, attr, sn_at_least, table_ra, table_rb
>>> db = Database("tourist_bureau")
>>> db.add(table_ra())
>>> db.add(table_rb())
>>> result = (
...     db.rel("RA").union(db.rel("RB"))
...     .select(attr("rating").is_({"ex"}), sn_at_least("1/2"))
...     .project("rname", "rating")
...     .collect()
... )
>>> sorted(t.key()[0] for t in result)
['ashiana', 'country', 'mehl']

The SQL-like string front end lowers into the identical plans (same
optimizer, same caches); the eager ``algebra.*`` functions still work
and are now thin wrappers over single-node expressions:

>>> db.add(union(table_ra(), table_rb(), name="R"))
>>> result = db.query("SELECT rname, rating FROM R WHERE rating IS {ex} WITH SN >= 0.5")
>>> sorted(t.key()[0] for t in result)
['ashiana', 'country', 'mehl']
"""

from repro.errors import (
    CatalogError,
    DomainError,
    ExecutionError,
    IntegrationError,
    MassFunctionError,
    MembershipError,
    NotationError,
    OperationError,
    ParseError,
    PlanError,
    PredicateError,
    QueryError,
    RelationError,
    ReproError,
    SchemaError,
    SerializationError,
    StreamError,
    TotalConflictError,
)
from repro.ds import (
    OMEGA,
    FrameOfDiscernment,
    MassFunction,
    belief,
    combine,
    combine_all,
    conflict,
    format_evidence,
    parse_evidence,
    plausibility,
)
from repro.model import (
    CERTAIN,
    IMPOSSIBLE,
    UNKNOWN,
    AnyDomain,
    Attribute,
    BooleanDomain,
    Domain,
    EnumeratedDomain,
    EvidenceSet,
    ExtendedRelation,
    ExtendedTuple,
    NumericDomain,
    RelationSchema,
    TextDomain,
    TupleMembership,
)
from repro.algebra import (
    And,
    IsPredicate,
    Not,
    Or,
    Predicate,
    SN_CERTAIN,
    SN_POSITIVE,
    ThetaPredicate,
    attr,
    equijoin,
    join,
    lit,
    product,
    project,
    rename,
    select,
    union,
    union_with_report,
)
from repro.algebra import intersection
from repro.algebra.thresholds import sn_at_least, sn_greater, sp_at_least, sp_greater
from repro.analysis import decide, relation_quality
from repro.expr import RelExpr
from repro.integration import Federation, IntegrationPipeline, TupleMerger
from repro.session import Session, SessionStats, Subscription
from repro.storage import (
    Database,
    create_database,
    format_relation,
    open_backend,
    open_database,
)
from repro.obs import (
    FlushProfile,
    MetricsRegistry,
    QueryProfile,
    registry,
    set_tracing,
    span,
    tracing_scope,
)
from repro.stream import BatchDelta, ChangeLog, StreamEngine
from repro.datasets import (
    SyntheticConfig,
    synthetic_pair,
    table_ra,
    table_rb,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "MassFunctionError",
    "NotationError",
    "TotalConflictError",
    "DomainError",
    "SchemaError",
    "MembershipError",
    "RelationError",
    "PredicateError",
    "OperationError",
    "QueryError",
    "ParseError",
    "PlanError",
    "ExecutionError",
    "IntegrationError",
    "StreamError",
    "SerializationError",
    "CatalogError",
    # evidence
    "OMEGA",
    "FrameOfDiscernment",
    "MassFunction",
    "belief",
    "plausibility",
    "combine",
    "combine_all",
    "conflict",
    "parse_evidence",
    "format_evidence",
    # model
    "Domain",
    "EnumeratedDomain",
    "NumericDomain",
    "TextDomain",
    "BooleanDomain",
    "AnyDomain",
    "Attribute",
    "RelationSchema",
    "EvidenceSet",
    "TupleMembership",
    "CERTAIN",
    "UNKNOWN",
    "IMPOSSIBLE",
    "ExtendedTuple",
    "ExtendedRelation",
    # algebra
    "Predicate",
    "IsPredicate",
    "ThetaPredicate",
    "And",
    "Or",
    "Not",
    "attr",
    "lit",
    "select",
    "union",
    "union_with_report",
    "project",
    "product",
    "join",
    "equijoin",
    "rename",
    "SN_POSITIVE",
    "SN_CERTAIN",
    "sn_greater",
    "sn_at_least",
    "sp_greater",
    "sp_at_least",
    "intersection",
    # lazy expressions / session engine
    "RelExpr",
    "Session",
    "SessionStats",
    "Subscription",
    # streaming integration
    "StreamEngine",
    "ChangeLog",
    "BatchDelta",
    # observability
    "MetricsRegistry",
    "registry",
    "span",
    "set_tracing",
    "tracing_scope",
    "QueryProfile",
    "FlushProfile",
    # integration / analysis / storage / datasets
    "IntegrationPipeline",
    "TupleMerger",
    "Federation",
    "decide",
    "relation_quality",
    "Database",
    "create_database",
    "open_backend",
    "open_database",
    "format_relation",
    "table_ra",
    "table_rb",
    "SyntheticConfig",
    "synthetic_pair",
    "__version__",
]
