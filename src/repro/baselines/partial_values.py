"""DeMichiel's partial values (TKDE 1989).

A *partial value* is "a set of values of which exactly one must be
correct"; combining two partial values is their intersection.  Querying
relations containing partial values returns two answer sets: **true**
tuples (definitely qualify) and **may-be** tuples (might qualify).

The paper generalizes this: an evidence set with a single focal element
carrying mass one *is* a partial value, and Bel/Pls collapse to the
true/may-be dichotomy.  The comparison benchmark quantifies what the
generalization buys -- a partial value forgets the relative likelihoods
an evidence set retains, and the two-answer-set interface forgets the
graded membership the extended model reports.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import TotalConflictError
from repro.ds.frame import is_omega
from repro.model.evidence import EvidenceSet


class PartialValue:
    """A non-empty set of candidate values, exactly one correct.

    >>> PartialValue({"hu", "si"}).is_definite()
    False
    >>> PartialValue({"hu"}).definite_value()
    'hu'
    """

    __slots__ = ("_candidates",)

    def __init__(self, candidates: Iterable):
        candidate_set = frozenset(candidates)
        if not candidate_set:
            raise TotalConflictError("a partial value cannot be empty")
        self._candidates = candidate_set

    @property
    def candidates(self) -> frozenset:
        """The candidate value set."""
        return self._candidates

    def is_definite(self) -> bool:
        """``True`` when a single candidate remains."""
        return len(self._candidates) == 1

    def definite_value(self):
        """The single candidate (raises when indefinite)."""
        if not self.is_definite():
            raise ValueError(f"{self!r} is not definite")
        (value,) = self._candidates
        return value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartialValue):
            return NotImplemented
        return self._candidates == other._candidates

    def __hash__(self) -> int:
        return hash(self._candidates)

    def __len__(self) -> int:
        return len(self._candidates)

    def __iter__(self):
        return iter(sorted(self._candidates, key=repr))

    def __repr__(self) -> str:
        rendered = ",".join(sorted(map(str, self._candidates)))
        return f"PartialValue({{{rendered}}})"


def to_partial_value(evidence: EvidenceSet) -> PartialValue:
    """Flatten an evidence set into a partial value (its core).

    This is lossy by design: mass structure is discarded, keeping only
    which values are possible at all.  OMEGA cores need an enumerable
    domain.
    """
    core = evidence.mass_function.core()
    if is_omega(core):
        domain = evidence.domain
        if domain is None or not domain.is_enumerable:
            raise TotalConflictError(
                "cannot flatten total ignorance without an enumerable domain"
            )
        core = frozenset(domain.frame().values)
    return PartialValue(core)


def combine_partial(left: PartialValue, right: PartialValue) -> PartialValue:
    """DeMichiel's combination: set intersection.

    Raises :class:`TotalConflictError` when the candidate sets are
    disjoint (inconsistent sources).
    """
    meet = left.candidates & right.candidates
    if not meet:
        raise TotalConflictError(
            f"partial values {left!r} and {right!r} are disjoint"
        )
    return PartialValue(meet)


def partial_select(
    rows: Iterable[tuple[object, PartialValue]],
    values: Iterable,
) -> tuple[list, list]:
    """DeMichiel-style selection ``attribute in values``.

    *rows* are ``(row_id, partial_value)`` pairs.  Returns
    ``(true_ids, maybe_ids)``: rows whose candidates are entirely inside
    *values* definitely qualify; rows with some overlap may qualify.
    This two-set interface is what the extended model's graded
    ``(sn, sp)`` membership replaces.
    """
    target = frozenset(values)
    true_ids: list = []
    maybe_ids: list = []
    for row_id, partial in rows:
        if partial.candidates <= target:
            true_ids.append(row_id)
        elif partial.candidates & target:
            maybe_ids.append(row_id)
    return true_ids, maybe_ids
