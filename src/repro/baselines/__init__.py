"""Baseline approaches to attribute-value conflict (Section 1.3).

The paper situates its evidential approach against four earlier lines of
work; all four are implemented so the comparison benchmarks can contrast
their behaviour on the same data:

* :mod:`repro.baselines.aggregates` -- Dayal (VLDB 1983): aggregate
  functions (average/min/max) over conflicting numeric values;
* :mod:`repro.baselines.partial_values` -- DeMichiel (TKDE 1989):
  partial values (a set of candidates, exactly one correct), combined by
  intersection; queries return *true* and *may-be* answer sets;
* :mod:`repro.baselines.probabilistic` -- Tseng, Chen & Yang (1992):
  probabilistic partial values with selection at a confidence level,
  inconsistency retained on combination;
* :mod:`repro.baselines.pdm` -- Barbara, Garcia-Molina & Porter (TKDE
  1992): the probabilistic data model, probabilities on individual
  values (plus a wildcard) but never on value subsets.
"""

from repro.baselines.aggregates import AggregateResolver
from repro.baselines.partial_values import (
    PartialValue,
    combine_partial,
    partial_select,
    to_partial_value,
)
from repro.baselines.probabilistic import (
    ProbabilisticPartialValue,
    combine_probabilistic,
    probabilistic_select,
)
from repro.baselines.pdm import PdmDistribution, pdm_combine_missing

__all__ = [
    "AggregateResolver",
    "PartialValue",
    "to_partial_value",
    "combine_partial",
    "partial_select",
    "ProbabilisticPartialValue",
    "combine_probabilistic",
    "probabilistic_select",
    "PdmDistribution",
    "pdm_combine_missing",
]
