"""Tseng, Chen & Yang's probabilistic partial values (1992).

A probabilistic partial value lists the possible values of an attribute
with probabilities.  Two stances distinguish it from the paper's
evidential model (Section 1.3):

* **no consistency assumption** -- when sources disagree, their
  distributions are pooled by an (equal-weight) mixture, so a value one
  source rules out survives with half its mass; Dempster's rule instead
  renormalizes it away under the assumption that both sources are
  consistent and reliable;
* **probabilities only on individual values** -- mass cannot be given to
  a *set* of values, so an undecided reviewer vote for {d35, d36} must
  be split (here: uniformly), fabricating precision the evidence does
  not contain.

Selection filters tuples whose probability of satisfying the condition
meets a confidence level, returning the qualifying probability with each
answer.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from fractions import Fraction

from repro.errors import MassFunctionError
from repro.ds.frame import is_omega
from repro.ds.mass import coerce_mass_value
from repro.model.evidence import EvidenceSet


class ProbabilisticPartialValue:
    """A probability distribution over candidate attribute values."""

    __slots__ = ("_probabilities",)

    def __init__(self, probabilities: Mapping):
        cleaned: dict = {}
        for value, probability in probabilities.items():
            p = coerce_mass_value(probability)
            if p < 0:
                raise MassFunctionError(
                    f"negative probability {p!r} for {value!r}"
                )
            if p > 0:
                cleaned[value] = p
        if not cleaned:
            raise MassFunctionError("a probabilistic partial value needs values")
        total = sum(cleaned.values())
        if isinstance(total, Fraction):
            if total != 1:
                raise MassFunctionError(f"probabilities must sum to 1, got {total}")
        elif abs(float(total) - 1.0) > 1e-9:
            raise MassFunctionError(f"probabilities must sum to 1, got {total}")
        self._probabilities = cleaned

    @classmethod
    def from_evidence(cls, evidence: EvidenceSet) -> "ProbabilisticPartialValue":
        """Flatten an evidence set by splitting set-masses uniformly.

        This is the pignistic flattening -- the only way to fit
        set-valued evidence into a model that admits probabilities on
        individual values only.  It is lossy: ``m({d35,d36}) = 1/2``
        becomes ``P(d35) = P(d36) = 1/4``, a precision the votes never
        expressed.
        """
        probabilities: dict = {}
        for element, mass in evidence.items():
            if is_omega(element):
                domain = evidence.domain
                if domain is None or not domain.is_enumerable:
                    raise MassFunctionError(
                        "cannot flatten OMEGA without an enumerable domain"
                    )
                members = sorted(domain.frame().values, key=repr)
            else:
                members = sorted(element, key=repr)
            share = mass / len(members)
            for member in members:
                probabilities[member] = probabilities.get(member, 0) + share
        return cls(probabilities)

    @property
    def probabilities(self) -> dict:
        """The value -> probability mapping."""
        return dict(self._probabilities)

    def probability(self, value: object):
        """The probability of one value (0 when absent)."""
        return self._probabilities.get(value, Fraction(0))

    def probability_in(self, values: Iterable):
        """The probability that the attribute lies in *values*."""
        target = frozenset(values)
        return sum(
            (p for value, p in self._probabilities.items() if value in target),
            Fraction(0),
        )

    def support(self) -> frozenset:
        """The values with positive probability."""
        return frozenset(self._probabilities)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProbabilisticPartialValue):
            return NotImplemented
        return self._probabilities == other._probabilities

    def __repr__(self) -> str:
        items = ", ".join(
            f"{value}:{probability}"
            for value, probability in sorted(
                self._probabilities.items(), key=lambda kv: repr(kv[0])
            )
        )
        return f"ProbabilisticPartialValue({{{items}}})"


def combine_probabilistic(
    left: ProbabilisticPartialValue,
    right: ProbabilisticPartialValue,
) -> ProbabilisticPartialValue:
    """Pool two distributions by equal-weight mixture.

    Inconsistent information survives: a value with probability 0 in one
    source and p in the other ends at p/2 -- it is *not* renormalized
    away.  Contrast with Dempster's rule, which (for Bayesian masses)
    multiplies pointwise and renormalizes, eliminating values either
    source excludes.
    """
    pooled: dict = {}
    for value, p in left.probabilities.items():
        pooled[value] = pooled.get(value, 0) + p / 2
    for value, p in right.probabilities.items():
        pooled[value] = pooled.get(value, 0) + p / 2
    return ProbabilisticPartialValue(pooled)


def probabilistic_select(
    rows: Iterable[tuple[object, ProbabilisticPartialValue]],
    values: Iterable,
    confidence: object = Fraction(1, 2),
) -> list[tuple[object, object]]:
    """Selection at a confidence level.

    Returns ``(row_id, probability)`` pairs for rows whose probability
    of lying in *values* is at least *confidence* -- "the possibilities
    of tuples satisfying a query are given as part of the query result".
    """
    threshold = coerce_mass_value(confidence)
    target = frozenset(values)
    answers: list[tuple[object, object]] = []
    for row_id, distribution in rows:
        probability = distribution.probability_in(target)
        if probability >= threshold:
            answers.append((row_id, probability))
    return answers
