"""Barbara, Garcia-Molina & Porter's probabilistic data model (TKDE 1992).

PDM attaches probabilities to attribute values of database entities, with
two structural restrictions the paper calls out (Section 1.3):

* probabilities attach to **individual values only**, never to subsets
  -- residual probability goes to a wildcard ``*`` ("missing
  probability", which PDM does allow);
* there is **no tuple membership** concept.

Barbara et al. themselves note the potential need of a COMBINE operator
for pooling two distributions of an attribute; the paper argues
Dempster's rule realizes it.  :func:`pdm_combine_missing` implements the
natural PDM-style combination (pointwise product with wildcard handling,
renormalized), and :func:`pdm_from_evidence` shows what PDM must discard
when ingesting set-valued evidence.
"""

from __future__ import annotations

from collections.abc import Mapping
from fractions import Fraction

from repro.errors import MassFunctionError, TotalConflictError
from repro.ds.frame import is_omega
from repro.ds.mass import coerce_mass_value
from repro.model.evidence import EvidenceSet

#: PDM's wildcard: "some value we know nothing about".
WILDCARD = "*"


class PdmDistribution:
    """A PDM attribute distribution: values plus an optional wildcard.

    >>> d = PdmDistribution({"ex": "1/2", WILDCARD: "1/2"})
    >>> d.missing
    Fraction(1, 2)
    """

    __slots__ = ("_probabilities", "_missing")

    def __init__(self, probabilities: Mapping):
        cleaned: dict = {}
        missing = Fraction(0)
        for value, probability in probabilities.items():
            p = coerce_mass_value(probability)
            if p < 0:
                raise MassFunctionError(f"negative probability for {value!r}")
            if p == 0:
                continue
            if value == WILDCARD:
                missing = missing + p
            else:
                cleaned[value] = cleaned.get(value, 0) + p
        total = sum(cleaned.values()) + missing
        if isinstance(total, Fraction):
            if total != 1:
                raise MassFunctionError(f"probabilities must sum to 1, got {total}")
        elif abs(float(total) - 1.0) > 1e-9:
            raise MassFunctionError(f"probabilities must sum to 1, got {total}")
        self._probabilities = cleaned
        self._missing = missing

    @property
    def probabilities(self) -> dict:
        """Explicit value probabilities (wildcard excluded)."""
        return dict(self._probabilities)

    @property
    def missing(self):
        """The wildcard (missing) probability."""
        return self._missing

    def probability(self, value: object):
        """The explicit probability of *value*."""
        return self._probabilities.get(value, Fraction(0))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PdmDistribution):
            return NotImplemented
        return (
            self._probabilities == other._probabilities
            and self._missing == other._missing
        )

    def __repr__(self) -> str:
        items = ", ".join(
            f"{value}:{p}"
            for value, p in sorted(
                self._probabilities.items(), key=lambda kv: repr(kv[0])
            )
        )
        if self._missing:
            items = f"{items}, *:{self._missing}" if items else f"*:{self._missing}"
        return f"PdmDistribution({{{items}}})"


def pdm_from_evidence(evidence: EvidenceSet) -> PdmDistribution:
    """Ingest an evidence set into PDM.

    Singleton focal elements carry over; **every non-singleton focal
    element must collapse into the wildcard** -- PDM has nowhere to put
    mass on a set.  This is the information loss the paper's model
    avoids: ``m({hunan, sichuan}) = 1/3`` ("one of these two") becomes
    indistinguishable from total ignorance.
    """
    probabilities: dict = {}
    missing = Fraction(0)
    for element, mass in evidence.items():
        if not is_omega(element) and len(element) == 1:
            (value,) = element
            probabilities[value] = probabilities.get(value, 0) + mass
        else:
            missing = missing + mass
    if missing:
        probabilities[WILDCARD] = missing
    return PdmDistribution(probabilities)


def pdm_combine_missing(
    left: PdmDistribution, right: PdmDistribution
) -> PdmDistribution:
    """The COMBINE operator PDM anticipates, in PDM's own vocabulary.

    Pointwise product with the wildcard acting as "any value": the
    combined probability of value ``v`` pools ``P1(v)P2(v)``,
    ``P1(v)P2(*)`` and ``P1(*)P2(v)``; wildcard meets wildcard stays
    wildcard.  Renormalizes by the non-conflicting mass.  This is
    precisely Dempster's rule restricted to singleton-plus-OMEGA masses
    -- the test-suite verifies the equivalence -- substantiating the
    paper's claim that its extended union realizes PDM's missing
    COMBINE.
    """
    pooled: dict = {}
    wildcard_mass = left.missing * right.missing
    for value, p in left.probabilities.items():
        q = right.probability(value)
        pooled[value] = p * q + p * right.missing
    for value, q in right.probabilities.items():
        pooled[value] = pooled.get(value, 0) + q * left.missing
    total = sum(pooled.values()) + wildcard_mass
    if total == 0:
        raise TotalConflictError("PDM distributions are totally conflicting")
    normalized = {value: p / total for value, p in pooled.items() if p > 0}
    if wildcard_mass:
        normalized[WILDCARD] = wildcard_mass / total
    return PdmDistribution(normalized)
