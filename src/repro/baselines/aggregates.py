"""Dayal's aggregate-attribute conflict resolution (VLDB 1983).

"If the salary attribute values of record instances in two employee
relations do not agree, an average is defined over them to derive the
correct salary attribute value for the integrated relation."

The approach applies to *definite numeric* values only -- the paper's
point is precisely that aggregates cannot be defined over non-numeric or
uncertain values, where the evidential approach takes over.
:class:`AggregateResolver` resolves a pair of plain relations (dict rows
keyed by a shared key) with a per-attribute aggregate, and reports the
attributes it had to refuse (non-numeric), which the comparison
benchmark counts as *information the approach cannot integrate*.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from fractions import Fraction

from repro.errors import IntegrationError

#: Supported aggregate function names.
AGGREGATES = ("average", "min", "max", "sum")


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float, Fraction)) and not isinstance(value, bool)


class AggregateResolver:
    """Resolve attribute conflicts between two keyed row sets.

    Parameters
    ----------
    key:
        The key column name present in every row.
    methods:
        ``{column: aggregate_name}``; columns without an entry use
        *default* when numeric.
    default:
        Aggregate for unlisted numeric columns (default ``"average"``).

    >>> rows_a = [{"name": "x", "salary": 100}]
    >>> rows_b = [{"name": "x", "salary": 120}]
    >>> resolver = AggregateResolver("name")
    >>> resolved, refused = resolver.resolve(rows_a, rows_b)
    >>> resolved[0]["salary"]
    110
    """

    def __init__(
        self,
        key: str,
        methods: Mapping[str, str] | None = None,
        default: str = "average",
    ):
        if default not in AGGREGATES:
            raise IntegrationError(
                f"unknown aggregate {default!r}; expected one of {AGGREGATES}"
            )
        for name, method in (methods or {}).items():
            if method not in AGGREGATES:
                raise IntegrationError(
                    f"unknown aggregate {method!r} for column {name!r}"
                )
        self._key = key
        self._methods = dict(methods or {})
        self._default = default

    def _apply(self, method: str, a, b):
        if method == "average":
            if isinstance(a, float) or isinstance(b, float):
                return (a + b) / 2
            value = Fraction(a + b, 2)
            return int(value) if value.denominator == 1 else value
        if method == "min":
            return min(a, b)
        if method == "max":
            return max(a, b)
        return a + b  # sum

    def resolve(
        self,
        left_rows: Sequence[Mapping],
        right_rows: Sequence[Mapping],
    ) -> tuple[list[dict], list[tuple]]:
        """Merge two row lists on the key.

        Returns ``(resolved_rows, refusals)`` where each refusal is a
        ``(key_value, column)`` pair the aggregate approach could not
        handle (non-numeric disagreement); the offending column keeps the
        left value in the output so row structure survives.
        """
        right_index = {row[self._key]: row for row in right_rows}
        refusals: list[tuple] = []
        resolved: list[dict] = []
        seen: set = set()
        for row in left_rows:
            key_value = row[self._key]
            seen.add(key_value)
            other = right_index.get(key_value)
            if other is None:
                resolved.append(dict(row))
                continue
            merged: dict = {self._key: key_value}
            for column in row:
                if column == self._key:
                    continue
                a = row[column]
                b = other.get(column, a)
                if a == b:
                    merged[column] = a
                elif _is_number(a) and _is_number(b):
                    method = self._methods.get(column, self._default)
                    merged[column] = self._apply(method, a, b)
                else:
                    refusals.append((key_value, column))
                    merged[column] = a
            resolved.append(merged)
        for row in right_rows:
            if row[self._key] not in seen:
                resolved.append(dict(row))
        return resolved, refusals
