"""Dempster-Shafer theory of evidence substrate.

This package implements the evidential-reasoning machinery of Section 2 of
the paper: frames of discernment, mass functions over subsets of a domain,
belief and plausibility functions, and Dempster's rule of combination with
normalization and total-conflict detection.  Extensions that the follow-on
literature commonly relies on (discounting, pignistic transform,
disjunctive combination) are included as clearly-marked extras.

All arithmetic defaults to :class:`fractions.Fraction` so the worked
examples of the paper (e.g. the Section 2.2 combination producing masses
3/7, 1/3, 2/21, 2/21 and 1/21) reproduce *exactly*; float masses are
supported for large-scale benchmarking.

Example
-------
>>> from repro.ds import MassFunction, OMEGA, combine
>>> m1 = MassFunction({("ca",): "1/2", ("hu", "si"): "1/3", OMEGA: "1/6"})
>>> m2 = MassFunction({("ca", "hu"): "1/2", ("hu",): "1/4", OMEGA: "1/4"})
>>> combined = combine(m1, m2)
>>> combined[{"ca"}]
Fraction(3, 7)
"""

from repro.ds.frame import OMEGA, FocalElement, FrameOfDiscernment, Omega
from repro.ds.mass import MassFunction
from repro.ds.kernel import (
    CompiledMass,
    InternedFrame,
    KernelStats,
    compile_mass_function,
    intern_frame,
    kernel_disabled,
    kernel_enabled,
    kernel_stats,
    set_kernel_enabled,
)
from repro.ds.belief import (
    belief,
    commonality,
    doubt,
    plausibility,
    uncertainty_interval,
)
from repro.ds.combination import (
    combine,
    combine_all,
    combine_with_conflict,
    conflict,
    conjunctive,
    disjunctive,
    intersect_focal,
    union_focal,
    weight_of_conflict,
)
from repro.ds.discounting import discount
from repro.ds.conditioning import condition
from repro.ds.moebius import belief_table, mass_from_belief
from repro.ds.measures import (
    discord,
    information_gain,
    nonspecificity,
    total_uncertainty,
)
from repro.ds.transforms import (
    max_belief_decision,
    max_pignistic_decision,
    max_plausibility_decision,
    pignistic,
    plausibility_transform,
)
from repro.ds.notation import format_evidence, format_focal_element, parse_evidence

__all__ = [
    "OMEGA",
    "Omega",
    "FocalElement",
    "FrameOfDiscernment",
    "MassFunction",
    "belief",
    "plausibility",
    "commonality",
    "doubt",
    "uncertainty_interval",
    "CompiledMass",
    "InternedFrame",
    "KernelStats",
    "compile_mass_function",
    "intern_frame",
    "kernel_disabled",
    "kernel_enabled",
    "kernel_stats",
    "set_kernel_enabled",
    "combine",
    "combine_all",
    "combine_with_conflict",
    "conflict",
    "conjunctive",
    "disjunctive",
    "intersect_focal",
    "union_focal",
    "weight_of_conflict",
    "discount",
    "condition",
    "belief_table",
    "mass_from_belief",
    "nonspecificity",
    "discord",
    "total_uncertainty",
    "information_gain",
    "pignistic",
    "plausibility_transform",
    "max_belief_decision",
    "max_plausibility_decision",
    "max_pignistic_decision",
    "format_evidence",
    "format_focal_element",
    "parse_evidence",
]
