"""Frames of discernment and the symbolic Omega focal element.

A *frame of discernment* is the set of mutually exclusive values an
attribute can take (the paper writes it as a capital theta; we follow the
more common Omega).  Mass may be assigned to the entire frame to express
*nonbelief* -- the portion of evidence that commits to nothing -- without
the frame ever being enumerated.  To support that, the library represents
"the whole domain" by the singleton :data:`OMEGA`, which participates in
set operations symbolically:

* ``OMEGA`` intersected with any set ``X`` is ``X``,
* ``OMEGA`` is a superset of every set and a subset only of itself.

When a concrete :class:`FrameOfDiscernment` is known, :data:`OMEGA` can be
resolved to the actual value set via :meth:`FrameOfDiscernment.resolve`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from itertools import combinations
from typing import Union

from repro.errors import DomainError


class Omega:
    """Symbolic stand-in for the full frame of discernment.

    There is exactly one instance, :data:`OMEGA`.  It is hashable and
    compares equal only to itself, so it can be used as a dictionary key
    alongside ``frozenset`` focal elements.
    """

    _instance: "Omega | None" = None

    def __new__(cls) -> "Omega":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "Ω"

    def __reduce__(self):
        # Preserve the singleton across pickling.
        return (Omega, ())


OMEGA = Omega()

#: A focal element is either a concrete, non-empty ``frozenset`` of domain
#: values or the symbolic whole-frame marker :data:`OMEGA`.
FocalElement = Union[frozenset, Omega]


def is_omega(element: object) -> bool:
    """Return ``True`` when *element* is the symbolic whole frame."""
    return element is OMEGA or isinstance(element, Omega)


class FrameOfDiscernment:
    """An enumerated, finite frame of discernment.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"speciality"``.
    values:
        The exhaustive set of mutually exclusive values.

    >>> frame = FrameOfDiscernment("rating", ["ex", "gd", "avg"])
    >>> frame.contains("ex")
    True
    >>> len(frame)
    3
    """

    __slots__ = ("_name", "_values")

    def __init__(self, name: str, values: Iterable):
        self._name = str(name)
        self._values = frozenset(values)
        if not self._values:
            raise DomainError(f"frame {self._name!r} must contain at least one value")

    @property
    def name(self) -> str:
        """The frame's identifier."""
        return self._name

    @property
    def values(self) -> frozenset:
        """The frame's value set."""
        return self._values

    def contains(self, value: object) -> bool:
        """Return ``True`` when *value* belongs to the frame."""
        return value in self._values

    def is_subset(self, elements: Iterable) -> bool:
        """Return ``True`` when every element of *elements* is in the frame."""
        return frozenset(elements) <= self._values

    def resolve(self, element: FocalElement) -> frozenset:
        """Resolve a focal element to a concrete set of values.

        :data:`OMEGA` resolves to the full value set; concrete sets are
        validated against the frame.
        """
        if is_omega(element):
            return self._values
        concrete = frozenset(element)
        if not concrete <= self._values:
            extraneous = sorted(map(repr, concrete - self._values))
            raise DomainError(
                f"values {', '.join(extraneous)} are outside frame {self._name!r}"
            )
        return concrete

    def canonicalize(self, element: FocalElement) -> FocalElement:
        """Collapse a concrete set equal to the whole frame into OMEGA."""
        if is_omega(element):
            return OMEGA
        concrete = self.resolve(element)
        if concrete == self._values:
            return OMEGA
        return concrete

    def subsets(self, *, proper: bool = False, nonempty: bool = True) -> Iterator[frozenset]:
        """Iterate over subsets of the frame (the powerset).

        Parameters
        ----------
        proper:
            Skip the full frame itself.
        nonempty:
            Skip the empty set (the default, since mass functions never
            assign mass to it).

        The powerset is exponential in the frame size; this is intended
        for small frames such as the tuple-membership frame {true, false}.
        """
        ordered = sorted(self._values, key=repr)
        start = 0 if not nonempty else 1
        stop = len(ordered) + (0 if proper else 1)
        for size in range(start, stop):
            for combo in combinations(ordered, size):
                yield frozenset(combo)

    def __contains__(self, value: object) -> bool:
        return value in self._values

    def __iter__(self) -> Iterator:
        return iter(sorted(self._values, key=repr))

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrameOfDiscernment):
            return NotImplemented
        return self._name == other._name and self._values == other._values

    def __hash__(self) -> int:
        return hash((self._name, self._values))

    def __repr__(self) -> str:
        preview = ", ".join(sorted(map(str, self._values))[:6])
        suffix = ", ..." if len(self._values) > 6 else ""
        return f"FrameOfDiscernment({self._name!r}, {{{preview}{suffix}}})"


#: The boolean frame used for tuple membership (Section 2.3 of the paper,
#: where it is written as Psi = {true, false}).
MEMBERSHIP_FRAME = FrameOfDiscernment("membership", [True, False])
