"""Uncertainty measures over mass functions.

Integration quality is not just "did it run": an administrator wants to
know how *informative* the pooled evidence is.  Dempster-Shafer theory
distinguishes two flavours of uncertainty, and this module implements
the standard measures of each (all in bits):

* **nonspecificity** (Dubois & Prade's generalized Hartley measure):
  ``N(m) = sum m(A) * log2 |A|`` -- how widely the evidence spreads over
  *sets*; zero iff all focal elements are singletons.
* **discord** (Yager's dissonance / Shannon-like entropy of conflict):
  ``D(m) = -sum m(A) * log2 Pls(A)`` -- how much the focal elements
  contradict each other; zero for consonant (nested) evidence.
* **total uncertainty**: their sum, a common aggregate measure.

The conflict study example uses these to show that Dempster's rule
trades nonspecificity down (evidence sharpens) while discord can grow
with source disagreement.
"""

from __future__ import annotations

import math

from repro.errors import MassFunctionError
from repro.ds.frame import is_omega
from repro.ds.mass import MassFunction


def _element_size(m: MassFunction, element) -> int:
    if not is_omega(element):
        return len(element)
    if m.frame is None:
        raise MassFunctionError(
            "nonspecificity of mass on OMEGA needs an enumerated frame"
        )
    return len(m.frame)


def nonspecificity(m: MassFunction) -> float:
    """Generalized Hartley measure ``N(m) = sum m(A) log2|A|``, in bits.

    >>> from repro.ds import MassFunction
    >>> nonspecificity(MassFunction({"a": 1}))
    0.0
    >>> nonspecificity(MassFunction({("a", "b"): 1}))
    1.0
    """
    total = 0.0  # repro: ignore[EXACT] -- entropy measures are float-valued
    for element, value in m.items():
        size = _element_size(m, element)
        if size > 1:
            # repro: ignore[EXACT] -- log2 forces floats; measures only
            total += float(value) * math.log2(size)
    return total


def discord(m: MassFunction) -> float:
    """Yager's dissonance ``D(m) = -sum m(A) log2 Pls(A)``, in bits.

    Zero when the focal elements are consonant (every pair intersects at
    full plausibility); grows as the evidence argues with itself.
    """
    total = 0.0  # repro: ignore[EXACT] -- entropy measures are float-valued
    for element, value in m.items():
        pls = float(m.pls(element))  # repro: ignore[EXACT] -- measures only
        if pls <= 0:
            raise MassFunctionError(
                f"focal element {element!r} has zero plausibility"
            )
        # repro: ignore[EXACT] -- log2 forces floats; measures only
        total -= float(value) * math.log2(pls)
    return total


def total_uncertainty(m: MassFunction) -> float:
    """``N(m) + D(m)``: aggregate uncertainty, in bits."""
    return nonspecificity(m) + discord(m)


def information_gain(before: MassFunction, after: MassFunction) -> float:
    """Reduction in total uncertainty from *before* to *after*, in bits.

    Positive when combination made the evidence more informative --
    the typical effect of pooling agreeing sources with Dempster's rule.
    """
    return total_uncertainty(before) - total_uncertainty(after)
