"""Mass functions (basic probability assignments).

A mass function ``m`` allocates belief to *subsets* of a frame of
discernment such that ``m(empty) = 0`` and the masses sum to one
(Section 2.1 of the paper).  Subsets with positive mass are *focal
elements*.  Crucially -- and unlike probability distributions -- mass
assigned to a non-singleton set is committed to the set as a whole, not
divided among its members, and the mass given to the entire frame
represents *nonbelief* (ignorance).

Arithmetic
----------
Masses may be :class:`fractions.Fraction` (exact) or :class:`float`.
Constructors accept ``int``, ``Fraction``, ``float``, decimal strings such
as ``"0.25"`` and rational strings such as ``"1/3"``.  Strings are always
converted to exact fractions; pass genuine ``float`` objects to work in
floating point.  Mixed inputs degrade gracefully: exactness is preserved
whenever every mass is exact.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Mapping
from fractions import Fraction
from numbers import Rational
from typing import Union

from repro.errors import MassFunctionError
from repro.ds.frame import OMEGA, FocalElement, FrameOfDiscernment, is_omega

Numeric = Union[Fraction, float]

#: Tolerance used to validate that float masses sum to one.
FLOAT_SUM_TOLERANCE = 1e-9  # repro: ignore[EXACT] -- the one float-tolerance knob


def coerce_mass_value(value: object) -> Numeric:
    """Convert a user-supplied mass value into ``Fraction`` or ``float``.

    * ``int`` and other rationals become :class:`Fraction` (exact),
    * ``float`` stays ``float``,
    * strings (``"0.25"``, ``"1/3"``) become exact :class:`Fraction`.
    """
    if isinstance(value, bool):
        raise MassFunctionError(f"mass value must be numeric, got {value!r}")
    if isinstance(value, Fraction):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, Rational):
        return Fraction(value)
    if isinstance(value, str):
        try:
            return Fraction(value)
        except (ValueError, ZeroDivisionError) as exc:
            raise MassFunctionError(f"cannot parse mass value {value!r}") from exc
    raise MassFunctionError(f"mass value must be numeric, got {value!r}")


def validate_mass_total(values) -> None:
    """Check that masses sum to one (exactly, or within float tolerance).

    The single total-mass check of the library: the ``MassFunction``
    constructor and the compiled evidence kernel
    (:mod:`repro.ds.kernel`) both validate through it, so the
    ``FLOAT_SUM_TOLERANCE`` policy lives in exactly one place.
    """
    values = list(values)
    if not values:
        raise MassFunctionError("a mass function needs at least one focal element")
    total = sum(values)
    if all(isinstance(value, Fraction) for value in values):
        if total != 1:
            raise MassFunctionError(f"masses must sum to 1, got {total}")
    else:
        if not math.isclose(
            float(total),  # repro: ignore[EXACT] -- validating the float branch
            1.0,  # repro: ignore[EXACT] -- float-branch target total
            rel_tol=FLOAT_SUM_TOLERANCE,
            abs_tol=FLOAT_SUM_TOLERANCE,
        ):
            raise MassFunctionError(
                f"masses must sum to 1, "
                f"got {float(total)!r}"  # repro: ignore[EXACT] -- error display
            )


def coerce_focal_element(element: object) -> FocalElement:
    """Normalize a user-supplied focal element.

    Accepts :data:`OMEGA`, any iterable of values (except strings), or a
    scalar, which is treated as a singleton set.  Strings are scalars:
    ``"ca"`` means the singleton ``{"ca"}``, never ``{"c", "a"}``.
    """
    if is_omega(element):
        return OMEGA
    if isinstance(element, frozenset):
        candidate = element
    elif isinstance(element, (str, bytes)):
        candidate = frozenset({element})
    elif isinstance(element, Iterable):
        candidate = frozenset(element)
    else:
        candidate = frozenset({element})
    if not candidate:
        raise MassFunctionError("the empty set cannot be a focal element")
    return candidate


def _focal_sort_key(element: FocalElement):
    """Deterministic ordering: concrete sets by (size, members), OMEGA last."""
    if is_omega(element):
        return (1, 0, ())
    return (0, len(element), tuple(sorted(map(repr, element))))


class MassFunction:
    """An immutable mass function over subsets of a frame.

    Parameters
    ----------
    masses:
        Mapping from focal elements to masses.  Keys may be scalars
        (treated as singletons), iterables of values, or :data:`OMEGA`.
        Zero-valued entries are dropped.
    frame:
        Optional enumerated :class:`FrameOfDiscernment`.  When given,
        focal elements are validated against it and a concrete set equal
        to the whole frame is canonicalized to :data:`OMEGA`.

    >>> m = MassFunction({"ca": "1/2", ("hu", "si"): "1/3", OMEGA: "1/6"})
    >>> m[{"ca"}]
    Fraction(1, 2)
    >>> m[OMEGA]
    Fraction(1, 6)
    """

    __slots__ = ("_masses", "_frame", "_compiled")

    def __init__(
        self,
        masses: Mapping,
        frame: FrameOfDiscernment | None = None,
    ):
        cleaned: dict[FocalElement, Numeric] = {}
        for raw_element, raw_value in masses.items():
            value = coerce_mass_value(raw_value)
            if value < 0:
                raise MassFunctionError(f"negative mass {value!r} for {raw_element!r}")
            if value == 0:
                continue
            element = coerce_focal_element(raw_element)
            if frame is not None:
                element = frame.canonicalize(element)
            if element in cleaned:
                cleaned[element] = cleaned[element] + value
            else:
                cleaned[element] = value
        _validate_total(cleaned)
        self._masses = cleaned
        self._frame = frame
        self._compiled = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def exact(
        cls, masses: Mapping, frame: FrameOfDiscernment | None = None
    ) -> "MassFunction":
        """Build a mass function converting every float via its repr.

        ``0.25`` becomes ``Fraction(1, 4)`` exactly; use this when decimal
        literals are meant as exact decimal fractions.
        """
        converted = {
            element: Fraction(str(value)) if isinstance(value, float) else value
            for element, value in masses.items()
        }
        return cls(converted, frame)

    @classmethod
    def from_counts(
        cls, counts: Mapping, frame: FrameOfDiscernment | None = None
    ) -> "MassFunction":
        """Build a mass function from unnormalized counts (e.g. votes).

        This is the paper's Section 1.2 derivation: a panel of reviewers
        casts votes for values (or sets of values, or abstains -- map
        abstentions to :data:`OMEGA`), and the mass of each focal element
        is its vote share.  Counts are exact, so six votes split 2/4
        produce masses 1/3 and 2/3 exactly.
        """
        total = 0
        converted: dict[object, Fraction] = {}
        for element, count in counts.items():
            value = coerce_mass_value(count)
            if isinstance(value, float):
                value = Fraction(str(value))
            if value < 0:
                raise MassFunctionError(f"negative count {count!r} for {element!r}")
            converted[element] = value
            total += value
        if total == 0:
            raise MassFunctionError("counts sum to zero; cannot normalize")
        return cls(
            {element: value / total for element, value in converted.items()}, frame
        )

    @classmethod
    def definite(
        cls, value: object, frame: FrameOfDiscernment | None = None
    ) -> "MassFunction":
        """The mass function fully committed to a single value."""
        return cls({coerce_focal_element(value): Fraction(1)}, frame)

    @classmethod
    def vacuous(cls, frame: FrameOfDiscernment | None = None) -> "MassFunction":
        """The totally ignorant mass function: all mass on the frame."""
        return cls({OMEGA: Fraction(1)}, frame)

    @classmethod
    def categorical(
        cls, values: Iterable, frame: FrameOfDiscernment | None = None
    ) -> "MassFunction":
        """All mass on one (possibly non-singleton) set of values."""
        return cls({coerce_focal_element(values): Fraction(1)}, frame)

    # -- the compiled kernel form (see repro.ds.kernel) --------------------

    @classmethod
    def _from_compiled(cls, compiled) -> "MassFunction":
        """Wrap a kernel :class:`~repro.ds.kernel.CompiledMass` lazily.

        The frozenset dict is only materialized on first access, so a
        chain of kernel combinations (the integration fold, the stream
        engine's per-entity state) never decodes intermediates.  The
        compiled values are already validated by the kernel operation
        that produced them.
        """
        self = object.__new__(cls)
        self._masses = None
        self._frame = compiled.interned.frame
        self._compiled = compiled
        return self

    @property
    def is_compiled(self) -> bool:
        """``True`` when the compiled kernel form is attached.

        Compilation happens lazily, on the first operation (combination,
        belief query, discounting) that runs while an enumerated frame
        is attached; mass functions over unenumerable domains are never
        compiled and always use the symbolic frozenset path.
        """
        return self._compiled is not None

    def compiled(self):
        """The kernel :class:`~repro.ds.kernel.CompiledMass`, compiling
        lazily; ``None`` when no enumerated frame is attached."""
        if self._compiled is None:
            if self._frame is None:
                return None
            from repro.ds.kernel import compile_mass_function

            self._compiled = compile_mass_function(self)
        return self._compiled

    def _mass_dict(self) -> dict:
        """The frozenset-keyed dict, decoded from the kernel on demand."""
        if self._masses is None:
            self._masses = self._compiled.to_mass_dict()
        return self._masses

    # -- basic accessors ---------------------------------------------------

    @property
    def frame(self) -> FrameOfDiscernment | None:
        """The enumerated frame, when one is attached."""
        return self._frame

    def focal_elements(self) -> tuple[FocalElement, ...]:
        """The focal elements in deterministic order (OMEGA last)."""
        return tuple(sorted(self._mass_dict(), key=_focal_sort_key))

    def items(self) -> Iterator[tuple[FocalElement, Numeric]]:
        """Iterate ``(focal element, mass)`` pairs in deterministic order."""
        masses = self._mass_dict()
        for element in self.focal_elements():
            yield element, masses[element]

    def mass(self, element: object) -> Numeric:
        """The mass of *element* (zero when it is not focal)."""
        key = coerce_focal_element(element)
        if self._frame is not None and not is_omega(key):
            key = self._frame.canonicalize(key)
        return self._mass_dict().get(key, Fraction(0))

    def __getitem__(self, element: object) -> Numeric:
        return self.mass(element)

    def __contains__(self, element: object) -> bool:
        return self.mass(element) != 0

    def __len__(self) -> int:
        return len(self._mass_dict())

    def __iter__(self) -> Iterator[FocalElement]:
        return iter(self.focal_elements())

    # -- structure predicates ----------------------------------------------

    def is_exact(self) -> bool:
        """``True`` when every mass is a :class:`Fraction`."""
        return all(isinstance(value, Fraction) for value in self._mass_dict().values())

    def is_vacuous(self) -> bool:
        """``True`` when all mass sits on the whole frame (ignorance)."""
        return set(self._mass_dict()) == {OMEGA}

    def is_definite(self) -> bool:
        """``True`` when all mass sits on one singleton value."""
        if len(self._mass_dict()) != 1:
            return False
        (element,) = self._mass_dict()
        return not is_omega(element) and len(element) == 1

    def definite_value(self):
        """The single certain value; raises unless :meth:`is_definite`."""
        if not self.is_definite():
            raise MassFunctionError(f"{self!r} is not a definite value")
        (element,) = self._mass_dict()
        (value,) = element
        return value

    def is_bayesian(self) -> bool:
        """``True`` when every focal element is a singleton (a probability
        distribution in disguise)."""
        return all(
            not is_omega(element) and len(element) == 1 for element in self._mass_dict()
        )

    def is_consonant(self) -> bool:
        """``True`` when the focal elements form a nested chain (possibility
        distribution)."""
        concrete = sorted(
            (element for element in self._mass_dict() if not is_omega(element)), key=len
        )
        for smaller, larger in zip(concrete, concrete[1:]):
            if not smaller <= larger:
                return False
        return True

    def core(self) -> FocalElement:
        """The union of all focal elements (OMEGA when ignorance is focal)."""
        if OMEGA in self._mass_dict():
            if self._frame is not None:
                return frozenset(self._frame.values)
            return OMEGA
        union: frozenset = frozenset()
        for element in self._mass_dict():
            union = union | element
        return union

    def ignorance(self) -> Numeric:
        """The mass assigned to the whole frame (nonbelief)."""
        return self._mass_dict().get(OMEGA, Fraction(0))

    # -- belief measures (delegating to repro.ds.belief) --------------------

    def bel(self, subset: object) -> Numeric:
        """Belief committed to *subset*; see :func:`repro.ds.belief.belief`."""
        from repro.ds.belief import belief

        return belief(self, subset)

    def pls(self, subset: object) -> Numeric:
        """Plausibility of *subset*; see
        :func:`repro.ds.belief.plausibility`."""
        from repro.ds.belief import plausibility

        return plausibility(self, subset)

    def combine(self, other: "MassFunction") -> "MassFunction":
        """Dempster's rule of combination; see
        :func:`repro.ds.combination.combine`."""
        from repro.ds.combination import combine

        return combine(self, other)

    # -- conversions ---------------------------------------------------------

    def to_float(self) -> "MassFunction":
        """A copy with every mass converted to ``float``."""
        return MassFunction(
            {
                # repro: ignore[EXACT] -- to_float() is the explicit exit
                element: float(value)
                for element, value in self._mass_dict().items()
            },
            self._frame,
        )

    def to_exact(self) -> "MassFunction":
        """A copy with every mass converted to an exact ``Fraction``.

        Float masses are converted via their shortest decimal repr, so a
        mass printed as ``0.25`` becomes exactly ``1/4``.
        """
        return MassFunction(
            {
                element: Fraction(str(value)) if isinstance(value, float) else value
                for element, value in self._mass_dict().items()
            },
            self._frame,
        )

    def with_frame(self, frame: FrameOfDiscernment | None) -> "MassFunction":
        """A copy attached to (and validated against) *frame*."""
        return MassFunction(dict(self._mass_dict()), frame)

    def map_elements(self, mapping) -> "MassFunction":
        """Translate focal elements through a value mapping.

        *mapping* is a callable taking one domain value and returning
        either a single value or an iterable of values (a one-to-many
        mapping produces larger focal elements -- this is exactly how
        domain translation introduces uncertainty during attribute
        preprocessing).  OMEGA maps to OMEGA.  Masses of elements that
        collide after mapping are summed.
        """
        translated: dict[FocalElement, Numeric] = {}
        for element, value in self._mass_dict().items():
            if is_omega(element):
                new_element: FocalElement = OMEGA
            else:
                members: set = set()
                for member in element:
                    image = mapping(member)
                    if isinstance(image, (str, bytes)) or not isinstance(
                        image, Iterable
                    ):
                        members.add(image)
                    else:
                        members.update(image)
                if not members:
                    raise MassFunctionError(
                        f"mapping erased focal element {sorted(map(repr, element))}"
                    )
                new_element = frozenset(members)
            if new_element in translated:
                translated[new_element] = translated[new_element] + value
            else:
                translated[new_element] = value
        return MassFunction(translated, None)

    # -- dunder plumbing -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MassFunction):
            return NotImplemented
        return self._resolved_masses() == other._resolved_masses()

    def _resolved_masses(self) -> dict:
        """Masses with OMEGA resolved to the concrete frame when known,
        so that equality is insensitive to OMEGA canonicalization."""
        if self._frame is None or OMEGA not in self._mass_dict():
            return self._mass_dict()
        resolved = dict(self._mass_dict())
        resolved[frozenset(self._frame.values)] = resolved.pop(OMEGA)
        return resolved

    def __hash__(self) -> int:
        return hash(frozenset(self._resolved_masses().items()))

    @classmethod
    def _from_state(
        cls, masses: dict, frame: FrameOfDiscernment | None
    ) -> "MassFunction":
        """Rebuild from pickled state without re-validating.

        The state came out of a live instance's :meth:`__reduce__`, so
        the masses are already coerced, canonicalized and total-checked
        -- repeating that work made unpickling ~5x slower than the
        pickle itself, which dominated the wire cost of shipping
        evidence batches to remote executor workers
        (:mod:`repro.exec.remote`).
        """
        self = object.__new__(cls)
        self._masses = masses
        self._frame = frame
        self._compiled = None
        return self

    def __reduce__(self):
        # Pickle/deepcopy through _from_state: the values were validated
        # at construction, and the compiled kernel form (interned frame,
        # masks) is a cache, re-derived on demand, that must not be
        # duplicated into the serialized state.
        return (MassFunction._from_state, (dict(self._mass_dict()), self._frame))

    def __repr__(self) -> str:
        from repro.ds.notation import format_evidence

        return f"MassFunction({format_evidence(self)})"


def _validate_total(masses: dict) -> None:
    """Check that masses sum to one (exactly, or within float tolerance)."""
    validate_mass_total(masses.values())
