"""Compact evidence kernel: interned frames and bitmask focal elements.

Every operation the paper defines -- Dempster's rule (Section 2.2),
belief/plausibility selection (Section 3.1.1), the extended union
(Section 3.2) -- bottoms out in pairwise intersections of focal
elements.  The default representation (``frozenset`` keys in a dict)
pays hash-set costs per pair; this module compiles a mass function over
an *enumerated* frame into a form where those set operations are single
machine-word instructions:

* :class:`InternedFrame` assigns each frame value a bit position, so a
  focal element becomes an ``int`` bitmask and the whole frame (OMEGA)
  the all-ones mask;
* :class:`CompiledMass` stores the mass function as parallel
  ``(mask, mass)`` tuples in the library's canonical focal order;
* combination, discounting, belief and plausibility then run as
  bitwise-AND/OR + popcount loops with no per-pair set allocation.

The kernel changes the *representation*, never the arithmetic: masses
stay :class:`fractions.Fraction` (exact) or ``float`` exactly as in
:mod:`repro.ds.mass`, every loop visits pairs in the same canonical
order as the frozenset path, and results are therefore identical --
bit-for-bit, including float round-off -- to the uncompiled path (the
property-based test-suite asserts this).  Coercion and validation are
*not* re-implemented here: compilation always starts from an already
validated :class:`~repro.ds.mass.MassFunction` (whose constructor owns
:func:`~repro.ds.mass.coerce_mass_value`), and result totals are
re-checked through the shared
:func:`~repro.ds.mass.validate_mass_total` (the one
``FLOAT_SUM_TOLERANCE`` check in the library).

Dispatch lives in :mod:`repro.ds.combination`, :mod:`repro.ds.belief`
and :mod:`repro.ds.discounting`: when both operands carry the same
enumerated frame the kernel path runs, otherwise the symbolic
frozenset path (which handles unenumerable domains and the symbolic
OMEGA) is used.  :func:`set_kernel_enabled` / :func:`kernel_disabled`
turn the kernel off globally -- used by the equivalence tests and the
``bench_kernel_combination`` benchmark -- and :data:`STATS` counts how
many combinations ran on each path (surfaced by ``repro repl``'s
``:stats`` and the streaming throughput report).
"""

from __future__ import annotations

import threading

from contextlib import contextmanager
from dataclasses import asdict, dataclass
from fractions import Fraction

from repro.counters import ThreadLocalCounters
from repro.ds.frame import OMEGA, FocalElement, FrameOfDiscernment, is_omega
from repro.ds.mass import Numeric, validate_mass_total
from repro.obs.registry import registry as _metrics_registry


# -- path selection and observability -----------------------------------------


@dataclass
class KernelStats:
    """A point-in-time snapshot of kernel vs fallback usage.

    ``kernel_combinations`` / ``fallback_combinations`` count pairwise
    combination operations (Dempster, conjunctive, disjunctive) by the
    path they executed on; ``compilations`` counts mass functions
    compiled to kernel form.  The live process-wide counters are
    :data:`STATS` (a :class:`LiveKernelStats`); this dataclass is the
    immutable value :meth:`LiveKernelStats.snapshot` and
    :meth:`LiveKernelStats.since` hand out.
    """

    kernel_combinations: int = 0
    fallback_combinations: int = 0
    compilations: int = 0

    def snapshot(self) -> "KernelStats":
        """An immutable-by-convention copy of the current counters."""
        return KernelStats(
            self.kernel_combinations,
            self.fallback_combinations,
            self.compilations,
        )

    def since(self, baseline: "KernelStats") -> "KernelStats":
        """The counter deltas accumulated after *baseline* was taken."""
        return KernelStats(
            self.kernel_combinations - baseline.kernel_combinations,
            self.fallback_combinations - baseline.fallback_combinations,
            self.compilations - baseline.compilations,
        )

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"kernel: {self.kernel_combinations} combination(s) on the "
            f"kernel path, {self.fallback_combinations} on the fallback "
            f"path, {self.compilations} compilation(s)"
        )


class LiveKernelStats:
    """The process-wide counters, safe to bump from executor workers.

    Combination and compilation happen *inside* partition tasks when a
    fold fans out (:mod:`repro.exec`), so the counters are bumped from
    pool threads concurrently.  Increments go through
    :class:`~repro.counters.ThreadLocalCounters` -- each worker bumps a
    private cell, reads aggregate -- so counts observed after a batch
    completes are exact, with no lock on the combination hot path.

    Reads mirror the :class:`KernelStats` attribute API;
    :meth:`snapshot`/:meth:`since` return :class:`KernelStats` values.
    """

    _FIELDS = ("kernel_combinations", "fallback_combinations", "compilations")

    def __init__(self):
        self._counters = ThreadLocalCounters(self._FIELDS)

    @property
    def kernel_combinations(self) -> int:
        return self._counters.total("kernel_combinations")

    @property
    def fallback_combinations(self) -> int:
        return self._counters.total("fallback_combinations")

    @property
    def compilations(self) -> int:
        return self._counters.total("compilations")

    def bump(self, field: str, amount: int = 1) -> None:
        """Add *amount* to *field* (lock-free; callable from any thread).

        The *amount* form lets the remote coordinator fold a worker
        daemon's shipped kernel-stats delta into the local counters in
        one call per field.
        """
        self._counters.bump(field, amount)

    def snapshot(self) -> KernelStats:
        """A consistent :class:`KernelStats` copy of the counters."""
        return KernelStats(**self._counters.totals())

    def since(self, baseline: KernelStats) -> KernelStats:
        """The counter deltas accumulated after *baseline* was taken."""
        return self.snapshot().since(baseline)

    def reset(self) -> None:
        """Zero the counters in place (the object identity is shared)."""
        self._counters.reset()

    def summary(self) -> str:
        """One-line human-readable digest."""
        return self.snapshot().summary()


#: The shared counter object; mutate via :meth:`LiveKernelStats.bump` /
#: :meth:`LiveKernelStats.reset`, never rebind (modules hold direct
#: references).
STATS = LiveKernelStats()

# Surface the kernel counters on the process-wide metrics registry
# (``kernel.*`` names) without changing any bump site: the registry
# reads through snapshot(), the STATS object keeps its attribute API.
_metrics_registry().register_source(
    "kernel", lambda: asdict(STATS.snapshot()), STATS.reset
)


def kernel_stats() -> KernelStats:
    """The process-wide :data:`STATS` object (live, not a copy)."""
    return STATS


def apply_kernel_delta(
    kernel_combinations: int = 0,
    fallback_combinations: int = 0,
    compilations: int = 0,
) -> None:
    """Fold a shipped counter delta into the process-wide :data:`STATS`.

    Remote worker daemons run combinations in another process, so their
    counter increments never reach this interpreter's globals; the
    coordinator receives a ``since()`` delta on the wire and restores it
    here.  This is the owning-layer entry point for that restore --
    other packages call this instead of bumping :data:`STATS` directly.
    """
    if kernel_combinations:
        STATS.bump("kernel_combinations", kernel_combinations)
    if fallback_combinations:
        STATS.bump("fallback_combinations", fallback_combinations)
    if compilations:
        STATS.bump("compilations", compilations)


_enabled = True


def kernel_enabled() -> bool:
    """``True`` when compiled evidence kernels may be used."""
    return _enabled


def set_kernel_enabled(flag: bool) -> bool:
    """Globally enable/disable the kernel path; returns the prior state."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


@contextmanager
def kernel_disabled():
    """Context manager forcing the frozenset fallback path.

    Used by the equivalence property tests and benchmarks to compute
    reference results on the symbolic path.
    """
    previous = set_kernel_enabled(False)
    try:
        yield
    finally:
        set_kernel_enabled(previous)


# -- interned frames ----------------------------------------------------------


class InternedFrame:
    """A frame of discernment with each value assigned a bit position.

    Bit positions follow the frame's deterministic iteration order
    (values sorted by ``repr``), so two independently interned copies of
    equal frames produce identical masks, and a mask's ascending bit
    positions enumerate its members in the same order the library's
    canonical focal-element sort uses.
    """

    __slots__ = ("_frame", "_bit_by_value", "_value_by_bit", "_omega")

    def __init__(self, frame: FrameOfDiscernment):
        self._frame = frame
        ordered = sorted(frame.values, key=repr)
        self._bit_by_value = {value: bit for bit, value in enumerate(ordered)}
        self._value_by_bit = ordered
        self._omega = (1 << len(ordered)) - 1

    @property
    def frame(self) -> FrameOfDiscernment:
        """The underlying enumerated frame."""
        return self._frame

    @property
    def omega_mask(self) -> int:
        """The all-ones mask standing for the whole frame (OMEGA)."""
        return self._omega

    def __len__(self) -> int:
        return len(self._value_by_bit)

    def mask_of(self, element: FocalElement) -> int:
        """Encode a focal element (or query subset) as a bitmask.

        :data:`OMEGA` and the full concrete value set both encode to
        :attr:`omega_mask` -- the same canonicalization
        :meth:`FrameOfDiscernment.canonicalize` performs.  Values
        outside the frame raise the frame's own :class:`DomainError`.
        """
        if is_omega(element):
            return self._omega
        mask = 0
        bits = self._bit_by_value
        try:
            for value in element:
                mask |= 1 << bits[value]
        except (KeyError, TypeError):
            self._frame.resolve(element)  # raises the canonical DomainError
            raise
        return mask

    def element_of(self, mask: int) -> FocalElement:
        """Decode a bitmask back to a focal element (all-ones -> OMEGA)."""
        if mask == self._omega:
            return OMEGA
        values = self._value_by_bit
        members = []
        while mask:
            low = mask & -mask
            members.append(values[low.bit_length() - 1])
            mask ^= low
        return frozenset(members)

    def sort_key(self, mask: int):
        """Canonical focal ordering key, matching the frozenset path.

        Ascending bit positions enumerate members in sorted-``repr``
        order, so ``(size, positions)`` is order-isomorphic to the
        ``(size, sorted reprs)`` key of
        :func:`repro.ds.mass._focal_sort_key`; OMEGA sorts last.
        """
        if mask == self._omega:
            return (1, 0, ())
        positions = []
        while mask:
            low = mask & -mask
            positions.append(low.bit_length())
            mask ^= low
        return (0, len(positions), tuple(positions))

    def __repr__(self) -> str:
        return (
            f"InternedFrame({self._frame.name!r}, "
            f"{len(self._value_by_bit)} bits)"
        )


#: Interned frames, keyed by (equal) frames so every relation sharing a
#: domain shares one bit assignment.  Bounded: interning is a cache, not
#: an identity requirement (bit order is a pure function of the value
#: set), so clearing it is always safe.  Writes are guarded by
#: :data:`_INTERN_LOCK`: compilation runs inside executor worker threads,
#: and the evict-then-insert sequence must not interleave.
_INTERNED: dict[FrameOfDiscernment, InternedFrame] = {}
_INTERN_LIMIT = 4096
_INTERN_LOCK = threading.Lock()


def intern_frame(frame: FrameOfDiscernment) -> InternedFrame:
    """The shared :class:`InternedFrame` for *frame* (interning cache)."""
    interned = _INTERNED.get(frame)
    if interned is None:
        with _INTERN_LOCK:
            interned = _INTERNED.get(frame)
            if interned is None:
                if len(_INTERNED) >= _INTERN_LIMIT:
                    _INTERNED.clear()
                interned = InternedFrame(frame)
                _INTERNED[frame] = interned
    return interned


# -- compiled mass functions --------------------------------------------------


class CompiledMass:
    """A mass function as parallel ``(mask, mass)`` tuples.

    ``masks`` and ``values`` are aligned tuples in the library's
    canonical focal order (size, then members, OMEGA last); values are
    the exact :class:`~fractions.Fraction`/``float`` masses of the
    source mass function, never re-coerced.
    """

    __slots__ = ("interned", "masks", "values")

    def __init__(self, interned: InternedFrame, masks: tuple, values: tuple):
        self.interned = interned
        self.masks = masks
        self.values = values

    def __len__(self) -> int:
        return len(self.masks)

    def is_exact(self) -> bool:
        """``True`` when every mass is a :class:`Fraction`."""
        return all(isinstance(value, Fraction) for value in self.values)

    def to_mass_dict(self) -> dict[FocalElement, Numeric]:
        """Decode back to a ``{focal element: mass}`` dict."""
        element_of = self.interned.element_of
        return {
            element_of(mask): value
            for mask, value in zip(self.masks, self.values)
        }

    # -- belief measures (subset-mask tests) -------------------------------

    def bel(self, query_mask: int) -> Numeric:
        """``Bel``: total mass on submasks of *query_mask*."""
        total: Numeric = Fraction(0)
        for mask, value in zip(self.masks, self.values):
            if mask & query_mask == mask:
                total = total + value
        return total

    def pls(self, query_mask: int) -> Numeric:
        """``Pls``: total mass on masks intersecting *query_mask*."""
        total: Numeric = Fraction(0)
        for mask, value in zip(self.masks, self.values):
            if mask & query_mask:
                total = total + value
        return total

    def bel_pls(self, query_mask: int) -> tuple[Numeric, Numeric]:
        """``(Bel, Pls)`` in a single pass (the selection support pair)."""
        sn: Numeric = Fraction(0)
        sp: Numeric = Fraction(0)
        for mask, value in zip(self.masks, self.values):
            meet = mask & query_mask
            if meet:
                sp = sp + value
                if meet == mask:
                    sn = sn + value
        return sn, sp

    def commonality(self, query_mask: int) -> Numeric:
        """``Q``: total mass on supermasks of *query_mask*."""
        total: Numeric = Fraction(0)
        for mask, value in zip(self.masks, self.values):
            if mask & query_mask == query_mask:
                total = total + value
        return total

    def __repr__(self) -> str:
        return (
            f"CompiledMass({self.interned.frame.name!r}, "
            f"{len(self.masks)} focal, "
            f"{'exact' if self.is_exact() else 'float'})"
        )


def compile_mass_function(m) -> CompiledMass:
    """Compile a frame-carrying :class:`MassFunction` to kernel form.

    Compilation starts from ``m.items()`` -- already coerced through
    :func:`~repro.ds.mass.coerce_mass_value` and validated by the
    ``MassFunction`` constructor, and iterated in canonical focal order
    -- so the kernel re-implements neither coercion nor validation.
    """
    frame = m.frame
    if frame is None:
        raise ValueError("cannot compile a mass function without a frame")
    interned = intern_frame(frame)
    mask_of = interned.mask_of
    masks = []
    values = []
    for element, value in m.items():
        masks.append(mask_of(element))
        values.append(value)
    STATS.bump("compilations")
    return CompiledMass(interned, tuple(masks), tuple(values))


def _canonical(interned: InternedFrame, pooled: dict) -> CompiledMass:
    """Order pooled ``{mask: mass}`` results canonically and validate.

    The canonical order makes chained kernel combinations visit pairs in
    exactly the order the frozenset path would, so even float results
    stay bit-identical across the two paths; validation reuses the
    shared :func:`~repro.ds.mass.validate_mass_total` check.
    """
    order = sorted(pooled, key=interned.sort_key)
    values = tuple(pooled[mask] for mask in order)
    validate_mass_total(values)
    return CompiledMass(interned, tuple(order), values)


# -- combination kernels ------------------------------------------------------


def conjunctive_compiled(
    a: CompiledMass, b: CompiledMass
) -> tuple[dict[int, Numeric], Numeric]:
    """Unnormalized conjunctive combination on bitmasks.

    Returns ``(pooled, kappa)`` where *pooled* maps non-empty
    intersection masks to pooled mass (in first-insertion order,
    mirroring the frozenset loop pair for pair) and *kappa* is the mass
    on the empty set.
    """
    pooled: dict[int, Numeric] = {}
    kappa: Numeric = Fraction(0)
    get = pooled.get
    b_pairs = tuple(zip(b.masks, b.values))
    for x_mask, x_value in zip(a.masks, a.values):
        for y_mask, y_value in b_pairs:
            product = x_value * y_value
            if product == 0:
                continue
            meet = x_mask & y_mask
            if meet:
                current = get(meet)
                pooled[meet] = (
                    product if current is None else current + product
                )
            else:
                kappa = kappa + product
    return pooled, kappa


def combine_compiled(
    a: CompiledMass, b: CompiledMass
) -> tuple[CompiledMass | None, Numeric]:
    """Dempster's rule on bitmasks: ``(normalized result, kappa)``.

    Returns ``(None, kappa)`` on total conflict (no surviving mass).
    """
    pooled, kappa = conjunctive_compiled(a, b)
    if not pooled:
        return None, kappa
    if kappa:
        remaining = 1 - kappa
        pooled = {mask: value / remaining for mask, value in pooled.items()}
    return _canonical(a.interned, pooled), kappa


def disjunctive_compiled(a: CompiledMass, b: CompiledMass) -> CompiledMass:
    """Disjunctive rule on bitmasks (union of focal elements)."""
    pooled: dict[int, Numeric] = {}
    get = pooled.get
    b_pairs = tuple(zip(b.masks, b.values))
    for x_mask, x_value in zip(a.masks, a.values):
        for y_mask, y_value in b_pairs:
            product = x_value * y_value
            if product == 0:
                continue
            join = x_mask | y_mask
            current = get(join)
            pooled[join] = product if current is None else current + product
    return _canonical(a.interned, pooled)


def discount_compiled(compiled: CompiledMass, reliability) -> CompiledMass:
    """Shafer discounting on a compiled mass (*reliability* < 1, coerced).

    Mirrors :func:`repro.ds.discounting.discount` operation for
    operation: focal masses scale by ``r`` (zeros dropped, as the
    ``MassFunction`` constructor would), the rest joins the ignorance on
    OMEGA.  Canonical order is preserved because OMEGA already sorts
    last.
    """
    omega = compiled.interned.omega_mask
    masks = []
    values = []
    ignorance: Numeric = 1 - reliability
    for mask, value in zip(compiled.masks, compiled.values):
        if mask == omega:
            ignorance = ignorance + reliability * value
        else:
            scaled = reliability * value
            if scaled == 0:
                continue
            masks.append(mask)
            values.append(scaled)
    masks.append(omega)
    values.append(ignorance)
    validate_mass_total(values)
    return CompiledMass(compiled.interned, tuple(masks), tuple(values))
