"""Belief, plausibility and related measures over mass functions.

Section 2.1 of the paper defines, for a mass function ``m`` and a subset
``A`` of the frame:

* ``Bel(A) = sum of m(X) for X a subset of A`` -- the minimum degree to
  which the evidence supports ``A``;
* ``Pls(A) = sum of m(X) for X intersecting A = 1 - Bel(complement A)``
  -- the degree to which the evidence fails to refute ``A``.

``Bel(A) <= Pls(A)`` always holds, and the gap ``Pls - Bel`` measures how
much the evidence is uncertain whether to support ``A`` or its complement.

Handling of the symbolic whole frame
------------------------------------
Focal element :data:`~repro.ds.frame.OMEGA` is a subset of ``A`` only when
``A`` is (or covers) the whole frame, which is decidable exactly when the
mass function carries an enumerated frame; without one, OMEGA is treated
as a *strict* superset of any concrete ``A`` -- it contributes to ``Pls``
but never to ``Bel``.  That matches the paper's use of OMEGA for
nonbelief.
"""

from __future__ import annotations

from fractions import Fraction

from repro.ds.frame import FocalElement, is_omega
from repro.ds.kernel import kernel_enabled
from repro.ds.mass import MassFunction, Numeric, coerce_focal_element


def _resolve_query(m: MassFunction, subset: object) -> FocalElement:
    """Normalize a queried subset, canonicalizing against the frame."""
    element = coerce_focal_element(subset)
    if m.frame is not None and not is_omega(element):
        element = m.frame.canonicalize(element)
    return element


def _compiled_query(m: MassFunction, subset: object):
    """``(compiled, query mask)`` when the kernel path applies, else
    ``None``.  Out-of-frame query values raise the same
    :class:`~repro.errors.DomainError` frame canonicalization would."""
    if not kernel_enabled() or m.frame is None:
        return None
    compiled = m.compiled()
    return compiled, compiled.interned.mask_of(coerce_focal_element(subset))


def belief(m: MassFunction, subset: object) -> Numeric:
    """``Bel(subset)``: total mass committed to subsets of *subset*.

    >>> from repro.ds import MassFunction, OMEGA
    >>> m = MassFunction({"ca": "1/2", ("hu", "si"): "1/3", OMEGA: "1/6"})
    >>> m_bel = belief(m, {"ca", "hu", "si"})
    >>> m_bel
    Fraction(5, 6)
    """
    kernel_query = _compiled_query(m, subset)
    if kernel_query is not None:
        compiled, query_mask = kernel_query
        return compiled.bel(query_mask)
    query = _resolve_query(m, subset)
    total: Numeric = Fraction(0)
    for element, value in m.items():
        if is_omega(element):
            contained = is_omega(query)
        elif is_omega(query):
            contained = True
        else:
            contained = element <= query
        if contained:
            total = total + value
    return total


def plausibility(m: MassFunction, subset: object) -> Numeric:
    """``Pls(subset)``: total mass not refuting *subset*.

    >>> from repro.ds import MassFunction, OMEGA
    >>> m = MassFunction({"ca": "1/2", ("hu", "si"): "1/3", OMEGA: "1/6"})
    >>> plausibility(m, {"ca", "hu", "si"})
    Fraction(1, 1)
    """
    kernel_query = _compiled_query(m, subset)
    if kernel_query is not None:
        compiled, query_mask = kernel_query
        return compiled.pls(query_mask)
    query = _resolve_query(m, subset)
    total: Numeric = Fraction(0)
    for element, value in m.items():
        if is_omega(element) or is_omega(query):
            intersects = True  # focal elements and queries are non-empty
        else:
            intersects = not element.isdisjoint(query)
        if intersects:
            total = total + value
    return total


def doubt(m: MassFunction, subset: object) -> Numeric:
    """``Dou(subset) = 1 - Pls(subset)``: belief in the complement."""
    return 1 - plausibility(m, subset)


def commonality(m: MassFunction, subset: object) -> Numeric:
    """``Q(subset)``: total mass on supersets of *subset*.

    The commonality function is the natural representation for Dempster's
    rule (combination multiplies commonalities); exposed for analysis and
    tests.
    """
    kernel_query = _compiled_query(m, subset)
    if kernel_query is not None:
        compiled, query_mask = kernel_query
        return compiled.commonality(query_mask)
    query = _resolve_query(m, subset)
    total: Numeric = Fraction(0)
    for element, value in m.items():
        if is_omega(element):
            covers = True
        elif is_omega(query):
            covers = False
        else:
            covers = query <= element
        if covers:
            total = total + value
    return total


def uncertainty_interval(m: MassFunction, subset: object) -> tuple[Numeric, Numeric]:
    """The pair ``(Bel(subset), Pls(subset))``.

    This is the support interval the paper's selection operation assigns
    to an ``is``-predicate (Section 3.1.1): ``sn = Bel``, ``sp = Pls``.
    On the kernel path both bounds come from one subset-mask pass.
    """
    kernel_query = _compiled_query(m, subset)
    if kernel_query is not None:
        compiled, query_mask = kernel_query
        return compiled.bel_pls(query_mask)
    return belief(m, subset), plausibility(m, subset)
