"""Shafer discounting of evidence sources.

Discounting weakens a mass function to account for the *reliability* of
its source: with reliability ``r`` (``0 <= r <= 1``), every focal element
keeps only ``r`` of its mass and the rest moves to the whole frame
(ignorance).  A fully reliable source (``r = 1``) is unchanged; a fully
unreliable one (``r = 0``) becomes vacuous.

The paper itself treats both component databases as fully reliable; the
integration layer exposes discounting so a deployment can down-weight a
source known to be stale or noisy before tuple merging, which is the
standard evidential-reasoning treatment of differential source quality.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import MassFunctionError
from repro.ds.frame import OMEGA, FocalElement, is_omega
from repro.ds.kernel import discount_compiled, kernel_enabled
from repro.ds.mass import MassFunction, Numeric, coerce_mass_value


def discount(m: MassFunction, reliability: object) -> MassFunction:
    """Discount *m* by the given source *reliability*.

    Runs on the compiled evidence kernel when *m* carries an enumerated
    frame (see :mod:`repro.ds.kernel`), so the streaming engine's
    per-source re-discounting keeps its states compiled.

    >>> from repro.ds import MassFunction
    >>> m = MassFunction({"ex": 1})
    >>> discounted = discount(m, "4/5")
    >>> discounted[{"ex"}], discounted[OMEGA]
    (Fraction(4, 5), Fraction(1, 5))
    """
    r = coerce_mass_value(reliability)
    if not 0 <= r <= 1:
        raise MassFunctionError(f"reliability must lie in [0, 1], got {r!r}")
    if r == 1:
        return m
    if kernel_enabled() and m.frame is not None:
        return MassFunction._from_compiled(discount_compiled(m.compiled(), r))
    discounted: dict[FocalElement, Numeric] = {}
    ignorance: Numeric = 1 - r
    for element, value in m.items():
        if is_omega(element):
            ignorance = ignorance + r * value
        else:
            discounted[element] = r * value
    discounted[OMEGA] = ignorance
    return MassFunction(discounted, m.frame)


def discount_all(
    masses: dict[str, MassFunction], reliabilities: dict[str, object]
) -> dict[str, MassFunction]:
    """Discount a keyed family of mass functions by per-source reliability.

    Sources without an entry in *reliabilities* are treated as fully
    reliable.  Returns a new dict; inputs are not mutated.
    """
    return {
        name: discount(m, reliabilities.get(name, Fraction(1)))
        for name, m in masses.items()
    }
