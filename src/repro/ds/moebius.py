"""Moebius inversion: reconstructing masses from belief values.

``Bel`` is the Moebius transform of ``m`` over the subset lattice; the
inversion recovers the mass function from belief values:

    m(A) = sum over B subset of A of (-1)^|A - B| * Bel(B)

This is how evidence can be *elicited*: a source that can only answer
"how strongly do you believe the value lies in S?" for each subset S
determines a unique mass function -- provided its answers are internally
consistent (totally monotone).  :func:`mass_from_belief` performs the
inversion and validates consistency (the recovered masses must be
non-negative and sum to one), raising :class:`MassFunctionError` for
incoherent belief assignments.

Exact arithmetic makes the round-trip ``mass -> belief -> mass`` an
identity, which the property-based tests verify.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from fractions import Fraction
from itertools import combinations

from repro.errors import MassFunctionError
from repro.ds.frame import FrameOfDiscernment
from repro.ds.mass import MassFunction, coerce_mass_value


def belief_table(m: MassFunction, frame: FrameOfDiscernment | None = None) -> dict:
    """``Bel(A)`` for every non-empty subset ``A`` of the frame.

    The frame defaults to the mass function's own; it must be small
    (the table is exponential in the frame size).
    """
    frame = frame or m.frame
    if frame is None:
        raise MassFunctionError("belief_table needs an enumerated frame")
    framed = m.with_frame(frame)
    return {
        subset: framed.bel(subset) for subset in frame.subsets(nonempty=True)
    }


def mass_from_belief(
    beliefs: Mapping, frame: FrameOfDiscernment | Iterable
) -> MassFunction:
    """Recover the unique mass function with the given belief values.

    Parameters
    ----------
    beliefs:
        Mapping from subsets (any iterables of frame values) to their
        belief.  Missing subsets default to belief 0; the whole frame
        must have belief 1 (or be omitted, in which case it is implied).
    frame:
        The frame of discernment (or its value collection).

    >>> frame = FrameOfDiscernment("f", ["a", "b"])
    >>> m = mass_from_belief({("a",): "1/2", ("a", "b"): 1}, frame)
    >>> m[{"a"}]
    Fraction(1, 2)
    >>> m[{"a", "b"}]
    Fraction(1, 2)
    """
    if not isinstance(frame, FrameOfDiscernment):
        frame = FrameOfDiscernment("frame", frame)
    table: dict[frozenset, Fraction | float] = {}
    for subset, value in beliefs.items():
        concrete = frame.resolve(subset if subset is not None else frame.values)
        table[concrete] = coerce_mass_value(value)
    full = frozenset(frame.values)
    table.setdefault(full, Fraction(1))
    if table[full] != 1:
        raise MassFunctionError(
            f"Bel(frame) must be 1, got {table[full]!r}"
        )

    def bel(subset: frozenset):
        return table.get(subset, Fraction(0))

    masses: dict[frozenset, Fraction | float] = {}
    values = sorted(frame.values, key=repr)
    for size in range(1, len(values) + 1):
        for combo in combinations(values, size):
            subset = frozenset(combo)
            total = Fraction(0)
            for sub_size in range(0, len(combo) + 1):
                for sub_combo in combinations(combo, sub_size):
                    sign = -1 if (len(combo) - sub_size) % 2 else 1
                    total = total + sign * bel(frozenset(sub_combo))
            if total < 0:
                raise MassFunctionError(
                    f"belief assignment is not totally monotone: recovered "
                    f"m({set(subset)!r}) = {total} < 0"
                )
            if total != 0:
                masses[subset] = total
    try:
        return MassFunction(masses, frame)
    except MassFunctionError as exc:
        raise MassFunctionError(
            f"belief assignment is inconsistent: {exc}"
        ) from exc
