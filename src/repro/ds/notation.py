"""The paper's textual notation for evidence sets.

Throughout the paper an evidence set is printed as a bracketed list of
focal elements with superscripted masses, e.g.::

    [si^0.5, hu^0.25, Ω^0.25]
    [d31^0.5, {d35,d36}^0.5]
    [cantonese^1/2, {hunan,sichuan}^1/3, Ω^1/6]

This module renders :class:`~repro.ds.mass.MassFunction` objects in that
notation and parses it back, so datasets, serialized relations and test
fixtures can be written exactly the way the paper prints them.

Grammar::

    evidence  := '[' item (',' item)* ']'
    item      := element '^' number
    element   := atom | '{' atom (',' atom)* '}' | omega
    omega     := 'Ω' | 'Θ' | 'omega' | 'theta' | '*'
    atom      := identifier | integer | decimal | quoted string
    number    := decimal ('0.25') | rational ('1/3') | integer

Numbers always parse to exact :class:`fractions.Fraction` values.
"""

from __future__ import annotations

import re
from fractions import Fraction

from repro.errors import NotationError
from repro.ds.frame import OMEGA, FocalElement, is_omega
from repro.ds.mass import MassFunction, Numeric

#: Spellings accepted for the whole-frame element.
OMEGA_SPELLINGS = frozenset({"Ω", "Θ", "omega", "theta", "*", "OMEGA", "THETA"})

_TOKEN_RE = re.compile(
    r"""
    \s*(
        \[ | \] | \{ | \} | , | \^
        | "(?:[^"\\]|\\.)*"          # double-quoted atom
        | '(?:[^'\\]|\\.)*'          # single-quoted atom
        | [^\[\]{},^\s]+             # bare atom / number
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise NotationError(
                f"cannot tokenize evidence set at offset {position}: {text[position:]!r}"
            )
        tokens.append(match.group(1))
        position = match.end()
    return tokens


def parse_atom(token: str):
    """Interpret a bare atom: int, exact decimal/rational, or string.

    Quoted atoms are always strings; bare atoms that look numeric become
    numbers so evidence over numeric domains (for theta-predicates)
    round-trips.
    """
    if len(token) >= 2 and token[0] == token[-1] and token[0] in {'"', "'"}:
        body = token[1:-1]
        return body.replace("\\" + token[0], token[0]).replace("\\\\", "\\")
    try:
        return int(token)
    except ValueError:
        pass
    if re.fullmatch(r"[+-]?\d+\.\d+", token) or re.fullmatch(r"[+-]?\d+/\d+", token):
        return Fraction(token)
    return token


def format_atom(value: object) -> str:
    """Render a domain value; strings needing quoting get double quotes.

    A string is quoted when it contains structural characters, spells
    OMEGA, or would re-parse as a *number* (so the string ``"1/3"``
    round-trips as a string, not as a Fraction).
    """
    if isinstance(value, str):
        if (
            re.fullmatch(r"[^\[\]{},^\s'\"]+", value)
            and value not in OMEGA_SPELLINGS
            and parse_atom(value) == value
        ):
            return value
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, Fraction):
        return str(value)
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def format_mass_value(value: Numeric, style: str = "auto", digits: int = 3) -> str:
    """Render a mass value.

    Styles:

    * ``"auto"`` -- fractions whose denominator divides a small power of
      ten print as short decimals (``1/4`` -> ``0.25``); other fractions
      print as rationals (``1/3``); floats print rounded to *digits*.
    * ``"fraction"`` -- always rational notation (floats converted).
    * ``"decimal"`` -- always decimals rounded to *digits* (this is how
      the paper prints Table 4: 19/29 appears as 0.655).
    """
    if style not in {"auto", "fraction", "decimal"}:
        raise NotationError(f"unknown mass style {style!r}")
    if style == "fraction":
        fraction = value if isinstance(value, Fraction) else Fraction(str(value))
        return str(fraction)
    if style == "decimal":
        # repro: ignore[EXACT] -- display formatting, not arithmetic
        return _trim_decimal(f"{float(value):.{digits}f}")
    # auto
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        if 10**digits % value.denominator == 0:
            # repro: ignore[EXACT] -- display formatting, not arithmetic
            return _trim_decimal(f"{float(value):.{digits}f}")
        return str(value)
    # repro: ignore[EXACT] -- display formatting, not arithmetic
    return _trim_decimal(f"{float(value):.{digits}f}")


def _trim_decimal(text: str) -> str:
    """Strip trailing zeros (keep at least one decimal digit)."""
    if "." not in text:
        return text
    trimmed = text.rstrip("0")
    if trimmed.endswith("."):
        trimmed += "0"
    return trimmed


def format_focal_element(element: FocalElement) -> str:
    """Render a focal element: ``si``, ``{d35,d36}`` or ``Ω``."""
    if is_omega(element):
        return "Ω"
    members = sorted(element, key=lambda v: (str(type(v).__name__), str(v)))
    if len(members) == 1:
        return format_atom(members[0])
    return "{" + ",".join(format_atom(member) for member in members) + "}"


def format_evidence(m: MassFunction, style: str = "auto", digits: int = 3) -> str:
    """Render a mass function in the paper's bracketed notation.

    >>> from repro.ds import MassFunction, OMEGA
    >>> format_evidence(MassFunction({"si": "1/2", "hu": "1/4", OMEGA: "1/4"}))
    '[hu^0.25, si^0.5, Ω^0.25]'
    """
    items = [
        f"{format_focal_element(element)}^{format_mass_value(value, style, digits)}"
        for element, value in m.items()
    ]
    return "[" + ", ".join(items) + "]"


class _Parser:
    """Recursive-descent parser for the evidence-set grammar."""

    def __init__(self, tokens: list[str]):
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> str | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise NotationError("unexpected end of evidence set")
        self._index += 1
        return token

    def _expect(self, expected: str) -> None:
        token = self._next()
        if token != expected:
            raise NotationError(f"expected {expected!r}, got {token!r}")

    def parse(self) -> dict:
        self._expect("[")
        masses: dict[FocalElement, Fraction] = {}
        if self._peek() == "]":
            raise NotationError("an evidence set needs at least one focal element")
        while True:
            element = self._parse_element()
            self._expect("^")
            value = self._parse_number()
            if element in masses:
                masses[element] += value
            else:
                masses[element] = value
            token = self._next()
            if token == "]":
                break
            if token != ",":
                raise NotationError(f"expected ',' or ']', got {token!r}")
        if self._peek() is not None:
            raise NotationError(f"trailing input after evidence set: {self._peek()!r}")
        return masses

    def _parse_element(self) -> FocalElement:
        token = self._next()
        if token in OMEGA_SPELLINGS:
            return OMEGA
        if token == "{":
            members = [parse_atom(self._next())]
            while True:
                token = self._next()
                if token == "}":
                    break
                if token != ",":
                    raise NotationError(f"expected ',' or '}}' in set, got {token!r}")
                members.append(parse_atom(self._next()))
            return frozenset(members)
        if token in {"[", "]", "}", ",", "^"}:
            raise NotationError(f"expected a focal element, got {token!r}")
        return frozenset({parse_atom(token)})

    def _parse_number(self) -> Fraction:
        token = self._next()
        try:
            return Fraction(token)
        except (ValueError, ZeroDivisionError) as exc:
            raise NotationError(f"cannot parse mass value {token!r}") from exc


def parse_evidence(text: str, frame=None) -> MassFunction:
    """Parse the paper's bracketed notation into a mass function.

    >>> m = parse_evidence("[si^0.5, hu^0.25, Ω^0.25]")
    >>> m[{"si"}]
    Fraction(1, 2)

    Masses parse to exact fractions; ``0.33`` therefore means exactly
    33/100 -- write ``1/3`` for a third.
    """
    masses = _Parser(_tokenize(text)).parse()
    return MassFunction(masses, frame)
