"""Probability transforms and decision rules over mass functions.

A mass function bounds, but does not pick, a probability distribution.
When a downstream consumer needs point probabilities (for ranking query
answers, or for the probabilistic baselines of Section 1.3), two standard
transforms are provided:

* the **pignistic transform** (Smets): each focal element's mass is split
  evenly among its members -- the expected-utility-safe choice;
* the **plausibility transform**: singleton plausibilities, renormalized.

Both need concrete focal elements; a symbolic OMEGA requires the mass
function to carry an enumerated frame so the frame's members are known.

Decision helpers (:func:`max_belief_decision` etc.) pick the best
singleton under each criterion, which the examples use to produce
definite integrated values on request.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import TransformError
from repro.ds.frame import is_omega
from repro.ds.mass import MassFunction, Numeric


def _concrete_members(m: MassFunction, element) -> frozenset:
    """Resolve a focal element to its concrete members, or fail."""
    if not is_omega(element):
        return element
    if m.frame is None:
        raise TransformError(
            "mass on OMEGA cannot be redistributed without an enumerated frame"
        )
    return frozenset(m.frame.values)


def pignistic(m: MassFunction) -> dict:
    """The pignistic probability ``BetP(v) = sum m(X)/|X| over X with v in X``.

    >>> from repro.ds import MassFunction
    >>> m = MassFunction({"ca": "1/2", ("hu", "si"): "1/2"})
    >>> betp = pignistic(m)
    >>> betp["ca"], betp["hu"]
    (Fraction(1, 2), Fraction(1, 4))
    """
    probabilities: dict = {}
    for element, value in m.items():
        members = _concrete_members(m, element)
        share = value / len(members)
        for member in members:
            probabilities[member] = probabilities.get(member, Fraction(0)) + share
    return probabilities


def plausibility_transform(m: MassFunction) -> dict:
    """Normalized singleton plausibilities ``Pl_P(v) = Pls({v}) / Z``."""
    values: set = set()
    for element, _ in m.items():
        values.update(_concrete_members(m, element))
    raw = {value: m.pls({value}) for value in sorted(values, key=repr)}
    total = sum(raw.values())
    if total == 0:
        raise TransformError("all singleton plausibilities are zero")
    return {value: pls / total for value, pls in raw.items()}


def _argmax(scores: dict):
    """The key with the maximal score; deterministic tie-break by repr."""
    best_value: Numeric | None = None
    best_key = None
    for key in sorted(scores, key=repr):
        if best_value is None or scores[key] > best_value:
            best_value = scores[key]
            best_key = key
    return best_key


def max_belief_decision(m: MassFunction):
    """The singleton with maximal belief (most strongly supported value)."""
    values: set = set()
    for element, _ in m.items():
        values.update(_concrete_members(m, element))
    return _argmax({value: m.bel({value}) for value in values})


def max_plausibility_decision(m: MassFunction):
    """The singleton with maximal plausibility (least refuted value)."""
    values: set = set()
    for element, _ in m.items():
        values.update(_concrete_members(m, element))
    return _argmax({value: m.pls({value}) for value in values})


def max_pignistic_decision(m: MassFunction):
    """The singleton with maximal pignistic probability."""
    return _argmax(pignistic(m))
