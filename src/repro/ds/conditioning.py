"""Dempster conditioning: revising evidence on a definite observation.

``m(. | B)`` is the special case of Dempster's rule where the second
body of evidence is categorical on ``B`` ("the value certainly lies in
B").  Every focal element is intersected with ``B`` and the masses are
renormalized; evidence entirely outside ``B`` becomes conflict.

The integration framework uses conditioning when a definite constraint
is learned after merging -- e.g. the tourist bureau confirms a
restaurant is Chinese, so its speciality evidence is conditioned on
{hu, si, ca} without rerunning the integration.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.ds.mass import MassFunction, coerce_focal_element
from repro.ds.combination import combine


def condition(m: MassFunction, constraint: Iterable) -> MassFunction:
    """``m(. | constraint)``: Dempster conditioning.

    >>> from repro.ds import MassFunction, OMEGA
    >>> m = MassFunction({"ca": "1/2", ("hu", "si"): "1/3", OMEGA: "1/6"})
    >>> conditioned = condition(m, {"hu", "si"})
    >>> conditioned[{"hu", "si"}]
    Fraction(1, 1)

    Raises
    ------
    TotalConflictError
        When the evidence gives the constraint zero plausibility.
    """
    element = coerce_focal_element(constraint)
    categorical = MassFunction({element: 1}, m.frame)
    return combine(m, categorical)
