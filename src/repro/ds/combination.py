"""Dempster's rule of combination and related evidence-pooling operators.

Given two mass functions ``m1`` and ``m2`` over the same frame, Dempster's
rule (Section 2.2 of the paper) forms, for every pair of focal elements,
the product mass ``m1(X) * m2(Y)`` on the intersection ``X and Y``.  Mass
landing on the empty set is the *conflict* ``kappa``; the remaining masses
are renormalized by ``1 - kappa``.  When ``kappa = 1`` the sources are in
total conflict and :class:`~repro.errors.TotalConflictError` is raised --
the paper's "some actions may be necessary to inform the data
administrators".

The rule is commutative and associative, so the order in which component
databases are merged does not matter; the property-based test-suite
verifies this mechanically.

Also provided:

* :func:`conjunctive` -- the unnormalized conjunctive rule (mass may stay
  on the empty set; used internally and by the transferable-belief
  extension),
* :func:`disjunctive` -- the disjunctive rule (union of focal elements),
  appropriate when at least one, but not necessarily both, sources are
  reliable (extension),
* :func:`conflict` / :func:`weight_of_conflict` -- diagnostics used by the
  integration layer's conflict reports,
* :func:`combine_with_conflict` -- the normalized rule returning the
  conflict mass instead of raising, the entry point the integration
  layers fold through.

Path dispatch
-------------
When both operands carry the same enumerated frame, combination runs on
the compiled evidence kernel (:mod:`repro.ds.kernel`): focal elements
become int bitmasks and the pairwise intersections bitwise-ANDs, with
the arithmetic (and hence the results, bit for bit) unchanged.  Mass
functions without a frame -- symbolic OMEGA over an unenumerable domain
-- fall back to the frozenset path transparently.  :data:`KERNEL_STATS`
counts combinations per path.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from fractions import Fraction

from repro.errors import MassFunctionError, TotalConflictError
from repro.ds.frame import OMEGA, FocalElement, FrameOfDiscernment, is_omega
from repro.ds.kernel import (
    STATS as KERNEL_STATS,
    combine_compiled,
    conjunctive_compiled,
    disjunctive_compiled,
    kernel_enabled,
)
from repro.ds.mass import MassFunction, Numeric


def intersect_focal(x: FocalElement, y: FocalElement) -> FocalElement | None:
    """Intersection of two focal elements; ``None`` encodes the empty set.

    :data:`OMEGA` behaves as the absorbing whole frame: ``OMEGA & y = y``.
    """
    if is_omega(x):
        return y if not is_omega(y) else OMEGA
    if is_omega(y):
        return x
    both = x & y
    return both if both else None


def union_focal(x: FocalElement, y: FocalElement) -> FocalElement:
    """Union of two focal elements (OMEGA absorbs everything)."""
    if is_omega(x) or is_omega(y):
        return OMEGA
    return x | y


def _merged_frame(
    m1: MassFunction, m2: MassFunction
) -> FrameOfDiscernment | None:
    """The common frame of two mass functions, validating agreement."""
    if m1.frame is not None and m2.frame is not None:
        if m1.frame != m2.frame:
            raise MassFunctionError(
                f"cannot combine evidence over different frames "
                f"{m1.frame.name!r} and {m2.frame.name!r}"
            )
        return m1.frame
    return m1.frame or m2.frame


def _kernel_pair(m1: MassFunction, m2: MassFunction):
    """The compiled operands when the kernel path applies, else ``None``.

    The kernel requires both operands to carry the (already validated
    equal) enumerated frame; symbolic mass functions stay on the
    frozenset path.
    """
    if not kernel_enabled():
        return None
    if m1.frame is None or m2.frame is None:
        return None
    return m1.compiled(), m2.compiled()


def _conjunctive_sets(
    m1: MassFunction, m2: MassFunction
) -> tuple[dict[FocalElement, Numeric], Numeric]:
    """The frozenset-path conjunctive loop (fallback and reference)."""
    pooled: dict[FocalElement, Numeric] = {}
    kappa: Numeric = Fraction(0)
    for x, mass_x in m1.items():
        for y, mass_y in m2.items():
            product = mass_x * mass_y
            if product == 0:
                continue
            meet = intersect_focal(x, y)
            if meet is None:
                kappa = kappa + product
            elif meet in pooled:
                pooled[meet] = pooled[meet] + product
            else:
                pooled[meet] = product
    return pooled, kappa


def conjunctive(
    m1: MassFunction, m2: MassFunction
) -> tuple[dict[FocalElement, Numeric], Numeric]:
    """Unnormalized conjunctive combination.

    Returns ``(masses, kappa)`` where *masses* maps non-empty intersections
    to their pooled mass and *kappa* is the mass that fell on the empty
    set (the conflict between the sources).
    """
    _merged_frame(m1, m2)  # validates frame agreement
    pair = _kernel_pair(m1, m2)
    if pair is not None:
        KERNEL_STATS.bump("kernel_combinations")
        pooled_masks, kappa = conjunctive_compiled(*pair)
        element_of = pair[0].interned.element_of
        return (
            {
                element_of(mask): value
                for mask, value in pooled_masks.items()
            },
            kappa,
        )
    KERNEL_STATS.bump("fallback_combinations")
    return _conjunctive_sets(m1, m2)


def conflict(m1: MassFunction, m2: MassFunction) -> Numeric:
    """The conflict ``kappa`` between two mass functions.

    ``kappa`` is the total product mass whose focal intersections are
    empty; ``kappa = 1`` means total conflict.
    """
    _, kappa = conjunctive(m1, m2)
    return kappa


def weight_of_conflict(m1: MassFunction, m2: MassFunction) -> float:
    """Shafer's weight of conflict ``-log(1 - kappa)`` (in nats).

    Grows from 0 (no conflict) to infinity (total conflict); additive
    over successive combinations, which makes it the right quantity to
    accumulate in integration conflict reports.
    """
    kappa = conflict(m1, m2)
    if kappa == 1:
        return math.inf
    # repro: ignore[EXACT] -- the weight of conflict is a float metric
    return -math.log(1.0 - float(kappa))


def combine_with_conflict(
    m1: MassFunction, m2: MassFunction
) -> tuple[MassFunction | None, Numeric]:
    """Dempster's rule returning ``(result, kappa)``; ``None`` on total
    conflict instead of raising.

    This is the fold step the integration layers (extended union, tuple
    merging, streaming) use: on the kernel path the returned mass
    function stays compiled, so a chain of combinations never decodes or
    re-interns intermediate states.
    """
    frame = _merged_frame(m1, m2)
    pair = _kernel_pair(m1, m2)
    if pair is not None:
        KERNEL_STATS.bump("kernel_combinations")
        compiled, kappa = combine_compiled(*pair)
        if compiled is None:
            return None, kappa
        return MassFunction._from_compiled(compiled), kappa
    KERNEL_STATS.bump("fallback_combinations")
    pooled, kappa = _conjunctive_sets(m1, m2)
    if not pooled:
        return None, kappa
    if kappa:
        remaining = 1 - kappa
        pooled = {element: value / remaining for element, value in pooled.items()}
    return MassFunction(pooled, frame), kappa


def combine(m1: MassFunction, m2: MassFunction) -> MassFunction:
    """Dempster's rule of combination (normalized), ``m1 (+) m2``.

    >>> from repro.ds import MassFunction, OMEGA
    >>> m1 = MassFunction({"ca": "1/2", ("hu", "si"): "1/3", OMEGA: "1/6"})
    >>> m2 = MassFunction({("ca", "hu"): "1/2", "hu": "1/4", OMEGA: "1/4"})
    >>> m12 = combine(m1, m2)
    >>> m12[{"ca"}], m12[{"hu"}], m12[OMEGA]
    (Fraction(3, 7), Fraction(1, 3), Fraction(1, 21))

    Raises
    ------
    TotalConflictError
        When no focal elements intersect (``kappa = 1``).
    """
    combined, _ = combine_with_conflict(m1, m2)
    if combined is None:
        raise TotalConflictError()
    return combined


def combine_all(masses: Iterable[MassFunction]) -> MassFunction:
    """Fold :func:`combine` over any number of mass functions.

    Dempster's rule is associative and commutative, so the fold order is
    immaterial; a left fold is used.  At least one mass function is
    required.
    """
    iterator = iter(masses)
    try:
        result = next(iterator)
    except StopIteration:
        raise MassFunctionError("combine_all requires at least one mass function")
    for m in iterator:
        result = combine(result, m)
    return result


def disjunctive(m1: MassFunction, m2: MassFunction) -> MassFunction:
    """Disjunctive rule of combination (union of focal elements).

    Appropriate when *at least one* source is reliable but we do not know
    which: the pooled mass of ``X union Y`` is ``m1(X) * m2(Y)``.  Never
    produces conflict, and never sharpens belief -- an extension beyond
    the paper, exposed for the baseline comparison benchmarks.
    """
    frame = _merged_frame(m1, m2)
    pair = _kernel_pair(m1, m2)
    if pair is not None:
        KERNEL_STATS.bump("kernel_combinations")
        return MassFunction._from_compiled(disjunctive_compiled(*pair))
    KERNEL_STATS.bump("fallback_combinations")
    pooled: dict[FocalElement, Numeric] = {}
    for x, mass_x in m1.items():
        for y, mass_y in m2.items():
            product = mass_x * mass_y
            if product == 0:
                continue
            join = union_focal(x, y)
            if join in pooled:
                pooled[join] = pooled[join] + product
            else:
                pooled[join] = product
    return MassFunction(pooled, frame)
