"""The paper's running example: two restaurant databases.

Section 1.2 introduces online databases DB_A (Minnesota Daily) and DB_B
(Star Tribune) holding survey information about Minneapolis/St. Paul
restaurants under the shared global schema of Figure 2:

* ``R`` (Restaurant): rname*, street, bldg_no, phone, yspeciality,
  ybest_dish, yrating
* ``M`` (Manager): mname*, phone, yposition
* ``RM`` (Managed-by): rname*, mname* -- an n:m relationship

(keys starred; ``y`` marks attributes that may hold uncertain values;
hyphens in the paper's attribute names are rendered as underscores).

The evidence sets of ``R_A``/``R_B`` come from panels of six food
reviewers voting on each restaurant's best dish and rating, and from
menu-item classification for the speciality (Section 1.2).  The paper
prints the resulting masses rounded (e.g. ``0.33``); this module keeps
the underlying *exact* vote fractions (``1/3``), which is what makes the
extended union of Table 4 come out at exactly ``1/7`` and ``6/7``
(printed 0.143 / 0.857 in the paper).

The ``M``/``RM`` contents are not given in the paper; the tuples here
are synthesized to exercise the "entity and relationship types integrate
uniformly" claim (see DESIGN.md, Substitutions).

All ``table_*`` constructors return fresh relations, so tests can mutate
nothing by construction.
"""

from __future__ import annotations

from fractions import Fraction

from repro.ds.frame import OMEGA
from repro.model.attribute import Attribute
from repro.model.domain import EnumeratedDomain, NumericDomain, TextDomain
from repro.model.etuple import ExtendedTuple
from repro.model.membership import TupleMembership
from repro.model.relation import ExtendedRelation
from repro.model.schema import RelationSchema

#: Speciality abbreviations used throughout the paper's tables.
SPECIALITIES = ("am", "hu", "si", "ca", "mu", "it", "ta")

#: Long names, for documentation and pretty printing.
SPECIALITY_NAMES = {
    "am": "american",
    "hu": "hunan",
    "si": "sichuan",
    "ca": "cantonese",
    "mu": "mughalai",
    "it": "italian",
    "ta": "tandoori",
}

#: Rating abbreviations: excellent, good, average.
RATINGS = ("ex", "gd", "avg")


def speciality_domain() -> EnumeratedDomain:
    """The speciality domain (Section 2.1's Theta_speciality)."""
    return EnumeratedDomain("speciality", SPECIALITIES)


def best_dish_domain() -> EnumeratedDomain:
    """The dish domain d1..d36 referenced by the tables."""
    return EnumeratedDomain("best_dish", [f"d{i}" for i in range(1, 37)])


def rating_domain() -> EnumeratedDomain:
    """The rating domain {ex, gd, avg}."""
    return EnumeratedDomain("rating", RATINGS)


def position_domain() -> EnumeratedDomain:
    """Manager position domain (synthesized, Fig. 2's yposition)."""
    return EnumeratedDomain("position", ["owner", "head_chef", "manager"])


def restaurant_schema(name: str = "R") -> RelationSchema:
    """The Restaurant relation schema from Figure 2."""
    return RelationSchema(
        name,
        [
            Attribute("rname", TextDomain("rname"), key=True),
            Attribute("street", TextDomain("street")),
            Attribute("bldg_no", NumericDomain("bldg_no", low=1, integral=True)),
            Attribute("phone", TextDomain("phone")),
            Attribute("speciality", speciality_domain(), uncertain=True),
            Attribute("best_dish", best_dish_domain(), uncertain=True),
            Attribute("rating", rating_domain(), uncertain=True),
        ],
    )


def manager_schema(name: str = "M") -> RelationSchema:
    """The Manager relation schema from Figure 2."""
    return RelationSchema(
        name,
        [
            Attribute("mname", TextDomain("mname"), key=True),
            Attribute("phone", TextDomain("phone")),
            Attribute("position", position_domain(), uncertain=True),
        ],
    )


def managed_by_schema(name: str = "RM") -> RelationSchema:
    """The Managed-by relationship schema from Figure 2 (n:m)."""
    return RelationSchema(
        name,
        [
            Attribute("rname", TextDomain("rname"), key=True),
            Attribute("mname", TextDomain("mname"), key=True),
        ],
    )


def _f(numerator: int, denominator: int = 1) -> Fraction:
    return Fraction(numerator, denominator)


def _row(schema, rname, street, bldg_no, phone, speciality, best_dish, rating, sn, sp):
    return ExtendedTuple(
        schema,
        {
            "rname": rname,
            "street": street,
            "bldg_no": bldg_no,
            "phone": phone,
            "speciality": speciality,
            "best_dish": best_dish,
            "rating": rating,
        },
        TupleMembership(sn, sp),
    )


def table_ra(name: str = "RA") -> ExtendedRelation:
    """Table 1 (upper half): relation R_A of database DB_A.

    Rating/best-dish evidence are the exact six-reviewer vote fractions
    behind the rounded masses the paper prints (garden's rating votes
    2/3/1 give masses 1/3, 1/2, 1/6, printed 0.33/0.5/0.17).
    """
    schema = restaurant_schema(name)
    rows = [
        _row(
            schema, "garden", "univ.ave.", 2011, "371-2155",
            {"si": _f(1, 2), "hu": _f(1, 4), OMEGA: _f(1, 4)},
            {"d31": _f(1, 2), ("d35", "d36"): _f(1, 2)},
            {"ex": _f(1, 3), "gd": _f(1, 2), "avg": _f(1, 6)},
            1, 1,
        ),
        _row(
            schema, "wok", "wash.ave.", 600, "382-4165",
            {"si": _f(1)},
            {"d6": _f(1, 3), "d7": _f(1, 3), "d25": _f(1, 3)},
            {"gd": _f(1, 4), "avg": _f(3, 4)},
            1, 1,
        ),
        _row(
            schema, "country", "plato.blvd", 12, "293-9111",
            {"am": _f(1)},
            {"d1": _f(1, 2), "d2": _f(1, 3), OMEGA: _f(1, 6)},
            {"ex": _f(1)},
            1, 1,
        ),
        _row(
            schema, "olive", "nic.ave.", 514, "338-0355",
            {"it": _f(1)},
            {"d1": _f(1)},
            {"gd": _f(1, 2), "avg": _f(1, 2)},
            1, 1,
        ),
        _row(
            schema, "mehl", "9th-street", 820, "333-4035",
            {"mu": _f(4, 5), "ta": _f(1, 5)},
            {"d24": _f(2, 5), "d31": _f(3, 5)},
            {"ex": _f(4, 5), "gd": _f(1, 5)},
            _f(1, 2), _f(1, 2),
        ),
        _row(
            schema, "ashiana", "univ.ave.", 353, "371-0824",
            {"mu": _f(9, 10), OMEGA: _f(1, 10)},
            {"d34": _f(4, 5), "d25": _f(1, 5)},
            {"ex": _f(1)},
            1, 1,
        ),
    ]
    return ExtendedRelation(schema, rows)


def table_rb(name: str = "RB") -> ExtendedRelation:
    """Table 1 (lower half): relation R_B of database DB_B."""
    schema = restaurant_schema(name)
    rows = [
        _row(
            schema, "garden", "univ.ave.", 2011, "371-2155",
            {"si": _f(1, 2), "hu": _f(3, 10), OMEGA: _f(1, 5)},
            {"d31": _f(7, 10), "d35": _f(3, 10)},
            {"ex": _f(1, 5), "gd": _f(4, 5)},
            1, 1,
        ),
        _row(
            schema, "wok", "wash.ave.", 600, "382-4165",
            {"ca": _f(1, 5), "si": _f(7, 10), OMEGA: _f(1, 10)},
            {"d6": _f(1, 2), "d7": _f(1, 4), "d25": _f(1, 4)},
            {"gd": _f(1)},
            1, 1,
        ),
        _row(
            schema, "country", "plato.blvd", 12, "293-9111",
            {"am": _f(1)},
            {"d1": _f(1, 5), "d2": _f(4, 5)},
            {"ex": _f(7, 10), "gd": _f(3, 10)},
            1, 1,
        ),
        _row(
            schema, "olive", "nic.ave.", 514, "338-0355",
            {"it": _f(1)},
            {"d1": _f(4, 5), "d2": _f(1, 5)},
            {"gd": _f(4, 5), "avg": _f(1, 5)},
            1, 1,
        ),
        _row(
            schema, "mehl", "9th-street", 820, "333-4035",
            {"mu": _f(1)},
            {"d24": _f(1, 10), "d31": _f(9, 10)},
            {"ex": _f(1)},
            _f(4, 5), 1,
        ),
    ]
    return ExtendedRelation(schema, rows)


# ---------------------------------------------------------------------------
# Expected results of the paper's worked tables (for verification)
# ---------------------------------------------------------------------------


def expected_table2(name: str = "RA") -> ExtendedRelation:
    """Table 2: select[sn>0, speciality is {si}](R_A).

    Attribute values are retained; memberships are revised by F_TM:
    garden (1,1)x(1/2,3/4) = (0.5, 0.75), wok (1,1)x(1,1) = (1,1).
    """
    schema = restaurant_schema(name)
    rows = [
        _row(
            schema, "garden", "univ.ave.", 2011, "371-2155",
            {"si": _f(1, 2), "hu": _f(1, 4), OMEGA: _f(1, 4)},
            {"d31": _f(1, 2), ("d35", "d36"): _f(1, 2)},
            {"ex": _f(1, 3), "gd": _f(1, 2), "avg": _f(1, 6)},
            _f(1, 2), _f(3, 4),
        ),
        _row(
            schema, "wok", "wash.ave.", 600, "382-4165",
            {"si": _f(1)},
            {"d6": _f(1, 3), "d7": _f(1, 3), "d25": _f(1, 3)},
            {"gd": _f(1, 4), "avg": _f(3, 4)},
            1, 1,
        ),
    ]
    return ExtendedRelation(schema, rows)


def expected_table3(name: str = "RA") -> ExtendedRelation:
    """Table 3: select[sn>0, (speciality is {mu}) and (rating is {ex})](R_A).

    mehl: support (4/5,4/5)x(4/5,4/5) = (16/25, 16/25); membership
    (1/2,1/2) x (16/25,16/25) = (8/25, 8/25) = (0.32, 0.32).
    ashiana: support (9/10,1)x(1,1); membership (1,1) -> (0.9, 1).
    """
    schema = restaurant_schema(name)
    rows = [
        _row(
            schema, "mehl", "9th-street", 820, "333-4035",
            {"mu": _f(4, 5), "ta": _f(1, 5)},
            {"d24": _f(2, 5), "d31": _f(3, 5)},
            {"ex": _f(4, 5), "gd": _f(1, 5)},
            _f(8, 25), _f(8, 25),
        ),
        _row(
            schema, "ashiana", "univ.ave.", 353, "371-0824",
            {"mu": _f(9, 10), OMEGA: _f(1, 10)},
            {"d34": _f(4, 5), "d25": _f(1, 5)},
            {"ex": _f(1)},
            _f(9, 10), 1,
        ),
    ]
    return ExtendedRelation(schema, rows)


def expected_table4(name: str = "RA_union_RB") -> ExtendedRelation:
    """Table 4: R_A union_(rname) R_B -- the integrated relation.

    Every evidence set is the exact Dempster combination; the paper's
    printed decimals are these fractions rounded to three digits
    (19/29 = 0.655..., 1/7 = 0.142857... printed 0.143, etc.).
    """
    schema = restaurant_schema(name)
    rows = [
        _row(
            schema, "garden", "univ.ave.", 2011, "371-2155",
            {"si": _f(19, 29), "hu": _f(8, 29), OMEGA: _f(2, 29)},
            {"d31": _f(7, 10), "d35": _f(3, 10)},
            {"ex": _f(1, 7), "gd": _f(6, 7)},
            1, 1,
        ),
        _row(
            schema, "wok", "wash.ave.", 600, "382-4165",
            {"si": _f(1)},
            {"d6": _f(1, 2), "d7": _f(1, 4), "d25": _f(1, 4)},
            {"gd": _f(1)},
            1, 1,
        ),
        _row(
            schema, "country", "plato.blvd", 12, "293-9111",
            {"am": _f(1)},
            {"d1": _f(1, 4), "d2": _f(3, 4)},
            {"ex": _f(1)},
            1, 1,
        ),
        _row(
            schema, "olive", "nic.ave.", 514, "338-0355",
            {"it": _f(1)},
            {"d1": _f(1)},
            {"gd": _f(4, 5), "avg": _f(1, 5)},
            1, 1,
        ),
        _row(
            schema, "mehl", "9th-street", 820, "333-4035",
            {"mu": _f(1)},
            {"d24": _f(2, 29), "d31": _f(27, 29)},
            {"ex": _f(1)},
            _f(5, 6), _f(5, 6),
        ),
        _row(
            schema, "ashiana", "univ.ave.", 353, "371-0824",
            {"mu": _f(9, 10), OMEGA: _f(1, 10)},
            {"d34": _f(4, 5), "d25": _f(1, 5)},
            {"ex": _f(1)},
            1, 1,
        ),
    ]
    return ExtendedRelation(schema, rows)


def expected_table5(name: str = "RA") -> ExtendedRelation:
    """Table 5: project[rname, phone, speciality, rating, (sn,sp)](R_A)."""
    schema = RelationSchema(
        name,
        [
            Attribute("rname", TextDomain("rname"), key=True),
            Attribute("phone", TextDomain("phone")),
            Attribute("speciality", speciality_domain(), uncertain=True),
            Attribute("rating", rating_domain(), uncertain=True),
        ],
    )

    def row(rname, phone, speciality, rating, sn, sp):
        return ExtendedTuple(
            schema,
            {
                "rname": rname,
                "phone": phone,
                "speciality": speciality,
                "rating": rating,
            },
            TupleMembership(sn, sp),
        )

    rows = [
        row("garden", "371-2155",
            {"si": _f(1, 2), "hu": _f(1, 4), OMEGA: _f(1, 4)},
            {"ex": _f(1, 3), "gd": _f(1, 2), "avg": _f(1, 6)}, 1, 1),
        row("wok", "382-4165", {"si": _f(1)},
            {"gd": _f(1, 4), "avg": _f(3, 4)}, 1, 1),
        row("country", "293-9111", {"am": _f(1)}, {"ex": _f(1)}, 1, 1),
        row("olive", "338-0355", {"it": _f(1)},
            {"gd": _f(1, 2), "avg": _f(1, 2)}, 1, 1),
        row("mehl", "333-4035", {"mu": _f(4, 5), "ta": _f(1, 5)},
            {"ex": _f(4, 5), "gd": _f(1, 5)}, _f(1, 2), _f(1, 2)),
        row("ashiana", "371-0824", {"mu": _f(9, 10), OMEGA: _f(1, 10)},
            {"ex": _f(1)}, 1, 1),
    ]
    return ExtendedRelation(schema, rows)


# ---------------------------------------------------------------------------
# Synthesized Manager / Managed-by relations (Figure 2; contents not in paper)
# ---------------------------------------------------------------------------


def _manager_row(schema, mname, phone, position, sn=1, sp=1):
    return ExtendedTuple(
        schema,
        {"mname": mname, "phone": phone, "position": position},
        TupleMembership(sn, sp),
    )


def table_m_a(name: str = "M_A") -> ExtendedRelation:
    """Synthesized Manager relation of DB_A."""
    schema = manager_schema(name)
    rows = [
        _manager_row(schema, "chen", "371-0001",
                     {"owner": _f(3, 5), "head_chef": _f(2, 5)}),
        _manager_row(schema, "lee", "382-0002", {"manager": _f(1)}),
        _manager_row(schema, "patel", "333-0003",
                     {"owner": _f(1, 2), OMEGA: _f(1, 2)}),
        _manager_row(schema, "olsen", "293-0004", {"owner": _f(1)},
                     sn=_f(7, 10), sp=1),
    ]
    return ExtendedRelation(schema, rows)


def table_m_b(name: str = "M_B") -> ExtendedRelation:
    """Synthesized Manager relation of DB_B."""
    schema = manager_schema(name)
    rows = [
        _manager_row(schema, "chen", "371-0001",
                     {"owner": _f(4, 5), OMEGA: _f(1, 5)}),
        _manager_row(schema, "lee", "382-0002",
                     {"manager": _f(7, 10), "head_chef": _f(3, 10)}),
        _manager_row(schema, "rossi", "338-0005", {"head_chef": _f(1)}),
    ]
    return ExtendedRelation(schema, rows)


def _rm_row(schema, rname, mname, sn=1, sp=1):
    return ExtendedTuple(
        schema, {"rname": rname, "mname": mname}, TupleMembership(sn, sp)
    )


def table_rm_a(name: str = "RM_A") -> ExtendedRelation:
    """Synthesized Managed-by relationship of DB_A (n:m)."""
    schema = managed_by_schema(name)
    rows = [
        _rm_row(schema, "wok", "chen"),
        _rm_row(schema, "garden", "chen", sn=_f(4, 5), sp=1),
        _rm_row(schema, "garden", "lee"),
        _rm_row(schema, "mehl", "patel"),
        _rm_row(schema, "ashiana", "patel"),
        _rm_row(schema, "country", "olsen"),
    ]
    return ExtendedRelation(schema, rows)


def table_rm_b(name: str = "RM_B") -> ExtendedRelation:
    """Synthesized Managed-by relationship of DB_B (n:m)."""
    schema = managed_by_schema(name)
    rows = [
        _rm_row(schema, "wok", "chen"),
        _rm_row(schema, "garden", "lee", sn=_f(9, 10), sp=1),
        _rm_row(schema, "olive", "rossi"),
        _rm_row(schema, "mehl", "patel", sn=_f(3, 5), sp=_f(4, 5)),
    ]
    return ExtendedRelation(schema, rows)
