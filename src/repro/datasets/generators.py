"""Synthetic workload generation for scaling and ablation benchmarks.

The paper evaluates on a six-restaurant example; the scaling benchmarks
need arbitrarily large pairs of union-compatible extended relations with
controllable uncertainty structure.  :class:`SyntheticConfig` exposes the
knobs that matter to the algebra's cost and behaviour:

* ``n_tuples`` / ``overlap`` -- relation sizes and the fraction of keys
  present in both sources (matched tuples are what the union combines);
* ``domain_size`` / ``max_focal`` / ``max_focal_size`` -- evidence-set
  shape: Dempster's rule is quadratic in the number of focal elements;
* ``ignorance`` -- probability that an evidence set reserves mass for
  OMEGA (nonbelief);
* ``conflict`` -- how divergent the second source's evidence is from the
  first's for matched tuples: 0 reuses the same focal structure, 1 draws
  completely independent evidence (raising the chance of high kappa);
* ``exact`` -- Fraction (exact) versus float masses, for the arithmetic
  ablation.

Generation is deterministic in ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from fractions import Fraction

from repro.errors import OperationError
from repro.ds.frame import OMEGA
from repro.model.attribute import Attribute
from repro.model.domain import EnumeratedDomain, NumericDomain, TextDomain
from repro.model.etuple import ExtendedTuple
from repro.model.evidence import EvidenceSet
from repro.model.membership import TupleMembership
from repro.model.relation import ExtendedRelation
from repro.model.schema import RelationSchema


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the synthetic workload generator."""

    n_tuples: int = 100
    overlap: float = 0.5
    domain_size: int = 12
    max_focal: int = 3
    max_focal_size: int = 2
    ignorance: float = 0.3
    conflict: float = 0.3
    uncertain_membership: float = 0.2
    exact: bool = True
    seed: int = 0

    def validate(self) -> "SyntheticConfig":
        """Raise :class:`OperationError` on out-of-range parameters."""
        if self.n_tuples < 0:
            raise OperationError(f"n_tuples must be >= 0, got {self.n_tuples}")
        for field_name in ("overlap", "ignorance", "conflict", "uncertain_membership"):
            value = getattr(self, field_name)
            if not 0 <= value <= 1:
                raise OperationError(f"{field_name} must lie in [0,1], got {value}")
        if self.domain_size < 1:
            raise OperationError(f"domain_size must be >= 1, got {self.domain_size}")
        if not 1 <= self.max_focal_size <= self.domain_size:
            raise OperationError(
                "max_focal_size must lie in [1, domain_size], got "
                f"{self.max_focal_size}"
            )
        if self.max_focal < 1:
            raise OperationError(f"max_focal must be >= 1, got {self.max_focal}")
        return self


def synthetic_schema(config: SyntheticConfig, name: str = "S") -> RelationSchema:
    """The generated schema: one key, two uncertain and one certain
    attribute (category over an enumerated domain, score over small
    integers so theta-predicates apply, label as certain text)."""
    categories = [f"c{i}" for i in range(config.domain_size)]
    scores = list(range(config.domain_size))
    return RelationSchema(
        name,
        [
            Attribute("id", NumericDomain("id", low=0, integral=True), key=True),
            Attribute(
                "category",
                EnumeratedDomain("category", categories),
                uncertain=True,
            ),
            Attribute(
                "score", EnumeratedDomain("score", scores), uncertain=True
            ),
            Attribute("label", TextDomain("label")),
        ],
    )


def _random_weights(rng: random.Random, count: int, exact: bool):
    """Normalized random weights (small exact fractions or floats)."""
    raw = [rng.randint(1, 9) for _ in range(count)]
    total = sum(raw)
    if exact:
        return [Fraction(value, total) for value in raw]
    return [value / total for value in raw]


def _random_evidence(
    rng: random.Random,
    domain: EnumeratedDomain,
    config: SyntheticConfig,
) -> EvidenceSet:
    """A random evidence set over *domain* honoring the config's shape."""
    values = sorted(domain.frame().values, key=repr)
    n_focal = rng.randint(1, config.max_focal)
    use_omega = rng.random() < config.ignorance
    elements: list = []
    seen: set = set()
    while len(elements) < n_focal:
        size = rng.randint(1, config.max_focal_size)
        element = frozenset(rng.sample(values, min(size, len(values))))
        if element not in seen:
            seen.add(element)
            elements.append(element)
    if use_omega:
        elements.append(OMEGA)
    weights = _random_weights(rng, len(elements), config.exact)
    return EvidenceSet(dict(zip(elements, weights)), domain)


def _perturbed_evidence(
    rng: random.Random,
    base: EvidenceSet,
    domain: EnumeratedDomain,
    config: SyntheticConfig,
) -> EvidenceSet:
    """Second-source evidence: same focal structure, fresh weights.

    With probability ``config.conflict`` the evidence is drawn
    independently instead, which is what produces non-trivial Dempster
    conflict in the matched tuples.
    """
    if rng.random() < config.conflict:
        return _random_evidence(rng, domain, config)
    elements = list(base.focal_elements())
    weights = _random_weights(rng, len(elements), config.exact)
    return EvidenceSet(dict(zip(elements, weights)), domain)


def _random_membership(rng: random.Random, config: SyntheticConfig) -> TupleMembership:
    """Mostly-certain memberships with occasional partial support."""
    if rng.random() >= config.uncertain_membership:
        return TupleMembership.certain()
    if config.exact:
        sn = Fraction(rng.randint(1, 9), 10)
        sp = sn + Fraction(rng.randint(0, 10 - sn.numerator), 10)
    else:
        sn = rng.randint(1, 9) / 10
        sp = min(1.0, sn + rng.randint(0, 9) / 10)
    return TupleMembership(sn, min(sp, 1))


def synthetic_relation(
    config: SyntheticConfig, name: str = "S", key_start: int = 0
) -> ExtendedRelation:
    """One synthetic relation with keys ``key_start .. key_start+n-1``."""
    config.validate()
    rng = random.Random(f"{config.seed}/{name}/{key_start}")
    schema = synthetic_schema(config, name)
    category = schema.attribute("category").domain
    score = schema.attribute("score").domain
    rows = []
    for index in range(config.n_tuples):
        key = key_start + index
        rows.append(
            ExtendedTuple(
                schema,
                {
                    "id": key,
                    "category": _random_evidence(rng, category, config),
                    "score": _random_evidence(rng, score, config),
                    "label": f"item-{key}",
                },
                _random_membership(rng, config),
            )
        )
    return ExtendedRelation(schema, rows)


def synthetic_pair(
    config: SyntheticConfig,
    left_name: str = "L",
    right_name: str = "R",
) -> tuple[ExtendedRelation, ExtendedRelation]:
    """Two union-compatible relations with the configured key overlap.

    The left relation holds keys ``0..n-1``.  The right relation holds
    ``round(overlap * n)`` of those keys (with second-source evidence
    derived from the left's, diverging per ``config.conflict``) plus
    fresh keys to reach ``n`` tuples.

    >>> left, right = synthetic_pair(SyntheticConfig(n_tuples=10, seed=1))
    >>> len(left), len(right)
    (10, 10)
    """
    config.validate()
    left = synthetic_relation(config, left_name, key_start=0)
    rng = random.Random(f"{config.seed}/pair")
    schema = synthetic_schema(config, right_name)
    category = schema.attribute("category").domain
    score = schema.attribute("score").domain
    n_shared = round(config.overlap * config.n_tuples)
    shared_keys = sorted(
        rng.sample(range(config.n_tuples), n_shared)
    )
    rows = []
    for key in shared_keys:
        base = left.get((key,))
        rows.append(
            ExtendedTuple(
                schema,
                {
                    "id": key,
                    "category": _perturbed_evidence(
                        rng, base.evidence("category"), category, config
                    ),
                    "score": _perturbed_evidence(
                        rng, base.evidence("score"), score, config
                    ),
                    "label": base.value("label").definite_value(),
                },
                _random_membership(rng, config),
            )
        )
    for index in range(config.n_tuples - n_shared):
        key = config.n_tuples + index
        rows.append(
            ExtendedTuple(
                schema,
                {
                    "id": key,
                    "category": _random_evidence(rng, category, config),
                    "score": _random_evidence(rng, score, config),
                    "label": f"item-{key}",
                },
                _random_membership(rng, config),
            )
        )
    right = ExtendedRelation(schema, rows)
    return left, right


def scaled(config: SyntheticConfig, **overrides) -> SyntheticConfig:
    """A copy of *config* with fields replaced (sweep helper)."""
    return replace(config, **overrides).validate()
