"""Datasets: the paper's running example and synthetic workload generators.

:mod:`repro.datasets.restaurants` encodes the Minneapolis/St. Paul
restaurant databases of Section 1.2 (Tables R_A and R_B) exactly, along
with the expected results of Tables 2-5 for verification, and synthesized
Manager / Managed-by relations matching the Figure 2 global schema.

:mod:`repro.datasets.generators` produces parameterized synthetic pairs
of extended relations for scaling and ablation benchmarks.
"""

from repro.datasets.restaurants import (
    best_dish_domain,
    expected_table2,
    expected_table3,
    expected_table4,
    expected_table5,
    rating_domain,
    restaurant_schema,
    speciality_domain,
    table_m_a,
    table_m_b,
    table_ra,
    table_rb,
    table_rm_a,
    table_rm_b,
)
from repro.datasets.generators import SyntheticConfig, synthetic_pair, synthetic_relation
from repro.datasets.employees import (
    employee_schema,
    payroll_method_mix,
    table_directory,
    table_payroll,
)

__all__ = [
    "restaurant_schema",
    "speciality_domain",
    "best_dish_domain",
    "rating_domain",
    "table_ra",
    "table_rb",
    "table_m_a",
    "table_m_b",
    "table_rm_a",
    "table_rm_b",
    "expected_table2",
    "expected_table3",
    "expected_table4",
    "expected_table5",
    "SyntheticConfig",
    "synthetic_pair",
    "synthetic_relation",
    "employee_schema",
    "table_payroll",
    "table_directory",
    "payroll_method_mix",
]
