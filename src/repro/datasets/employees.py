"""A second domain: employee databases (the Dayal motivation).

Section 1.3 recalls Dayal's running example -- two employee relations
whose *salary* values disagree, resolved by an aggregate (average).  The
paper's point is that aggregates and evidential combination are
*separate classes of attribute integration methods which can co-exist in
the integration framework*.  This dataset makes that concrete:

* ``salary`` -- definite but conflicting numbers: an aggregate method's
  territory;
* ``department`` -- evidence from org charts that disagree on who moved
  where (one-to-many placements produce set-valued focal elements);
* ``level`` -- review-panel evidence over a seniority scale, a natural
  theta-predicate target.

Used by the integration tests/benchmarks to exercise per-attribute
method mixes (``{"salary": "average", "department": "evidential", ...}``)
on something other than restaurants.
"""

from __future__ import annotations

from fractions import Fraction

from repro.ds.frame import OMEGA
from repro.model.attribute import Attribute
from repro.model.domain import EnumeratedDomain, NumericDomain, TextDomain
from repro.model.etuple import ExtendedTuple
from repro.model.membership import TupleMembership
from repro.model.relation import ExtendedRelation
from repro.model.schema import RelationSchema

#: Departments appearing in the org charts.
DEPARTMENTS = ("eng", "sales", "hr", "ops")

#: Seniority levels (ordered; theta-predicates apply).
LEVELS = (1, 2, 3, 4, 5)


def department_domain() -> EnumeratedDomain:
    """The department domain."""
    return EnumeratedDomain("department", DEPARTMENTS)


def level_domain() -> EnumeratedDomain:
    """The seniority-level domain."""
    return EnumeratedDomain("level", LEVELS)


def employee_schema(name: str = "E") -> RelationSchema:
    """Employee relation: eid*, name, salary, ydepartment, ylevel."""
    return RelationSchema(
        name,
        [
            Attribute("eid", TextDomain("eid"), key=True),
            Attribute("name", TextDomain("name")),
            Attribute("salary", NumericDomain("salary", low=0)),
            Attribute("department", department_domain(), uncertain=True),
            Attribute("level", level_domain(), uncertain=True),
        ],
    )


def _row(schema, eid, name, salary, department, level, sn=1, sp=1):
    return ExtendedTuple(
        schema,
        {
            "eid": eid,
            "name": name,
            "salary": salary,
            "department": department,
            "level": level,
        },
        TupleMembership(sn, sp),
    )


def table_payroll(name: str = "payroll") -> ExtendedRelation:
    """The payroll system's employee relation."""
    schema = employee_schema(name)
    f = Fraction
    rows = [
        _row(
            schema, "e01", "ana", 98000,
            {"eng": f(1)},
            {4: f(3, 5), 5: f(2, 5)},
        ),
        _row(
            schema, "e02", "ben", 74000,
            # The org chart predates a reorg: ben is in eng or ops.
            {("eng", "ops"): f(7, 10), OMEGA: f(3, 10)},
            {3: f(1)},
        ),
        _row(
            schema, "e03", "carla", 121000,
            {"sales": f(4, 5), "hr": f(1, 5)},
            {5: f(4, 5), 4: f(1, 5)},
        ),
        _row(
            schema, "e04", "dmitri", 67000,
            {"ops": f(1)},
            {2: f(1, 2), 3: f(1, 2)},
            sn=f(9, 10), sp=1,  # contractor conversion still pending
        ),
    ]
    return ExtendedRelation(schema, rows)


def table_directory(name: str = "directory") -> ExtendedRelation:
    """The staff directory's employee relation (independently kept)."""
    schema = employee_schema(name)
    f = Fraction
    rows = [
        _row(
            schema, "e01", "ana", 102000,       # salary disagrees with payroll
            {"eng": f(9, 10), OMEGA: f(1, 10)},
            {5: f(1, 2), 4: f(1, 2)},
        ),
        _row(
            schema, "e02", "ben", 74000,
            {"eng": f(3, 5), "ops": f(2, 5)},   # sharper placement
            {3: f(4, 5), 2: f(1, 5)},
        ),
        _row(
            schema, "e03", "carla", 118000,     # salary disagrees
            {"sales": f(1)},
            {5: f(1)},
        ),
        _row(
            schema, "e05", "erin", 88000,       # only the directory knows erin
            {"hr": f(7, 10), OMEGA: f(3, 10)},
            {4: f(1)},
        ),
    ]
    return ExtendedRelation(schema, rows)


def payroll_method_mix() -> dict:
    """The per-attribute integration methods this domain calls for."""
    return {
        "salary": "average",        # Dayal's aggregate class
        "department": "evidential", # the paper's class
        "level": "evidential",
    }
