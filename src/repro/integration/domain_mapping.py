"""Attribute domain information: value mappings between domains.

"Attribute domain information defines the mapping between attribute
values from different domains" (Section 1.1).  A local database may code
ratings 1-5 where the global schema uses {ex, gd, avg}; the mapping may
be one-to-one (a clean recode) or **one-to-many** -- local value ``4``
could mean global ``ex`` or ``gd``.  DeMichiel observed that such
mappings force uncertainty on the integrated view: a one-to-many image
is exactly a partial value, which the extended model represents as a
focal element covering the image set.

:meth:`DomainValueMapping.map_evidence` pushes a whole evidence set
through the mapping (focal elements map member-wise, their images union)
and :meth:`DomainValueMapping.as_transform` packages the mapping for use
in an :class:`~repro.integration.correspondence.AttributeCorrespondence`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import IntegrationError
from repro.model.domain import Domain
from repro.model.evidence import EvidenceSet

#: Policies for values without a mapping entry.
UNMAPPED_POLICIES = ("error", "identity", "ignore")


class DomainValueMapping:
    """A (possibly one-to-many) mapping of local to global domain values.

    Parameters
    ----------
    name:
        Identifier for error messages, e.g. ``"stars-to-rating"``.
    mapping:
        ``{local_value: global_value or iterable of global values}``.
    target_domain:
        Optional global domain; images are validated against it.
    unmapped:
        What to do with values missing from *mapping*: ``"error"``
        (default), ``"identity"`` (pass through), or ``"ignore"``
        (treated as mapping to the whole target domain -- ignorance).

    >>> stars = DomainValueMapping("stars", {5: "ex", 4: {"ex", "gd"},
    ...                                      3: "gd", 2: "avg", 1: "avg"})
    >>> sorted(stars.map_value(4))
    ['ex', 'gd']
    """

    def __init__(
        self,
        name: str,
        mapping: Mapping,
        target_domain: Domain | None = None,
        unmapped: str = "error",
    ):
        if unmapped not in UNMAPPED_POLICIES:
            raise IntegrationError(
                f"unmapped policy must be one of {UNMAPPED_POLICIES}, "
                f"got {unmapped!r}"
            )
        self._name = name
        self._target_domain = target_domain
        self._unmapped = unmapped
        self._images: dict = {}
        for local, image in mapping.items():
            if isinstance(image, (str, bytes)) or not isinstance(image, Iterable):
                image_set = frozenset({image})
            else:
                image_set = frozenset(image)
            if not image_set:
                raise IntegrationError(
                    f"mapping {name!r} sends {local!r} to the empty set"
                )
            if target_domain is not None:
                for value in image_set:
                    if not target_domain.contains(value):
                        raise IntegrationError(
                            f"mapping {name!r} sends {local!r} to {value!r}, "
                            f"outside domain {target_domain.name!r}"
                        )
            self._images[local] = image_set

    @property
    def name(self) -> str:
        """The mapping's identifier."""
        return self._name

    @property
    def target_domain(self) -> Domain | None:
        """The global domain, when known."""
        return self._target_domain

    def map_value(self, value: object) -> frozenset:
        """The image of one local value as a set of global values."""
        if value in self._images:
            return self._images[value]
        if self._unmapped == "identity":
            return frozenset({value})
        if self._unmapped == "ignore":
            if self._target_domain is None or not self._target_domain.is_enumerable:
                raise IntegrationError(
                    f"mapping {self._name!r} cannot 'ignore' {value!r} without "
                    "an enumerable target domain"
                )
            return frozenset(self._target_domain.frame().values)
        raise IntegrationError(
            f"mapping {self._name!r} has no entry for value {value!r}"
        )

    def map_evidence(self, evidence: EvidenceSet) -> EvidenceSet:
        """Push an evidence set through the mapping.

        Focal elements map member-wise and their images union; OMEGA
        stays OMEGA.  Masses of colliding images are summed.
        """
        mapped = evidence.mass_function.map_elements(self.map_value)
        return EvidenceSet(mapped, self._target_domain)

    def as_transform(self):
        """A transform for :class:`AttributeCorrespondence`.

        Scalars with singleton images stay scalars (so key attributes
        survive); anything else becomes an evidence set -- the exact
        point where domain translation injects uncertainty.
        """

        def transform(value: object) -> object:
            if isinstance(value, EvidenceSet):
                return self.map_evidence(value)
            image = self.map_value(value)
            if len(image) == 1:
                (single,) = image
                return single
            return EvidenceSet(
                {image: 1},
                self._target_domain,
            )

        return transform

    def __repr__(self) -> str:
        return (
            f"DomainValueMapping({self._name!r}, {len(self._images)} entries, "
            f"unmapped={self._unmapped!r})"
        )
