"""The end-to-end integration pipeline (all of Figure 1).

:class:`IntegrationPipeline` wires the framework's stages together:

1. attribute preprocessing of each source relation into the global
   schema (optional -- pass ``None`` mappings when sources are already
   preprocessed, as the paper's R_A/R_B are);
2. optional source discounting -- down-weighting an unreliable source's
   evidence before pooling (extension; see
   :mod:`repro.ds.discounting`);
3. entity identification (key-based by default);
4. tuple merging under per-attribute integration methods;
5. the integrated relation, ready for query processing.

The result bundles the integrated relation with the merge report and the
intermediate preprocessed relations for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IntegrationError
from repro.ds.discounting import discount
from repro.model.etuple import ExtendedTuple
from repro.model.evidence import EvidenceSet
from repro.model.relation import ExtendedRelation
from repro.integration.correspondence import SchemaMapping
from repro.integration.entity_identification import KeyMatcher, TupleMatching
from repro.integration.merging import MergeReport, TupleMerger
from repro.integration.preprocess import AttributePreprocessor


@dataclass
class IntegrationResult:
    """Everything the pipeline produced."""

    integrated: ExtendedRelation
    report: MergeReport
    preprocessed_left: ExtendedRelation
    preprocessed_right: ExtendedRelation
    matching: TupleMatching


def coerce_reliability(value, error_class=IntegrationError):
    """Coerce a source-reliability factor and require it in [0, 1].

    The one validation shared by the batch paths (pipeline, federation)
    and the streaming engine; *error_class* picks the layer's exception.
    """
    from repro.ds.mass import coerce_mass_value

    reliability = coerce_mass_value(value)
    if not 0 <= reliability <= 1:
        raise error_class(f"reliability must lie in [0, 1], got {value!r}")
    return reliability


def discount_tuple(etuple: ExtendedTuple, schema, reliability) -> ExtendedTuple:
    """Discount one tuple's evidence and membership by *reliability*.

    With reliability ``r``, every uncertain attribute's mass function is
    discounted (see :mod:`repro.ds.discounting`) and the membership pair
    becomes ``sn' = r * sn`` and ``sp' = 1 - r * (1 - sp)`` -- mass moves
    from both committed hypotheses toward ignorance.
    """
    from repro.ds.mass import coerce_mass_value
    from repro.model.membership import TupleMembership

    reliability = coerce_mass_value(reliability)
    values: dict[str, object] = {}
    for name, value in etuple.items():
        if isinstance(value, EvidenceSet):
            attribute = schema.attribute(name)
            if attribute.uncertain:
                values[name] = EvidenceSet(
                    discount(value.mass_function, reliability), value.domain
                )
            else:
                values[name] = value
        else:
            values[name] = value
    tm = etuple.membership
    membership = TupleMembership(
        reliability * tm.sn, 1 - reliability * (1 - tm.sp)
    )
    return ExtendedTuple(etuple.schema, values, membership)


def _discount_relation(relation: ExtendedRelation, reliability) -> ExtendedRelation:
    """Discount every evidence set of a relation by *reliability*.

    Tuples whose discounted membership loses all necessary support
    (``sn' = 0``) are dropped, per CWA_ER.
    """
    return ExtendedRelation(
        relation.schema,
        [discount_tuple(t, relation.schema, reliability) for t in relation],
        on_unsupported="drop",
    )


class IntegrationPipeline:
    """Configurable Figure-1 pipeline for two source relations.

    Parameters
    ----------
    left_mapping, right_mapping:
        :class:`SchemaMapping` per source, or ``None`` when the source is
        already in the global schema.
    matcher:
        Entity-identification strategy (default: :class:`KeyMatcher`).
    merger:
        Tuple merger (default: all-evidential :class:`TupleMerger`).
    reliabilities:
        Optional ``(left_reliability, right_reliability)`` discounting
        factors in [0, 1].

    >>> from repro.datasets.restaurants import table_ra, table_rb
    >>> result = IntegrationPipeline().run(table_ra(), table_rb())
    >>> len(result.integrated)
    6
    """

    def __init__(
        self,
        left_mapping: SchemaMapping | None = None,
        right_mapping: SchemaMapping | None = None,
        matcher=None,
        merger: TupleMerger | None = None,
        reliabilities: tuple | None = None,
    ):
        self._left_mapping = left_mapping
        self._right_mapping = right_mapping
        self._matcher = matcher if matcher is not None else KeyMatcher()
        self._merger = merger if merger is not None else TupleMerger()
        if reliabilities is not None:
            if len(reliabilities) != 2:
                raise IntegrationError(
                    "reliabilities must be a (left, right) pair"
                )
            reliabilities = tuple(
                coerce_reliability(r) for r in reliabilities
            )
        self._reliabilities = reliabilities

    def run(
        self,
        left: ExtendedRelation,
        right: ExtendedRelation,
        name: str = "integrated",
    ) -> IntegrationResult:
        """Execute the pipeline and return the bundled result."""
        if self._left_mapping is not None:
            left = AttributePreprocessor(self._left_mapping).preprocess(
                left, name=f"{left.name}_preprocessed"
            )
        if self._right_mapping is not None:
            right = AttributePreprocessor(self._right_mapping).preprocess(
                right, name=f"{right.name}_preprocessed"
            )
        if self._reliabilities is not None:
            left_r, right_r = self._reliabilities
            if left_r != 1:
                left = _discount_relation(left, left_r)
            if right_r != 1:
                right = _discount_relation(right, right_r)
        matching = self._matcher.match(left, right)
        integrated, report = self._merger.merge(left, right, matching, name=name)
        return IntegrationResult(
            integrated=integrated,
            report=report,
            preprocessed_left=left,
            preprocessed_right=right,
            matching=matching,
        )
