"""Tuple merging (Figure 1): combine matched tuples into the integrated
relation.

:class:`TupleMerger` generalizes the extended union of
:mod:`repro.algebra.union`:

* the tuple matching may come from any entity-identification strategy
  (not only key equality), and
* each attribute may use its own integration method (evidential,
  aggregate, intersection, ...) per the attribute integration methods
  extracted during schema integration.

Tuple *membership* is always pooled with Dempster's rule -- membership is
evidence about existence, and both sources supplied some.  When every
attribute uses the evidential method and matching is by key, merging
coincides with the extended union exactly (verified by the test-suite).

Evidential combinations ride the compact evidence kernel
(:mod:`repro.ds.kernel`) whenever the attribute's domain is enumerated:
the merged evidence keeps its compiled (bitmask) state, so the n-ary
folds built on :meth:`TupleMerger.merge_pair` / :meth:`merge_entity`
(the federation's tree fold, the stream engine's per-entity cache)
never re-derive masks between combinations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.errors import IntegrationError, TotalConflictError
from repro.model.etuple import ExtendedTuple
from repro.model.relation import ExtendedRelation
from repro.algebra.union import ConflictRecord, _combine_evidence, _membership_kappa
from repro.integration.entity_identification import KeyMatcher, TupleMatching
from repro.integration.methods import (
    EvidentialMethod,
    IntegrationMethod,
    get_method,
)


@dataclass
class MergeReport:
    """Administrator-facing record of one merge run."""

    matched: list[tuple[tuple, tuple]] = field(default_factory=list)
    left_only: list[tuple] = field(default_factory=list)
    right_only: list[tuple] = field(default_factory=list)
    conflicts: list[ConflictRecord] = field(default_factory=list)
    dropped: list[tuple] = field(default_factory=list)

    @property
    def total_conflicts(self) -> list[ConflictRecord]:
        """Only the irreconcilable conflicts."""
        return [record for record in self.conflicts if record.total]

    def summary(self) -> str:
        """One-line digest for logs."""
        return (
            f"{len(self.matched)} matched, {len(self.left_only)} left-only, "
            f"{len(self.right_only)} right-only, {len(self.conflicts)} "
            f"conflicts ({len(self.total_conflicts)} total), "
            f"{len(self.dropped)} dropped"
        )


class TupleMerger:
    """Merges two preprocessed relations into the integrated relation.

    Parameters
    ----------
    methods:
        ``{attribute_name: method-or-name}`` overriding the default per
        attribute.
    default_method:
        Method for attributes without an override (the paper's
        evidential method).
    on_conflict:
        ``"raise"`` (default), ``"vacuous"`` or ``"drop"``, as in
        :mod:`repro.algebra.union`.

    >>> from repro.datasets.restaurants import table_ra, table_rb
    >>> merged, report = TupleMerger().merge(table_ra(), table_rb())
    >>> len(merged), report.summary()[:10]
    (6, '5 matched,')
    """

    def __init__(
        self,
        methods: Mapping[str, object] | None = None,
        default_method: object = None,
        on_conflict: str = "raise",
    ):
        if on_conflict not in ("raise", "vacuous", "drop"):
            raise IntegrationError(
                f"on_conflict must be raise/vacuous/drop, got {on_conflict!r}"
            )
        self._methods = {
            name: get_method(method) for name, method in (methods or {}).items()
        }
        self._default = (
            get_method(default_method)
            if default_method is not None
            else EvidentialMethod()
        )
        self._on_conflict = on_conflict

    def method_for(self, attribute_name: str) -> IntegrationMethod:
        """The integration method applied to *attribute_name*."""
        return self._methods.get(attribute_name, self._default)

    @property
    def on_conflict(self) -> str:
        """The total-conflict policy (``raise`` / ``vacuous`` / ``drop``)."""
        return self._on_conflict

    def merge(
        self,
        left: ExtendedRelation,
        right: ExtendedRelation,
        matching: TupleMatching | None = None,
        name: str | None = None,
    ) -> tuple[ExtendedRelation, MergeReport]:
        """The integrated relation plus a merge report.

        When *matching* is omitted, tuples are matched on the common key
        (the paper's assumption).  Matched pairs take the *left* key.
        """
        left.schema.require_union_compatible(right.schema)
        if matching is None:
            matching = KeyMatcher().match(left, right)
        matching.validate_one_to_one()
        schema = left.schema.with_name(
            name if name is not None else f"{left.name}_integrated_{right.name}"
        )
        report = MergeReport()
        merged: list[ExtendedTuple] = []

        for left_key, right_key in matching.pairs:
            l_tuple = left.get(left_key)
            r_tuple = right.get(right_key)
            if l_tuple is None or r_tuple is None:
                raise IntegrationError(
                    f"matching references missing tuple(s) "
                    f"{left_key!r} / {right_key!r}"
                )
            report.matched.append((left_key, right_key))
            result = self._merge_pair(l_tuple, r_tuple, schema, report)
            if result is not None:
                merged.append(result)

        def rebuilt(etuple: ExtendedTuple) -> ExtendedTuple:
            return ExtendedTuple(schema, dict(etuple.items()), etuple.membership)

        for key in matching.left_only:
            report.left_only.append(key)
            merged.append(rebuilt(left.get(key)))
        for key in matching.right_only:
            report.right_only.append(key)
            merged.append(rebuilt(right.get(key)))
        return ExtendedRelation(schema, merged, on_unsupported="drop"), report

    def merge_pair(
        self,
        left: ExtendedTuple,
        right: ExtendedTuple,
        schema=None,
        report: MergeReport | None = None,
    ) -> ExtendedTuple | None:
        """Combine two tuples known to denote the same entity.

        This is the single-entity core of :meth:`merge`, exposed so
        engines that maintain per-entity state (the streaming engine,
        federated point queries) can pay for exactly one Dempster
        combination per arrival instead of a relation-level merge.

        Returns the merged tuple, or ``None`` when the pair hit a total
        conflict and the ``on_conflict`` policy dropped it.  Conflicts
        are appended to *report* when one is given.
        """
        if left.key() != right.key():
            raise IntegrationError(
                f"merge_pair needs tuples of the same entity, got keys "
                f"{left.key()!r} and {right.key()!r}"
            )
        if schema is None:
            schema = left.schema
        if report is None:
            report = MergeReport()
        return self._merge_pair(left, right, schema, report)

    def merge_entity(
        self,
        tuples,
        schema=None,
        report: MergeReport | None = None,
    ) -> ExtendedTuple | None:
        """Fold one entity's matched tuples (any number of sources).

        Dempster's rule is associative, so the left-to-right fold equals
        any other combination order on the conflict-free path.  Returns
        ``None`` when a total conflict dropped the entity under the
        configured policy.
        """
        items = list(tuples)
        if not items:
            raise IntegrationError("merge_entity needs at least one tuple")
        if schema is None:
            schema = items[0].schema
        if report is None:
            report = MergeReport()
        accumulated = ExtendedTuple(
            schema, dict(items[0].items()), items[0].membership
        )
        for nxt in items[1:]:
            if nxt.key() != accumulated.key():
                raise IntegrationError(
                    f"merge_entity needs tuples of one entity, got keys "
                    f"{accumulated.key()!r} and {nxt.key()!r}"
                )
            accumulated = self._merge_pair(accumulated, nxt, schema, report)
            if accumulated is None:
                return None
        return accumulated

    def _merge_pair(self, l_tuple, r_tuple, schema, report):
        key = l_tuple.key()
        values: dict[str, object] = dict(
            zip(schema.key_names, key)
        )
        for attr_name in schema.nonkey_names:
            attribute = schema.attribute(attr_name)
            method = self.method_for(attr_name)
            left_value = l_tuple.evidence(attr_name)
            right_value = r_tuple.evidence(attr_name)
            if isinstance(method, EvidentialMethod):
                combined, kappa = _combine_evidence(left_value, right_value)
                if kappa != 0:
                    report.conflicts.append(
                        ConflictRecord(key, attr_name, kappa, combined is None)
                    )
                if combined is None:
                    fallback = self._handle_total_conflict(
                        attribute, key, left_value, right_value, report
                    )
                    if fallback is None:
                        return None
                    values[attr_name] = fallback
                else:
                    values[attr_name] = combined
            else:
                try:
                    values[attr_name] = method.combine(
                        left_value, right_value, attribute
                    )
                except TotalConflictError:
                    report.conflicts.append(ConflictRecord(key, attr_name, 1, True))
                    fallback = self._handle_total_conflict(
                        attribute, key, left_value, right_value, report
                    )
                    if fallback is None:
                        return None
                    values[attr_name] = fallback

        membership_kappa = _membership_kappa(l_tuple.membership, r_tuple.membership)
        if membership_kappa == 1:
            report.conflicts.append(ConflictRecord(key, "(sn,sp)", 1, True))
            if self._on_conflict == "raise":
                raise TotalConflictError(
                    f"total conflict on membership of tuple {key!r}"
                )
            report.dropped.append(key)
            return None
        if membership_kappa != 0:
            report.conflicts.append(
                ConflictRecord(key, "(sn,sp)", membership_kappa, False)
            )
        membership = l_tuple.membership.combine_dempster(r_tuple.membership)
        return ExtendedTuple(schema, values, membership)

    def _handle_total_conflict(self, attribute, key, left_value, right_value, report):
        """Apply the on_conflict policy; ``None`` means drop the tuple."""
        from repro.model.evidence import EvidenceSet

        if self._on_conflict == "raise":
            raise TotalConflictError(
                f"total conflict on attribute {attribute.name!r} of tuple "
                f"{key!r}: {left_value.format()} vs {right_value.format()}"
            )
        if self._on_conflict == "vacuous" and attribute.uncertain:
            return EvidenceSet.vacuous(attribute.domain)
        report.dropped.append(key)
        return None
