"""Entity identification: pairing tuples that denote the same entity.

The paper assumes entity identification precedes attribute-value conflict
resolution and, for simplicity, that "the preprocessed relations share a
common key which determines the matched tuples" -- that is
:class:`KeyMatcher`.

The authors' companion work (Lim et al., "Entity identification problem
in database integration", ICDE 1993) matches on attribute similarity
with domain knowledge when keys do not align; :class:`SimilarityMatcher`
provides that substrate: a weighted per-attribute agreement score with a
match threshold and greedy one-to-one assignment.  For evidence-set
attributes the agreement between two values is the *non-conflict mass*
``1 - kappa`` of their Dempster combination -- the total product mass
the two sources can reconcile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.errors import EntityIdentificationError
from repro.ds.combination import conjunctive
from repro.model.etuple import ExtendedTuple
from repro.model.relation import ExtendedRelation


@dataclass
class TupleMatching:
    """The output of entity identification.

    ``pairs`` holds key pairs ``(left_key, right_key)`` for tuples judged
    to denote the same real-world entity; ``left_only`` / ``right_only``
    hold the unmatched keys of each side.
    """

    pairs: list[tuple[tuple, tuple]] = field(default_factory=list)
    left_only: list[tuple] = field(default_factory=list)
    right_only: list[tuple] = field(default_factory=list)

    def validate_one_to_one(self) -> None:
        """Raise when a key participates in two pairs."""
        left_keys = [left for left, _ in self.pairs]
        right_keys = [right for _, right in self.pairs]
        if len(set(left_keys)) != len(left_keys) or len(set(right_keys)) != len(
            right_keys
        ):
            raise EntityIdentificationError(
                "tuple matching is not one-to-one"
            )


class KeyMatcher:
    """Match tuples by equality of the common key (the paper's setting)."""

    def match(
        self, left: ExtendedRelation, right: ExtendedRelation
    ) -> TupleMatching:
        """Pair tuples whose keys are equal.

        >>> from repro.datasets.restaurants import table_ra, table_rb
        >>> matching = KeyMatcher().match(table_ra(), table_rb())
        >>> len(matching.pairs), matching.left_only
        (5, [('ashiana',)])
        """
        if left.schema.key_names != right.schema.key_names:
            raise EntityIdentificationError(
                f"key attributes differ: {left.schema.key_names} vs "
                f"{right.schema.key_names}"
            )
        matching = TupleMatching()
        for l_tuple in left:
            key = l_tuple.key()
            if key in right:
                matching.pairs.append((key, key))
            else:
                matching.left_only.append(key)
        for r_tuple in right:
            if r_tuple.key() not in left:
                matching.right_only.append(r_tuple.key())
        return matching


def evidence_agreement(left_tuple: ExtendedTuple, right_tuple: ExtendedTuple, name: str):
    """Agreement of two tuples on attribute *name*, in [0, 1].

    The non-conflict mass ``1 - kappa`` of the attribute evidence: 1 when
    the values are reconcilable in full (e.g. equal definite values), 0
    when totally conflicting (e.g. different definite values).
    """
    _, kappa = conjunctive(
        left_tuple.evidence(name).mass_function,
        right_tuple.evidence(name).mass_function,
    )
    return 1 - kappa


class SimilarityMatcher:
    """Weighted attribute-agreement matching (companion-paper substrate).

    Parameters
    ----------
    weights:
        ``{attribute_name: weight}``; weights are normalized internally.
    threshold:
        Minimum normalized score (in [0, 1]) for a pair to count as a
        match.
    comparators:
        Optional ``{attribute_name: fn(left_tuple, right_tuple) -> score}``
        overriding :func:`evidence_agreement` per attribute (e.g. string
        edit-distance on names).

    Matching is greedy best-score-first and one-to-one.
    """

    def __init__(
        self,
        weights: Mapping[str, object],
        threshold: object = 0.75,
        comparators: Mapping[str, object] | None = None,
    ):
        from repro.ds.mass import coerce_mass_value

        if not weights:
            raise EntityIdentificationError("similarity matching needs weights")
        coerced = {
            name: coerce_mass_value(weight) for name, weight in weights.items()
        }
        total = sum(coerced.values())
        if total <= 0:
            raise EntityIdentificationError("similarity weights must sum > 0")
        self._weights = {name: weight / total for name, weight in coerced.items()}
        self._threshold = coerce_mass_value(threshold)
        self._comparators = dict(comparators or {})

    def score(self, left_tuple: ExtendedTuple, right_tuple: ExtendedTuple):
        """The weighted agreement score of a tuple pair, in [0, 1]."""
        total = 0
        for name, weight in self._weights.items():
            comparator = self._comparators.get(name, None)
            if comparator is not None:
                agreement = comparator(left_tuple, right_tuple)
            else:
                agreement = evidence_agreement(left_tuple, right_tuple, name)
            total = total + weight * agreement
        return total

    def match(
        self, left: ExtendedRelation, right: ExtendedRelation
    ) -> TupleMatching:
        """Greedy one-to-one matching of the two relations."""
        for name in self._weights:
            if name not in left.schema or name not in right.schema:
                raise EntityIdentificationError(
                    f"similarity attribute {name!r} missing from a schema"
                )
        scored: list[tuple[object, tuple, tuple]] = []
        for l_tuple in left:
            for r_tuple in right:
                pair_score = self.score(l_tuple, r_tuple)
                if pair_score >= self._threshold:
                    scored.append((pair_score, l_tuple.key(), r_tuple.key()))
        # Best-first; deterministic tie-break on the key pair.
        scored.sort(key=lambda entry: (-entry[0], repr(entry[1]), repr(entry[2])))
        matched_left: set[tuple] = set()
        matched_right: set[tuple] = set()
        matching = TupleMatching()
        for _, left_key, right_key in scored:
            if left_key in matched_left or right_key in matched_right:
                continue
            matched_left.add(left_key)
            matched_right.add(right_key)
            matching.pairs.append((left_key, right_key))
        matching.left_only = [
            t.key() for t in left if t.key() not in matched_left
        ]
        matching.right_only = [
            t.key() for t in right if t.key() not in matched_right
        ]
        return matching
