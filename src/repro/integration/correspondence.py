"""Schema mapping: source-attribute to global-attribute correspondences.

"Schema mapping establishes correspondences between attributes from
different relations" (Section 1.1).  An
:class:`AttributeCorrespondence` links one source attribute to one
target (global) attribute with an optional value transform -- typically
a :meth:`DomainValueMapping.as_transform` for domain translation.
A :class:`SchemaMapping` collects correspondences (plus whole-tuple
*derivations* for target attributes computed from several source
attributes) and rewrites source tuples into the global schema.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping

from repro.errors import IntegrationError
from repro.model.etuple import ExtendedTuple
from repro.model.schema import RelationSchema


class AttributeCorrespondence:
    """``source_attribute -> target_attribute`` with an optional transform.

    The transform receives the stored source value (a scalar for key
    attributes, an :class:`EvidenceSet` otherwise) and returns the value
    to store under the target attribute.
    """

    __slots__ = ("_source", "_target", "_transform")

    def __init__(
        self,
        source: str,
        target: str,
        transform: Callable[[object], object] | None = None,
    ):
        if not source or not target:
            raise IntegrationError(
                f"correspondence needs source and target names, got "
                f"{source!r} -> {target!r}"
            )
        self._source = source
        self._target = target
        self._transform = transform

    @property
    def source(self) -> str:
        """The source attribute name."""
        return self._source

    @property
    def target(self) -> str:
        """The target (global) attribute name."""
        return self._target

    def apply(self, etuple: ExtendedTuple) -> object:
        """The target value derived from *etuple*."""
        value = etuple.value(self._source)
        if self._transform is not None:
            return self._transform(value)
        return value

    def __repr__(self) -> str:
        arrow = " (transformed)" if self._transform is not None else ""
        return f"AttributeCorrespondence({self._source!r} -> {self._target!r}{arrow})"


class SchemaMapping:
    """All correspondences from one source relation to the global schema.

    Parameters
    ----------
    target_schema:
        The global relation schema being produced.
    correspondences:
        One per target attribute covered by a single source attribute.
    derivations:
        ``{target_attribute: fn(source_tuple) -> value}`` for target
        attributes computed from the whole source tuple (e.g. an
        evidence set consolidated from several vote-count columns).

    Every target attribute must be covered exactly once.
    """

    def __init__(
        self,
        target_schema: RelationSchema,
        correspondences: Iterable[AttributeCorrespondence] = (),
        derivations: Mapping[str, Callable[[ExtendedTuple], object]] | None = None,
    ):
        self._target_schema = target_schema
        self._correspondences = tuple(correspondences)
        self._derivations = dict(derivations or {})
        covered: set[str] = set()
        for correspondence in self._correspondences:
            if correspondence.target not in target_schema:
                raise IntegrationError(
                    f"correspondence targets unknown attribute "
                    f"{correspondence.target!r} of {target_schema.name!r}"
                )
            if correspondence.target in covered:
                raise IntegrationError(
                    f"target attribute {correspondence.target!r} covered twice"
                )
            covered.add(correspondence.target)
        for target in self._derivations:
            if target not in target_schema:
                raise IntegrationError(
                    f"derivation targets unknown attribute {target!r} of "
                    f"{target_schema.name!r}"
                )
            if target in covered:
                raise IntegrationError(
                    f"target attribute {target!r} covered twice"
                )
            covered.add(target)
        missing = set(target_schema.names) - covered
        if missing:
            raise IntegrationError(
                f"schema mapping leaves target attribute(s) "
                f"{', '.join(sorted(missing))} of {target_schema.name!r} uncovered"
            )

    @property
    def target_schema(self) -> RelationSchema:
        """The global schema this mapping produces."""
        return self._target_schema

    @property
    def correspondences(self) -> tuple[AttributeCorrespondence, ...]:
        """The one-to-one attribute correspondences."""
        return self._correspondences

    @classmethod
    def identity(cls, target_schema: RelationSchema) -> "SchemaMapping":
        """The mapping for a source already in the global schema."""
        return cls(
            target_schema,
            [AttributeCorrespondence(name, name) for name in target_schema.names],
        )

    def apply(self, etuple: ExtendedTuple) -> dict[str, object]:
        """Rewrite one source tuple into target-schema values."""
        values: dict[str, object] = {}
        for correspondence in self._correspondences:
            values[correspondence.target] = correspondence.apply(etuple)
        for target, derive in self._derivations.items():
            values[target] = derive(etuple)
        return values
