"""Attribute preprocessing: source relations -> virtual global relations.

Figure 1's first stage: "we first preprocess each source relation to make
both relations compatible in their attributes.  This usually involves
mapping the actual attributes from the source relations into virtual
attributes of the appropriate domain types."

:class:`AttributePreprocessor` applies a
:class:`~repro.integration.correspondence.SchemaMapping` to every tuple
of a source relation, producing the preprocessed relation (the paper's
``R'_A`` / ``R'_B``).  Tuple memberships are preserved -- preprocessing
changes representation, not evidence about existence.
"""

from __future__ import annotations

from repro.errors import IntegrationError
from repro.model.etuple import ExtendedTuple
from repro.model.relation import ExtendedRelation
from repro.integration.correspondence import SchemaMapping


class AttributePreprocessor:
    """Rewrites a source relation into the global schema."""

    def __init__(self, mapping: SchemaMapping):
        self._mapping = mapping

    @property
    def mapping(self) -> SchemaMapping:
        """The schema mapping being applied."""
        return self._mapping

    def preprocess(
        self, relation: ExtendedRelation, name: str | None = None
    ) -> ExtendedRelation:
        """The preprocessed relation over the global schema.

        >>> from repro.datasets.restaurants import table_ra, restaurant_schema
        >>> identity = SchemaMapping.identity(restaurant_schema("global_R"))
        >>> preprocessed = AttributePreprocessor(identity).preprocess(table_ra())
        >>> preprocessed.name
        'global_R'
        """
        schema = self._mapping.target_schema
        if name is not None:
            schema = schema.with_name(name)
        rewritten = []
        for etuple in relation:
            try:
                values = self._mapping.apply(etuple)
            except IntegrationError:
                raise
            except Exception as exc:
                raise IntegrationError(
                    f"preprocessing tuple {etuple.key()!r} of "
                    f"{relation.name!r} failed: {exc}"
                ) from exc
            rewritten.append(ExtendedTuple(schema, values, etuple.membership))
        return ExtendedRelation(schema, rewritten)
