"""Attribute integration methods.

"Attribute integration methods are specified for deriving the attributes
in the integrated relation" (Section 1.1).  The paper positions its
evidential method alongside Dayal's aggregate functions: "we can treat
the aggregate function approach and our approach as separate classes of
attribute integration methods which can co-exist in the integration
framework" (Section 1.3).  This registry realizes that co-existence --
the merger applies a per-attribute method:

* :class:`EvidentialMethod` -- Dempster's rule (the paper's approach;
  the default for uncertain attributes);
* :class:`AverageMethod` / :class:`MinMethod` / :class:`MaxMethod` --
  Dayal's aggregates over definite numeric values;
* :class:`IntersectionMethod` -- DeMichiel's partial-value combination
  (intersect the candidate-value sets, probabilities discarded);
* :class:`MixtureMethod` -- an equal-weight mixture of the two mass
  functions; unlike Dempster it never renormalizes away inconsistency,
  approximating the Tseng et al. stance of retaining it;
* :class:`PreferLeftMethod` / :class:`PreferRightMethod` -- trust one
  source outright.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction

from repro.errors import IntegrationError, TotalConflictError
from repro.ds.combination import union_focal
from repro.ds.frame import is_omega
from repro.ds.mass import MassFunction
from repro.model.attribute import Attribute
from repro.model.evidence import EvidenceSet


class IntegrationMethod(ABC):
    """Combines two attribute values of a matched tuple pair."""

    name: str = "abstract"

    @abstractmethod
    def combine(
        self, left: EvidenceSet, right: EvidenceSet, attribute: Attribute
    ) -> EvidenceSet:
        """The integrated value for *attribute*."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class EvidentialMethod(IntegrationMethod):
    """Dempster's rule of combination -- the paper's method."""

    name = "evidential"

    def combine(self, left, right, attribute):
        return left.combine(right)


class PreferLeftMethod(IntegrationMethod):
    """Keep the first source's value unconditionally."""

    name = "prefer_left"

    def combine(self, left, right, attribute):
        return left


class PreferRightMethod(IntegrationMethod):
    """Keep the second source's value unconditionally."""

    name = "prefer_right"

    def combine(self, left, right, attribute):
        return right


def _definite_number(evidence: EvidenceSet, attribute: Attribute):
    value = evidence.definite_value()
    if isinstance(value, bool) or not isinstance(value, (int, float, Fraction)):
        raise IntegrationError(
            f"aggregate method needs numeric values for {attribute.name!r}, "
            f"got {value!r}"
        )
    return value


class AverageMethod(IntegrationMethod):
    """Dayal: the average of two definite numeric values."""

    name = "average"

    def combine(self, left, right, attribute):
        a = _definite_number(left, attribute)
        b = _definite_number(right, attribute)
        if isinstance(a, float) or isinstance(b, float):
            value: object = (a + b) / 2
        else:
            value = Fraction(a + b, 2)
            if value.denominator == 1:
                value = int(value)
        if attribute.domain.contains(value):
            return EvidenceSet.definite(value, attribute.domain)
        # Integral domains: averages may fall between values; in that case
        # the honest representation is the pair of neighbours.
        low = int(value)
        candidates = {c for c in (low, low + 1) if attribute.domain.contains(c)}
        if not candidates:
            raise IntegrationError(
                f"average {value!r} is outside domain {attribute.domain.name!r}"
            )
        if len(candidates) == 1:
            (single,) = candidates
            return EvidenceSet.definite(single, attribute.domain)
        return EvidenceSet({frozenset(candidates): 1}, attribute.domain)


class MinMethod(IntegrationMethod):
    """Dayal: the minimum of two definite values."""

    name = "min"

    def combine(self, left, right, attribute):
        a = _definite_number(left, attribute)
        b = _definite_number(right, attribute)
        return EvidenceSet.definite(min(a, b), attribute.domain)


class MaxMethod(IntegrationMethod):
    """Dayal: the maximum of two definite values."""

    name = "max"

    def combine(self, left, right, attribute):
        a = _definite_number(left, attribute)
        b = _definite_number(right, attribute)
        return EvidenceSet.definite(max(a, b), attribute.domain)


class IntersectionMethod(IntegrationMethod):
    """DeMichiel: intersect the candidate-value sets (cores).

    Probabilistic structure is discarded -- the result is a categorical
    evidence set (mass 1) on the intersection of the two cores, which is
    exactly the partial-value combination rule.  Raises
    :class:`TotalConflictError` when the cores are disjoint.
    """

    name = "intersection"

    def combine(self, left, right, attribute):
        left_core = left.mass_function.core()
        right_core = right.mass_function.core()
        if is_omega(left_core):
            meet = right_core
        elif is_omega(right_core):
            meet = left_core
        else:
            meet = left_core & right_core
        if not is_omega(meet) and not meet:
            raise TotalConflictError(
                f"partial values for {attribute.name!r} have disjoint cores"
            )
        if is_omega(meet):
            return EvidenceSet.vacuous(attribute.domain)
        return EvidenceSet({meet: 1}, attribute.domain)


class MixtureMethod(IntegrationMethod):
    """Equal-weight mixture of the two mass functions.

    ``m(X) = (m1(X) + m2(X)) / 2`` -- inconsistent possibilities from
    either source survive with half their original mass, rather than
    being renormalized away as Dempster's rule does.
    """

    name = "mixture"

    def combine(self, left, right, attribute):
        mixed: dict = {}
        for element, value in left.items():
            mixed[element] = mixed.get(element, 0) + value / 2
        for element, value in right.items():
            mixed[element] = mixed.get(element, 0) + value / 2
        frame = left.mass_function.frame or right.mass_function.frame
        return EvidenceSet(MassFunction(mixed, frame), attribute.domain)


class DisjunctiveMethod(IntegrationMethod):
    """Disjunctive rule: union of focal elements.

    Cautious pooling for when at least one (unknown) source is reliable;
    never conflicts, never sharpens.
    """

    name = "disjunctive"

    def combine(self, left, right, attribute):
        pooled: dict = {}
        for x, mass_x in left.items():
            for y, mass_y in right.items():
                join = union_focal(x, y)
                pooled[join] = pooled.get(join, 0) + mass_x * mass_y
        frame = left.mass_function.frame or right.mass_function.frame
        return EvidenceSet(MassFunction(pooled, frame), attribute.domain)


#: Registry of methods by name.
METHODS: dict[str, IntegrationMethod] = {
    method.name: method
    for method in (
        EvidentialMethod(),
        PreferLeftMethod(),
        PreferRightMethod(),
        AverageMethod(),
        MinMethod(),
        MaxMethod(),
        IntersectionMethod(),
        MixtureMethod(),
        DisjunctiveMethod(),
    )
}


def get_method(method: str | IntegrationMethod) -> IntegrationMethod:
    """Resolve a method name (or pass an instance through)."""
    if isinstance(method, IntegrationMethod):
        return method
    try:
        return METHODS[method]
    except KeyError:
        raise IntegrationError(
            f"unknown integration method {method!r}; known methods: "
            f"{', '.join(sorted(METHODS))}"
        ) from None
