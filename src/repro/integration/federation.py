"""Multi-source federation: integrating more than two databases.

The paper integrates two databases, but its machinery is n-ary by
construction: Dempster's rule is associative and commutative, so folding
the pairwise merge over any number of sources yields an
order-independent result (the test-suite verifies all permutations
agree).  :class:`Federation` packages that fold:

* sources register with a name, a relation and an optional reliability
  (discounted before merging, per :mod:`repro.ds.discounting`);
* :meth:`Federation.integrate` folds the merger as a balanced tree --
  adjacent sources pair up, then the halves pair up, and so on -- and
  accumulates every pairwise merge report into a combined digest.  The
  tree fold keeps intermediate relations small (each merge combines
  results of similar depth rather than dragging one ever-growing
  accumulator through every step); by associativity the result equals
  the left-to-right fold on the conflict-free path, which the
  permutation tests verify.

Evidence over enumerated domains combines on the compact kernel
(:mod:`repro.ds.kernel`): each merge step's output carries its compiled
state into the next layer of the tree, so an n-way integration compiles
each source's evidence once and runs every subsequent combination on
bitmasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IntegrationError, TotalConflictError
from repro.model.relation import ExtendedRelation
from repro.integration.merging import MergeReport, TupleMerger
from repro.integration.pipeline import _discount_relation, coerce_reliability


@dataclass(frozen=True)
class FederationSource:
    """One registered source."""

    name: str
    relation: ExtendedRelation
    reliability: object = 1


@dataclass
class FederationReport:
    """Accumulated digest of an n-way integration."""

    steps: list[tuple[str, MergeReport]] = field(default_factory=list)

    @property
    def total_conflicts(self) -> int:
        """Irreconcilable conflicts across all merge steps."""
        return sum(len(report.total_conflicts) for _, report in self.steps)

    def summary(self) -> str:
        """One line per merge step."""
        return "\n".join(
            f"(+) {name}: {report.summary()}" for name, report in self.steps
        )


class Federation:
    """An n-way integration over union-compatible sources.

    >>> from repro.datasets.restaurants import table_ra, table_rb
    >>> federation = Federation()
    >>> federation.add_source("daily", table_ra())
    >>> federation.add_source("tribune", table_rb())
    >>> integrated, report = federation.integrate(name="R")
    >>> len(integrated)
    6
    """

    def __init__(self, merger: TupleMerger | None = None):
        self._merger = merger if merger is not None else TupleMerger()
        self._sources: list[FederationSource] = []

    @property
    def sources(self) -> tuple[FederationSource, ...]:
        """The registered sources, in registration order."""
        return tuple(self._sources)

    def add_source(
        self,
        name: str,
        relation: ExtendedRelation,
        reliability: object = 1,
    ) -> None:
        """Register a source; *reliability* in [0, 1] discounts it."""
        if any(source.name == name for source in self._sources):
            raise IntegrationError(f"duplicate source name {name!r}")
        self._sources.append(
            FederationSource(name, relation, coerce_reliability(reliability))
        )

    def integrate(
        self, name: str = "federated"
    ) -> tuple[ExtendedRelation, FederationReport]:
        """Tree-fold the merger over all sources (at least one required).

        A :class:`TotalConflictError` raised mid-fold is re-raised with
        the labels of the two operands being merged, so the
        administrator learns *which* sources (or merged groups of
        sources) were irreconcilable.
        """
        if not self._sources:
            raise IntegrationError("a federation needs at least one source")
        report = FederationReport()
        layer = [
            (
                source.name,
                source.relation
                if source.reliability == 1
                else _discount_relation(source.relation, source.reliability),
            )
            for source in self._sources
        ]
        if len(layer) == 1:
            return layer[0][1].with_name(name), report
        while len(layer) > 1:
            merged_layer = []
            for i in range(0, len(layer) - 1, 2):
                left_label, left_relation = layer[i]
                right_label, right_relation = layer[i + 1]
                try:
                    merged, step_report = self._merger.merge(
                        left_relation, right_relation, name=name
                    )
                except TotalConflictError as exc:
                    raise TotalConflictError(
                        f"{exc} (while merging source(s) {left_label!r} "
                        f"with {right_label!r})"
                    ) from exc
                report.steps.append((right_label, step_report))
                merged_layer.append((f"{left_label}+{right_label}", merged))
            if len(layer) % 2:
                merged_layer.append(layer[-1])
            layer = merged_layer
        return layer[0][1], report

    def integrate_entity(self, key: tuple, name: str = "federated"):
        """Merge only the tuples with the given *key*, on demand.

        This is the seed of the paper's "ongoing research" direction --
        combining query processing with conflict resolution: a federated
        *point query* need not materialize the whole integrated relation,
        only the one entity's evidence.  Returns the merged
        :class:`ExtendedTuple`, or ``None`` when no source supports the
        entity.  The result is identical to looking the key up in the
        fully materialized integration (verified by the test-suite).
        """
        if not self._sources:
            raise IntegrationError("a federation needs at least one source")
        if not isinstance(key, tuple):
            key = (key,)
        relevant: list[ExtendedRelation] = []
        for source in self._sources:
            etuple = source.relation.get(key)
            if etuple is None:
                continue
            fragment = ExtendedRelation(source.relation.schema, [etuple])
            if source.reliability != 1:
                fragment = _discount_relation(fragment, source.reliability)
            relevant.append(fragment)
        if not relevant:
            return None
        accumulated = relevant[0]
        for fragment in relevant[1:]:
            accumulated, _ = self._merger.merge(accumulated, fragment, name=name)
        return accumulated.get(key)
