"""Multi-source federation: integrating more than two databases.

The paper integrates two databases, but its machinery is n-ary by
construction: Dempster's rule is associative and commutative, so folding
the pairwise merge over any number of sources yields an
order-independent result (the test-suite verifies all permutations
agree).  :class:`Federation` packages that fold:

* sources register with a name, a relation and an optional reliability
  (discounted before merging, per :mod:`repro.ds.discounting`);
* :meth:`Federation.integrate` folds the merger as a balanced tree --
  adjacent sources pair up, then the halves pair up, and so on -- and
  accumulates every pairwise merge report into a combined digest.  The
  tree fold keeps intermediate relations small (each merge combines
  results of similar depth rather than dragging one ever-growing
  accumulator through every step); by associativity the result equals
  the left-to-right fold on the conflict-free path, which the
  permutation tests verify.

Evidence over enumerated domains combines on the compact kernel
(:mod:`repro.ds.kernel`): each merge step's output carries its compiled
state into the next layer of the tree, so an n-way integration compiles
each source's evidence once and runs every subsequent combination on
bitmasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IntegrationError, TotalConflictError
from repro.exec import cost as _cost
from repro.exec.executors import get_executor, partition_count
from repro.model.relation import ExtendedRelation
from repro.integration.merging import MergeReport, TupleMerger
from repro.integration.pipeline import _discount_relation, coerce_reliability


@dataclass(frozen=True)
class FederationSource:
    """One registered source."""

    name: str
    relation: ExtendedRelation
    reliability: object = 1


@dataclass
class FederationReport:
    """Accumulated digest of an n-way integration."""

    steps: list[tuple[str, MergeReport]] = field(default_factory=list)

    @property
    def total_conflicts(self) -> int:
        """Irreconcilable conflicts across all merge steps."""
        return sum(len(report.total_conflicts) for _, report in self.steps)

    def summary(self) -> str:
        """One line per merge step."""
        return "\n".join(
            f"(+) {name}: {report.summary()}" for name, report in self.steps
        )


def _tree_fold(
    merger: TupleMerger, layer: list, name: str
) -> tuple[ExtendedRelation, list[tuple[str, MergeReport]]]:
    """Balanced-tree fold of ``(label, relation)`` pairs (>= 2 entries).

    Returns the merged relation and the per-step reports; a mid-fold
    :class:`TotalConflictError` is re-raised with the operand labels.
    """
    steps: list[tuple[str, MergeReport]] = []
    while len(layer) > 1:
        merged_layer = []
        for i in range(0, len(layer) - 1, 2):
            left_label, left_relation = layer[i]
            right_label, right_relation = layer[i + 1]
            try:
                merged, step_report = merger.merge(
                    left_relation, right_relation, name=name
                )
            except TotalConflictError as exc:
                raise TotalConflictError(
                    f"{exc} (while merging source(s) {left_label!r} "
                    f"with {right_label!r})"
                ) from exc
            steps.append((right_label, step_report))
            merged_layer.append((f"{left_label}+{right_label}", merged))
        if len(layer) % 2:
            merged_layer.append(layer[-1])
        layer = merged_layer
    return layer[0][1], steps


def _integrate_shard(common, row):
    """Fold one shard row: the per-partition task of the sharded fold.

    Module-level and fully picklable so the batch can ship through
    :meth:`Executor.map_encoded` -- including across a wire to remote
    worker daemons (:mod:`repro.exec.remote`).  *common* is the
    per-batch constant ``(merger, name, metas)`` where ``metas`` pairs
    each source's name with its reliability, aligned with *row*'s
    shards.  Returns ``((relation, steps), survivors, error)`` with
    *error* carrying a mid-fold :class:`TotalConflictError` instead of
    raising it, so which shard conflicts first stays
    executor-independent.
    """
    merger, name, metas = common
    layer = []
    survivors = []
    for (source_name, reliability), shard in zip(metas, row):
        relation = (
            shard
            if reliability == 1
            else _discount_relation(shard, reliability)
        )
        layer.append((source_name, relation))
        survivors.append(frozenset(relation.keys()))
    try:
        relation, steps = _tree_fold(merger, layer, name)
    except TotalConflictError as exc:
        return None, survivors, exc
    return (relation, steps), survivors, None


def _serial_fold_order(
    source_orders: list[list[tuple]], dropped_per_step: list[set]
) -> list[tuple]:
    """Replay the tree fold over key sequences to recover serial order.

    Each :meth:`TupleMerger.merge` step orders its output as: matched
    tuples in left-iteration order (minus the keys that step dropped on
    total conflict), then left-only tuples in left order, then
    right-only tuples in right order.  Survival is per-entity, so the
    key-level replay (fed with each step's actual dropped set from the
    shard reports) reproduces the serial fold's final tuple order
    without re-merging anything.
    """
    layer = [list(keys) for keys in source_orders]
    step = 0
    while len(layer) > 1:
        merged_layer = []
        for i in range(0, len(layer) - 1, 2):
            left_keys, right_keys = layer[i], layer[i + 1]
            dropped = dropped_per_step[step]
            step += 1
            left_set = set(left_keys)
            right_set = set(right_keys)
            out = [
                key
                for key in left_keys
                if key in right_set and key not in dropped
            ]
            out.extend(key for key in left_keys if key not in right_set)
            out.extend(key for key in right_keys if key not in left_set)
            merged_layer.append(out)
        if len(layer) % 2:
            merged_layer.append(layer[-1])
        layer = merged_layer
    return layer[0]


class Federation:
    """An n-way integration over union-compatible sources.

    >>> from repro.datasets.restaurants import table_ra, table_rb
    >>> federation = Federation()
    >>> federation.add_source("daily", table_ra())
    >>> federation.add_source("tribune", table_rb())
    >>> integrated, report = federation.integrate(name="R")
    >>> len(integrated)
    6
    """

    def __init__(self, merger: TupleMerger | None = None):
        self._merger = merger if merger is not None else TupleMerger()
        self._sources: list[FederationSource] = []

    @property
    def sources(self) -> tuple[FederationSource, ...]:
        """The registered sources, in registration order."""
        return tuple(self._sources)

    def add_source(
        self,
        name: str,
        relation: ExtendedRelation,
        reliability: object = 1,
    ) -> None:
        """Register a source; *reliability* in [0, 1] discounts it."""
        if any(source.name == name for source in self._sources):
            raise IntegrationError(f"duplicate source name {name!r}")
        self._sources.append(
            FederationSource(name, relation, coerce_reliability(reliability))
        )

    def integrate(
        self, name: str = "federated"
    ) -> tuple[ExtendedRelation, FederationReport]:
        """Tree-fold the merger over all sources (at least one required).

        A :class:`TotalConflictError` raised mid-fold is re-raised with
        the labels of the two operands being merged, so the
        administrator learns *which* sources (or merged groups of
        sources) were irreconcilable.

        Under a parallel executor (:mod:`repro.exec`) the fold shards by
        entity key: every source is hash-partitioned with the same
        partition count, each shard runs the identical balanced-tree
        fold over its slice of every source, and the shard results
        reassemble into the exact serial relation -- same tuples, same
        order (recovered by replaying the fold over key sequences),
        same exact masses.  Per-step reports aggregate shard reports;
        their *counts* match the serial fold exactly, while the order of
        entries within a step's lists follows shard order.
        """
        if not self._sources:
            raise IntegrationError("a federation needs at least one source")
        # The federation knows its own shape: hint the cost model with
        # the entity and source counts so ``auto`` mode prices this
        # integration rather than the defaults.
        with _cost.workload(
            entities=max(len(source.relation) for source in self._sources),
            sources=len(self._sources),
        ):
            n = (
                partition_count(
                    max(len(source.relation) for source in self._sources)
                )
                if len(self._sources) > 1
                else 1
            )
            if n > 1:
                return self._integrate_partitioned(name, n)
            return self._integrate_serial(name)

    def _integrate_serial(self, name: str):
        """The historical single-pass fold (also the raise-path oracle)."""
        report = FederationReport()
        layer = [
            (
                source.name,
                source.relation
                if source.reliability == 1
                else _discount_relation(source.relation, source.reliability),
            )
            for source in self._sources
        ]
        if len(layer) == 1:
            return layer[0][1].with_name(name), report
        relation, steps = _tree_fold(self._merger, layer, name)
        report.steps.extend(steps)
        return relation, report

    def _integrate_partitioned(
        self, name: str, n: int
    ) -> tuple[ExtendedRelation, FederationReport]:
        """The sharded fold: per-partition tree folds, exact reassembly."""
        sources = self._sources
        merger = self._merger
        shard_rows = list(
            zip(*[source.relation.partitions(n) for source in sources])
        )
        common = (
            merger,
            name,
            tuple((source.name, source.reliability) for source in sources),
        )
        executor = get_executor()
        if executor.kind == "remote":
            # The encoded path: shard rows and the (merger, name, metas)
            # header are picklable by construction, so the fold can
            # scatter across worker daemons; in-process executors keep
            # the closure path below (nothing to pickle).
            keyed = getattr(executor, "map_encoded_keyed", None)
            publish = getattr(executor, "publish_relation", None)
            source_names = [source.relation.name for source in sources]
            if (
                keyed is not None
                and publish is not None
                and len(set(source_names)) == len(source_names)
            ):
                # Shard-resident workers can rebuild each shard row from
                # entity keys alone, so publish the source relations and
                # scatter key lists; the executor transparently ships
                # tuples instead whenever locality cannot serve the
                # batch.  Duplicate source relation names would alias in
                # the per-name shard stores, so they keep tuple shipping.
                for source in sources:
                    publish(source.relation)
                specs = [
                    tuple(
                        (source_names[j], tuple(row[j].keys()))
                        for j in range(len(sources))
                    )
                    for row in shard_rows
                ]
                outcomes = keyed(_integrate_shard, common, specs, shard_rows)
            else:
                outcomes = executor.map_encoded(
                    _integrate_shard, common, shard_rows
                )
        else:

            def shard_task(row):
                return _integrate_shard(common, row)

            outcomes = executor.map(shard_task, shard_rows)
        if any(error is not None for _, _, error in outcomes):
            # A raise-policy conflict aborts the integration anyway, so
            # re-run the serial fold to surface the exact error the
            # serial path raises (same entity, same operand labels) --
            # which shard found a conflict first is executor-dependent.
            return self._integrate_serial(name)

        report = FederationReport()
        first_steps = outcomes[0][0][1]
        dropped_per_step: list[set] = []
        for j in range(len(first_steps)):
            combined = MergeReport()
            dropped: set = set()
            for (_, steps), _, _ in outcomes:
                part = steps[j][1]
                combined.matched.extend(part.matched)
                combined.left_only.extend(part.left_only)
                combined.right_only.extend(part.right_only)
                combined.conflicts.extend(part.conflicts)
                combined.dropped.extend(part.dropped)
                dropped.update(part.dropped)
            dropped_per_step.append(dropped)
            report.steps.append((first_steps[j][0], combined))

        survivor_sets: list[set] = [set() for _ in sources]
        merged_by_key: dict[tuple, object] = {}
        schema = None
        for (relation, _), survivors, _ in outcomes:
            schema = relation.schema
            for index, keys in enumerate(survivors):
                survivor_sets[index] |= keys
            for etuple in relation:
                merged_by_key[etuple.key()] = etuple
        source_orders = [
            [
                key
                for key in source.relation.keys()
                if key in survivor_sets[index]
            ]
            for index, source in enumerate(sources)
        ]
        tuples = []
        for key in _serial_fold_order(source_orders, dropped_per_step):
            etuple = merged_by_key.pop(key, None)
            if etuple is not None:
                tuples.append(etuple)
        if merged_by_key:
            # Exactness is the contract: a merged entity the key replay
            # cannot place means the replay and the merge disagree --
            # fail loudly rather than publish a silently re-ordered
            # relation.
            missing = sorted(map(repr, merged_by_key))[:5]
            raise IntegrationError(
                "internal error: the serial-order replay missed "
                f"{len(merged_by_key)} merged entity(ies) "
                f"({', '.join(missing)}...)"
            )
        return ExtendedRelation(schema, tuples, on_unsupported="drop"), report

    def integrate_entity(self, key: tuple, name: str = "federated"):
        """Merge only the tuples with the given *key*, on demand.

        This is the seed of the paper's "ongoing research" direction --
        combining query processing with conflict resolution: a federated
        *point query* need not materialize the whole integrated relation,
        only the one entity's evidence.  Returns the merged
        :class:`ExtendedTuple`, or ``None`` when no source supports the
        entity.  The result is identical to looking the key up in the
        fully materialized integration (verified by the test-suite).
        """
        if not self._sources:
            raise IntegrationError("a federation needs at least one source")
        if not isinstance(key, tuple):
            key = (key,)
        relevant: list[ExtendedRelation] = []
        for source in self._sources:
            etuple = source.relation.get(key)
            if etuple is None:
                continue
            fragment = ExtendedRelation(source.relation.schema, [etuple])
            if source.reliability != 1:
                fragment = _discount_relation(fragment, source.reliability)
            relevant.append(fragment)
        if not relevant:
            return None
        accumulated = relevant[0]
        for fragment in relevant[1:]:
            accumulated, _ = self._merger.merge(accumulated, fragment, name=name)
        return accumulated.get(key)

    def integrate_entities(
        self, keys, name: str = "federated"
    ) -> list:
        """Batch point queries: :meth:`integrate_entity` for many keys.

        Entity merges are independent, so the batch fans the per-key
        work out through the configured executor
        (:func:`repro.exec.get_executor`) in contiguous chunks -- the
        cost model prices the batch like any other fan-out, and small
        batches stay serial.  Returns one entry per input key, in input
        order; each entry is exactly what :meth:`integrate_entity`
        returns for that key (the merged tuple, or ``None``).
        """
        if not self._sources:
            raise IntegrationError("a federation needs at least one source")
        keys = [key if isinstance(key, tuple) else (key,) for key in keys]
        if not keys:
            return []
        with _cost.workload(entities=len(keys), sources=len(self._sources)):
            n = partition_count(len(keys))
            if n <= 1:
                return [self.integrate_entity(key, name=name) for key in keys]
            size, extra = divmod(len(keys), n)
            chunks, start = [], 0
            for index in range(n):
                stop = start + size + (1 if index < extra else 0)
                chunks.append(keys[start:stop])
                start = stop

            def task(chunk):
                return [self.integrate_entity(key, name=name) for key in chunk]

            results = get_executor().map(task, chunks)
        return [etuple for chunk_results in results for etuple in chunk_results]
