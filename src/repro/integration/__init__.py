"""The database integration framework of Figure 1.

The paper's architecture, left to right:

1. **Schema mapping** (:mod:`repro.integration.correspondence`) --
   correspondences between source attributes and the global schema,
   extracted during schema integration.
2. **Attribute domain information**
   (:mod:`repro.integration.domain_mapping`) -- value mappings between
   local and global domains; one-to-many mappings are where DeMichiel's
   partial values (and our evidence sets) first arise.
3. **Attribute preprocessing** (:mod:`repro.integration.preprocess`) --
   maps each source relation's actual attributes into the virtual
   attributes of the global schema.
4. **Entity identification**
   (:mod:`repro.integration.entity_identification`) -- pairs tuples
   denoting the same real-world entity (by common key, as the paper
   assumes; an attribute-similarity matcher is provided as the substrate
   of the authors' companion work).
5. **Tuple merging** (:mod:`repro.integration.merging`) -- combines the
   attribute values of matched tuples per attribute integration method;
   the evidential method is the paper's extended union.
6. :class:`repro.integration.pipeline.IntegrationPipeline` wires all of
   it together and produces the integrated relation plus a conflict
   report.
"""

from repro.integration.correspondence import AttributeCorrespondence, SchemaMapping
from repro.integration.domain_mapping import DomainValueMapping
from repro.integration.preprocess import AttributePreprocessor
from repro.integration.entity_identification import (
    KeyMatcher,
    SimilarityMatcher,
    TupleMatching,
)
from repro.integration.methods import (
    AverageMethod,
    EvidentialMethod,
    IntegrationMethod,
    IntersectionMethod,
    MaxMethod,
    MinMethod,
    MixtureMethod,
    PreferLeftMethod,
    PreferRightMethod,
    get_method,
)
from repro.integration.merging import MergeReport, TupleMerger
from repro.integration.pipeline import IntegrationPipeline, IntegrationResult
from repro.integration.federation import (
    Federation,
    FederationReport,
    FederationSource,
)

__all__ = [
    "AttributeCorrespondence",
    "SchemaMapping",
    "DomainValueMapping",
    "AttributePreprocessor",
    "KeyMatcher",
    "SimilarityMatcher",
    "TupleMatching",
    "IntegrationMethod",
    "EvidentialMethod",
    "AverageMethod",
    "MinMethod",
    "MaxMethod",
    "IntersectionMethod",
    "MixtureMethod",
    "PreferLeftMethod",
    "PreferRightMethod",
    "get_method",
    "TupleMerger",
    "MergeReport",
    "IntegrationPipeline",
    "IntegrationResult",
    "Federation",
    "FederationReport",
    "FederationSource",
]
