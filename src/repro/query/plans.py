"""Logical query plans over the extended algebra.

Plans are bound trees: every node knows its output schema at build time
(binding happens in :mod:`repro.query.planner`), so attribute resolution
errors surface before execution.  Execution maps nodes 1:1 onto the
algebra operations:

* :class:`ScanPlan` -> catalog lookup
* :class:`SelectPlan` -> :func:`repro.algebra.select` (a ``None``
  predicate means a pure membership-threshold filter)
* :class:`ProjectPlan` -> :func:`repro.algebra.project`
* :class:`UnionPlan` -> :func:`repro.algebra.union`
* :class:`ProductPlan` -> :func:`repro.algebra.product`

(the extended join is represented as Select over Product, mirroring its
definition in Section 3.5).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.model.relation import ExtendedRelation
from repro.model.schema import RelationSchema
from repro.algebra.predicates import Predicate
from repro.algebra.select import select as algebra_select
from repro.algebra.project import project as algebra_project
from repro.algebra.product import product as algebra_product
from repro.algebra.union import union as algebra_union
from repro.algebra.intersection import intersection as algebra_intersection
from repro.algebra.thresholds import SN_POSITIVE, MembershipThreshold


class Plan(ABC):
    """A bound logical plan node."""

    @abstractmethod
    def schema(self) -> RelationSchema:
        """The node's output schema."""

    @abstractmethod
    def execute(self, database) -> ExtendedRelation:
        """Evaluate the node against a database catalog."""

    @abstractmethod
    def children(self) -> tuple["Plan", ...]:
        """Child plan nodes."""

    @abstractmethod
    def label(self) -> str:
        """One-line description of this node."""

    def describe(self, indent: int = 0) -> str:
        """The plan subtree as indented text (for ``EXPLAIN``)."""
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)


class ScanPlan(Plan):
    """Read a named relation from the catalog."""

    def __init__(self, name: str, schema: RelationSchema):
        self._name = name
        self._schema = schema

    @property
    def name(self) -> str:
        """The catalog name being scanned."""
        return self._name

    def schema(self) -> RelationSchema:
        return self._schema

    def execute(self, database) -> ExtendedRelation:
        return database.get(self._name)

    def children(self) -> tuple[Plan, ...]:
        return ()

    def label(self) -> str:
        return f"Scan {self._name}"


class SelectPlan(Plan):
    """Extended selection; ``predicate=None`` filters on membership only."""

    def __init__(
        self,
        child: Plan,
        predicate: Predicate | None,
        threshold: MembershipThreshold = SN_POSITIVE,
    ):
        self._child = child
        self._predicate = predicate
        self._threshold = threshold

    @property
    def predicate(self) -> Predicate | None:
        """The selection condition (``None`` for threshold-only)."""
        return self._predicate

    @property
    def threshold(self) -> MembershipThreshold:
        """The membership threshold condition Q."""
        return self._threshold

    @property
    def child(self) -> Plan:
        """The input plan."""
        return self._child

    def schema(self) -> RelationSchema:
        return self._child.schema()

    def execute(self, database) -> ExtendedRelation:
        relation = self._child.execute(database)
        if self._predicate is not None:
            return algebra_select(relation, self._predicate, self._threshold)
        kept = [
            etuple
            for etuple in relation
            if etuple.membership.is_supported and self._threshold(etuple.membership)
        ]
        return ExtendedRelation(relation.schema, kept, on_unsupported="drop")

    def children(self) -> tuple[Plan, ...]:
        return (self._child,)

    def label(self) -> str:
        predicate = repr(self._predicate) if self._predicate is not None else "-"
        return f"Select P={predicate} Q=[{self._threshold.description}]"


class ProjectPlan(Plan):
    """Extended projection."""

    def __init__(self, child: Plan, names: tuple[str, ...]):
        self._child = child
        self._names = tuple(names)
        self._schema = child.schema().project(self._names)

    @property
    def names(self) -> tuple[str, ...]:
        """The projected attribute names."""
        return self._names

    @property
    def child(self) -> Plan:
        """The input plan."""
        return self._child

    def schema(self) -> RelationSchema:
        return self._schema

    def execute(self, database) -> ExtendedRelation:
        return algebra_project(self._child.execute(database), self._names)

    def children(self) -> tuple[Plan, ...]:
        return (self._child,)

    def label(self) -> str:
        return f"Project [{', '.join(self._names)}]"


class UnionPlan(Plan):
    """Extended union (attribute-value conflict resolution)."""

    def __init__(self, left: Plan, right: Plan):
        left.schema().require_union_compatible(right.schema())
        self._left = left
        self._right = right

    @property
    def left(self) -> Plan:
        """Left input."""
        return self._left

    @property
    def right(self) -> Plan:
        """Right input."""
        return self._right

    def schema(self) -> RelationSchema:
        return self._left.schema()

    def execute(self, database) -> ExtendedRelation:
        return algebra_union(
            self._left.execute(database), self._right.execute(database)
        )

    def children(self) -> tuple[Plan, ...]:
        return (self._left, self._right)

    def label(self) -> str:
        keys = ", ".join(self._left.schema().key_names)
        return f"Union by ({keys})"


class IntersectPlan(Plan):
    """Extended intersection (consensus extension): Dempster-merge of
    the key-matched tuples only."""

    def __init__(self, left: Plan, right: Plan):
        left.schema().require_union_compatible(right.schema())
        self._left = left
        self._right = right

    @property
    def left(self) -> Plan:
        """Left input."""
        return self._left

    @property
    def right(self) -> Plan:
        """Right input."""
        return self._right

    def schema(self) -> RelationSchema:
        return self._left.schema()

    def execute(self, database) -> ExtendedRelation:
        return algebra_intersection(
            self._left.execute(database), self._right.execute(database)
        )

    def children(self) -> tuple[Plan, ...]:
        return (self._left, self._right)

    def label(self) -> str:
        keys = ", ".join(self._left.schema().key_names)
        return f"Intersect by ({keys})"


class ProductPlan(Plan):
    """Extended cartesian product."""

    def __init__(self, left: Plan, right: Plan):
        self._left = left
        self._right = right
        self._schema = left.schema().concat(right.schema())

    @property
    def left(self) -> Plan:
        """Left input."""
        return self._left

    @property
    def right(self) -> Plan:
        """Right input."""
        return self._right

    def schema(self) -> RelationSchema:
        return self._schema

    def execute(self, database) -> ExtendedRelation:
        return algebra_product(
            self._left.execute(database), self._right.execute(database)
        )

    def children(self) -> tuple[Plan, ...]:
        return (self._left, self._right)

    def label(self) -> str:
        return "Product"
