"""Logical query plans over the extended algebra.

Plans are bound trees: every node knows its output schema at build time
(binding happens in :mod:`repro.query.planner`), so attribute resolution
errors surface before execution.  Execution maps nodes 1:1 onto the
algebra operations:

* :class:`ScanPlan` -> catalog lookup
* :class:`LiteralPlan` -> an in-memory relation (no catalog involved)
* :class:`SelectPlan` -> :func:`repro.algebra.select` (a ``None``
  predicate means a pure membership-threshold filter)
* :class:`ProjectPlan` -> :func:`repro.algebra.project`
* :class:`UnionPlan` -> :func:`repro.algebra.union`
* :class:`ProductPlan` -> :func:`repro.algebra.product`
* :class:`RenamePlan` -> :func:`repro.algebra.rename`

(the extended join is represented as Select over Product, mirroring its
definition in Section 3.5).

Every node separates *recursion* from *evaluation*: :meth:`Plan.execute`
walks the tree, while :meth:`Plan.apply` evaluates one node given its
children's results.  Engines that want to share work between plans (see
:class:`repro.session.Session`) recurse themselves, memoize subtree
results by fingerprint, and call ``apply`` per node.
"""

from __future__ import annotations

import itertools

from abc import ABC, abstractmethod

from repro.model.relation import ExtendedRelation
from repro.model.schema import RelationSchema
from repro.algebra.predicates import Predicate
from repro.algebra.select import select_eager
from repro.algebra.project import project_eager
from repro.algebra.product import product_eager
from repro.algebra.union import union_with_report
from repro.algebra.intersection import intersection_with_report
from repro.algebra.rename import rename_eager
from repro.algebra.thresholds import SN_POSITIVE, MembershipThreshold


class Plan(ABC):
    """A bound logical plan node."""

    @abstractmethod
    def schema(self) -> RelationSchema:
        """The node's output schema."""

    @abstractmethod
    def apply(
        self, inputs: tuple[ExtendedRelation, ...], database
    ) -> ExtendedRelation:
        """Evaluate this node alone, given its children's results."""

    @abstractmethod
    def children(self) -> tuple["Plan", ...]:
        """Child plan nodes."""

    @abstractmethod
    def label(self) -> str:
        """One-line description of this node."""

    def execute(self, database) -> ExtendedRelation:
        """Evaluate the whole subtree against a database catalog.

        Execution runs through the physical layer
        (:mod:`repro.exec.physical`): each node lowers to a physical
        operator that may shard its work over the configured executor.
        Under the default serial configuration the physical operators
        evaluate exactly as :meth:`apply`, so results and order match
        the direct recursion bit for bit.
        """
        from repro.exec.physical import run_plan

        return run_plan(self, database)

    def describe(self, indent: int = 0) -> str:
        """The plan subtree as indented text (for ``EXPLAIN``)."""
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)


def scan_names(plan: "Plan") -> frozenset:
    """The catalog relation names a plan subtree reads (its Scan leaves).

    Literal leaves carry their own relation and depend on nothing in the
    catalog.  Sessions use this set for targeted cache invalidation.
    """
    names = set()
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, ScanPlan):
            names.add(node.name)
        stack.extend(node.children())
    return frozenset(names)


class ScanPlan(Plan):
    """Read a named relation from the catalog."""

    def __init__(self, name: str, schema: RelationSchema):
        self._name = name
        self._schema = schema

    @property
    def name(self) -> str:
        """The catalog name being scanned."""
        return self._name

    def schema(self) -> RelationSchema:
        return self._schema

    def apply(self, inputs, database) -> ExtendedRelation:
        return database.get(self._name)

    def children(self) -> tuple[Plan, ...]:
        return ()

    def label(self) -> str:
        return f"Scan {self._name}"


class LiteralPlan(Plan):
    """An in-memory relation used directly as a plan leaf.

    This is how the eager ``algebra.*`` wrappers phrase a single
    operation as a one-node plan, and how expressions mix catalog
    relations with ad-hoc ones.  Each instance carries a process-unique
    token so two literals never alias in a plan/result cache.
    """

    _counter = itertools.count(1)

    def __init__(self, relation: ExtendedRelation):
        self._relation = relation
        self._token = next(LiteralPlan._counter)

    @property
    def relation(self) -> ExtendedRelation:
        """The wrapped relation."""
        return self._relation

    @property
    def token(self) -> int:
        """Process-unique identity token (cache-key salt)."""
        return self._token

    def schema(self) -> RelationSchema:
        return self._relation.schema

    def apply(self, inputs, database) -> ExtendedRelation:
        return self._relation

    def children(self) -> tuple[Plan, ...]:
        return ()

    def label(self) -> str:
        return f"Literal {self._relation.name} ({len(self._relation)} tuples)"


class SelectPlan(Plan):
    """Extended selection; ``predicate=None`` filters on membership only."""

    def __init__(
        self,
        child: Plan,
        predicate: Predicate | None,
        threshold: MembershipThreshold = SN_POSITIVE,
    ):
        self._child = child
        self._predicate = predicate
        self._threshold = threshold

    @property
    def predicate(self) -> Predicate | None:
        """The selection condition (``None`` for threshold-only)."""
        return self._predicate

    @property
    def threshold(self) -> MembershipThreshold:
        """The membership threshold condition Q."""
        return self._threshold

    @property
    def child(self) -> Plan:
        """The input plan."""
        return self._child

    def schema(self) -> RelationSchema:
        return self._child.schema()

    def apply(self, inputs, database) -> ExtendedRelation:
        (relation,) = inputs
        if self._predicate is not None:
            return select_eager(relation, self._predicate, self._threshold)
        kept = [
            etuple
            for etuple in relation
            if etuple.membership.is_supported and self._threshold(etuple.membership)
        ]
        return ExtendedRelation(relation.schema, kept, on_unsupported="drop")

    def children(self) -> tuple[Plan, ...]:
        return (self._child,)

    def label(self) -> str:
        predicate = repr(self._predicate) if self._predicate is not None else "-"
        return f"Select P={predicate} Q=[{self._threshold.description}]"


class ProjectPlan(Plan):
    """Extended projection."""

    def __init__(self, child: Plan, names: tuple[str, ...]):
        self._child = child
        self._names = tuple(names)
        self._schema = child.schema().project(self._names)

    @property
    def names(self) -> tuple[str, ...]:
        """The projected attribute names."""
        return self._names

    @property
    def child(self) -> Plan:
        """The input plan."""
        return self._child

    def schema(self) -> RelationSchema:
        return self._schema

    def apply(self, inputs, database) -> ExtendedRelation:
        return project_eager(inputs[0], self._names)

    def children(self) -> tuple[Plan, ...]:
        return (self._child,)

    def label(self) -> str:
        return f"Project [{', '.join(self._names)}]"


class RenamePlan(Plan):
    """Attribute renaming (plumbing; touches no values or memberships)."""

    def __init__(self, child: Plan, mapping: dict[str, str]):
        self._child = child
        self._mapping = dict(mapping)
        self._schema = child.schema().rename_attributes(self._mapping)

    @property
    def mapping(self) -> dict[str, str]:
        """The ``{old: new}`` attribute renaming."""
        return dict(self._mapping)

    @property
    def child(self) -> Plan:
        """The input plan."""
        return self._child

    def schema(self) -> RelationSchema:
        return self._schema

    def apply(self, inputs, database) -> ExtendedRelation:
        return rename_eager(inputs[0], self._mapping)

    def children(self) -> tuple[Plan, ...]:
        return (self._child,)

    def label(self) -> str:
        pairs = ", ".join(
            f"{old}->{new}" for old, new in sorted(self._mapping.items())
        )
        return f"Rename [{pairs}]"


class UnionPlan(Plan):
    """Extended union (attribute-value conflict resolution)."""

    def __init__(self, left: Plan, right: Plan, on_conflict: str = "raise"):
        left.schema().require_union_compatible(right.schema())
        self._left = left
        self._right = right
        self._on_conflict = on_conflict

    @property
    def left(self) -> Plan:
        """Left input."""
        return self._left

    @property
    def right(self) -> Plan:
        """Right input."""
        return self._right

    @property
    def on_conflict(self) -> str:
        """Total-conflict policy (``raise`` / ``vacuous`` / ``drop``)."""
        return self._on_conflict

    def schema(self) -> RelationSchema:
        return self._left.schema()

    def apply(self, inputs, database) -> ExtendedRelation:
        merged, _ = union_with_report(
            inputs[0], inputs[1], on_conflict=self._on_conflict
        )
        return merged

    def children(self) -> tuple[Plan, ...]:
        return (self._left, self._right)

    def label(self) -> str:
        keys = ", ".join(self._left.schema().key_names)
        return f"Union by ({keys})"


class IntersectPlan(Plan):
    """Extended intersection (consensus extension): Dempster-merge of
    the key-matched tuples only."""

    def __init__(self, left: Plan, right: Plan, on_conflict: str = "raise"):
        left.schema().require_union_compatible(right.schema())
        self._left = left
        self._right = right
        self._on_conflict = on_conflict

    @property
    def left(self) -> Plan:
        """Left input."""
        return self._left

    @property
    def right(self) -> Plan:
        """Right input."""
        return self._right

    @property
    def on_conflict(self) -> str:
        """Total-conflict policy (``raise`` / ``vacuous`` / ``drop``)."""
        return self._on_conflict

    def schema(self) -> RelationSchema:
        return self._left.schema()

    def apply(self, inputs, database) -> ExtendedRelation:
        merged, _ = intersection_with_report(
            inputs[0], inputs[1], on_conflict=self._on_conflict
        )
        return merged

    def children(self) -> tuple[Plan, ...]:
        return (self._left, self._right)

    def label(self) -> str:
        keys = ", ".join(self._left.schema().key_names)
        return f"Intersect by ({keys})"


class ProductPlan(Plan):
    """Extended cartesian product."""

    def __init__(self, left: Plan, right: Plan):
        self._left = left
        self._right = right
        self._schema = left.schema().concat(right.schema())

    @property
    def left(self) -> Plan:
        """Left input."""
        return self._left

    @property
    def right(self) -> Plan:
        """Right input."""
        return self._right

    def schema(self) -> RelationSchema:
        return self._schema

    def apply(self, inputs, database) -> ExtendedRelation:
        return product_eager(inputs[0], inputs[1])

    def children(self) -> tuple[Plan, ...]:
        return (self._left, self._right)

    def label(self) -> str:
        return "Product"
