"""Token definitions for the query language."""

from __future__ import annotations

from dataclasses import dataclass

#: Reserved words (matched case-insensitively; stored upper-case).
KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "WITH",
        "IS",
        "AND",
        "OR",
        "NOT",
        "UNION",
        "INTERSECT",
        "JOIN",
        "ON",
        "BY",
        "SN",
        "SP",
    }
)

#: Token kinds produced by the lexer.
KIND_KEYWORD = "KEYWORD"
KIND_IDENT = "IDENT"
KIND_NUMBER = "NUMBER"
KIND_STRING = "STRING"
KIND_EVIDENCE = "EVIDENCE"  # a raw [ ... ] evidence-set literal
KIND_SYMBOL = "SYMBOL"
KIND_EOF = "EOF"

#: Multi- and single-character symbols, longest first.
SYMBOLS = ("<=", ">=", "==", "(", ")", "{", "}", ",", ";", "*", "=", "<", ">", ".")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset (for error messages)."""

    kind: str
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """``True`` when this token is the given keyword."""
        return self.kind == KIND_KEYWORD and self.value == word

    def is_symbol(self, symbol: str) -> bool:
        """``True`` when this token is the given symbol."""
        return self.kind == KIND_SYMBOL and self.value == symbol

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}@{self.position})"
