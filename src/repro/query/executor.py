"""Front door of the query layer: text in, extended relation out."""

from __future__ import annotations

from repro.model.relation import ExtendedRelation
from repro.query.parser import parse
from repro.query.planner import build_plan, optimize


def execute(text: str, database) -> ExtendedRelation:
    """Parse, plan, optimize and run a query against *database*.

    >>> from repro.storage import Database
    >>> from repro.datasets.restaurants import table_ra
    >>> db = Database(); db.add(table_ra())
    >>> result = db.query("SELECT rname FROM RA WHERE speciality IS {si}")
    >>> sorted(t.key()[0] for t in result)
    ['garden', 'wok']
    """
    plan = optimize(build_plan(parse(text), database))
    return plan.execute(database)


def explain(text: str, database) -> str:
    """The optimized logical plan of a query, as indented text."""
    plan = optimize(build_plan(parse(text), database))
    return plan.describe()
