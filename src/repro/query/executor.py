"""Front door of the query layer: text in, extended relation out.

Both functions lower the query text into the same plan IR the fluent
expression builder (:mod:`repro.expr`) produces; :func:`compile_text`
exposes that lowering so engines like :class:`repro.session.Session`
can cache and share the resulting plans.
"""

from __future__ import annotations

from repro.model.relation import ExtendedRelation
from repro.query.parser import parse
from repro.query.planner import build_plan, optimize
from repro.query.plans import Plan


def compile_text(text: str, database, optimized: bool = True) -> Plan:
    """Parse and bind *text* into a (by default optimized) logical plan."""
    plan = build_plan(parse(text), database)
    return optimize(plan) if optimized else plan


def execute(text: str, database) -> ExtendedRelation:
    """Parse, plan, optimize and run a query against *database*.

    >>> from repro.storage import Database
    >>> from repro.datasets.restaurants import table_ra
    >>> db = Database(); db.add(table_ra())
    >>> result = db.query("SELECT rname FROM RA WHERE speciality IS {si}")
    >>> sorted(t.key()[0] for t in result)
    ['garden', 'wok']
    """
    return compile_text(text, database).execute(database)


def explain(text: str, database) -> str:
    """The optimized logical plan of a query, as indented text."""
    return compile_text(text, database).describe()
