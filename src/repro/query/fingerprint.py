"""Canonical plan fingerprints.

A fingerprint is a digest of a plan's *canonical form*: a deterministic
s-expression rendering in which every node spells out its operation,
its bound arguments (predicates, thresholds, projections, renamings)
and its children.  Two plans have equal fingerprints iff they describe
the same computation over the same catalog names, regardless of whether
they came from the SQL front end or the fluent expression builder --
this is what lets :class:`repro.session.Session` cache and share
results across both entry points.

The per-operation ``*_key`` helpers are the single source of that
grammar: :func:`plan_key` renders bound plan nodes with them, and the
unbound expression nodes in :mod:`repro.expr` render their cache keys
with the same helpers, so the two spellings cannot drift apart.

Predicates render via their ``repr``, which is deterministic by
construction (is-predicate value sets are sorted); thresholds render
via their ``description``.  :class:`~repro.query.plans.LiteralPlan`
leaves carry a process-unique token so ad-hoc relations never alias a
cache entry.
"""

from __future__ import annotations

import hashlib

from repro.errors import PlanError
from repro.query.plans import (
    IntersectPlan,
    LiteralPlan,
    Plan,
    ProductPlan,
    ProjectPlan,
    RenamePlan,
    ScanPlan,
    SelectPlan,
    UnionPlan,
)


# -- the canonical grammar, one helper per operation ------------------------


def scan_key(name: str) -> str:
    return f"(scan {name})"


def literal_key(name: str, token: int) -> str:
    return f"(literal {name} #{token})"


def select_key(predicate, threshold, child: str) -> str:
    rendered = repr(predicate) if predicate is not None else "-"
    return f"(select p={rendered} q=[{threshold.description}] {child})"


def project_key(names: tuple[str, ...], child: str) -> str:
    return f"(project {tuple(names)!r} {child})"


def rename_key(mapping, child: str) -> str:
    pairs = ",".join(f"{old}->{new}" for old, new in sorted(mapping.items()))
    return f"(rename [{pairs}] {child})"


def merge_key(operation: str, on_conflict: str, left: str, right: str) -> str:
    """Shared shape of the two key-matched merges (union / intersect)."""
    return f"({operation} conflict={on_conflict} {left} {right})"


def product_key(left: str, right: str) -> str:
    return f"(product {left} {right})"


# -- rendering bound plans ---------------------------------------------------


def plan_key(plan: Plan) -> str:
    """The canonical s-expression of *plan* (human-readable cache key).

    >>> from repro.storage import Database
    >>> from repro.datasets.restaurants import table_ra
    >>> from repro.query.parser import parse
    >>> from repro.query.planner import build_plan
    >>> db = Database(); db.add(table_ra())
    >>> plan_key(build_plan(parse("SELECT rname FROM RA"), db))
    "(project ('rname',) (scan RA))"
    """
    if isinstance(plan, ScanPlan):
        return scan_key(plan.name)
    if isinstance(plan, LiteralPlan):
        return literal_key(plan.relation.name, plan.token)
    if isinstance(plan, SelectPlan):
        return select_key(plan.predicate, plan.threshold, plan_key(plan.child))
    if isinstance(plan, ProjectPlan):
        return project_key(plan.names, plan_key(plan.child))
    if isinstance(plan, RenamePlan):
        return rename_key(plan.mapping, plan_key(plan.child))
    if isinstance(plan, UnionPlan):
        return merge_key(
            "union", plan.on_conflict, plan_key(plan.left), plan_key(plan.right)
        )
    if isinstance(plan, IntersectPlan):
        return merge_key(
            "intersect", plan.on_conflict, plan_key(plan.left), plan_key(plan.right)
        )
    if isinstance(plan, ProductPlan):
        return product_key(plan_key(plan.left), plan_key(plan.right))
    raise PlanError(f"cannot fingerprint plan node {plan!r}")


def fingerprint(plan: Plan) -> str:
    """A short stable digest of :func:`plan_key` (sha256, 16 hex chars)."""
    return hashlib.sha256(plan_key(plan).encode("utf-8")).hexdigest()[:16]
