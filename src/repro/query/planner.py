"""Binding and optimizing query plans.

:func:`build_plan` binds an AST against a database catalog: relation
names resolve to schemas, attribute references (including dotted ones
like ``RA.rname``, which map to the product schema's prefixed
``RA_rname``) resolve to schema attributes, and syntactic conditions
become algebra predicates.

:func:`optimize` applies semantics-preserving rewrites:

* **selection pushdown through product** -- conjuncts referencing only
  one side of a product move below it.  Valid because the membership
  revision is the multiplicative ``F_TM``: the factors commute, and
  tuples eliminated early would have reached ``sn = 0`` anyway.
* **adjacent selection fusion** -- ``select(select(R, P1, sn>0), P2, Q)``
  becomes ``select(R, P1 and P2, Q)`` (the multiplicative rule is
  associative).
* **projection pushdown below selection** -- when the predicate only
  uses projected attributes.
* **adjacent projection fusion**.

Deliberately **no pushdown through the extended union**: the union
Dempster-combines matched tuples, and combining *then* selecting is not
the same as selecting *then* combining (filtering a source before the
union would both change which tuples match and let an unmatched
low-support tuple pass through unrevised).  The test-suite pins this
down with a counterexample.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import PlanError
from repro.model.evidence import EvidenceSet
from repro.model.schema import RelationSchema
from repro.algebra.predicates import (
    And,
    AttributeOperand,
    IsPredicate,
    LiteralOperand,
    Not,
    Or,
    Predicate,
    ThetaPredicate,
)
from repro.algebra.thresholds import SN_POSITIVE, MembershipThreshold
from repro.query import ast
from repro.query.parser import parse
from repro.query.plans import (
    IntersectPlan,
    Plan,
    ProductPlan,
    ProjectPlan,
    RenamePlan,
    ScanPlan,
    SelectPlan,
    UnionPlan,
)


# ---------------------------------------------------------------------------
# Binding
# ---------------------------------------------------------------------------


def _resolve_name(ref: ast.NameRef, schema: RelationSchema) -> str:
    """Resolve a (possibly dotted) attribute reference against a schema."""
    if ref.qualifier is not None:
        prefixed = f"{ref.qualifier}_{ref.name}"
        if prefixed in schema:
            return prefixed
        if ref.name in schema:
            return ref.name
        raise PlanError(
            f"cannot resolve {ref.render()!r} against relation "
            f"{schema.name!r} (attributes: {', '.join(schema.names)})"
        )
    if ref.name in schema:
        return ref.name
    raise PlanError(
        f"unknown attribute {ref.name!r} of relation {schema.name!r} "
        f"(attributes: {', '.join(schema.names)})"
    )


def _bind_operand(node, schema: RelationSchema):
    if isinstance(node, ast.NameRef):
        return AttributeOperand(_resolve_name(node, schema))
    if isinstance(node, ast.ValueLiteral):
        value = node.value
        if isinstance(value, float):
            value = Fraction(str(value))
        return LiteralOperand(value)
    if isinstance(node, ast.EvidenceLiteral):
        return LiteralOperand(EvidenceSet.parse(node.text))
    raise PlanError(f"cannot bind operand {node!r}")


def _bind_condition(node, schema: RelationSchema) -> Predicate:
    if isinstance(node, ast.IsCondition):
        return IsPredicate(_resolve_name(node.attribute, schema), node.values)
    if isinstance(node, ast.CompareCondition):
        return ThetaPredicate(
            _bind_operand(node.left, schema),
            node.op,
            _bind_operand(node.right, schema),
        )
    if isinstance(node, ast.AndCondition):
        return And(*[_bind_condition(part, schema) for part in node.parts])
    if isinstance(node, ast.OrCondition):
        return Or(*[_bind_condition(part, schema) for part in node.parts])
    if isinstance(node, ast.NotCondition):
        return Not(_bind_condition(node.part, schema))
    raise PlanError(f"cannot bind condition {node!r}")


_THRESHOLD_CHECKS = {
    ("sn", ">"): lambda bound: lambda tm: tm.sn > bound,
    ("sn", ">="): lambda bound: lambda tm: tm.sn >= bound,
    ("sn", "="): lambda bound: lambda tm: tm.sn == bound,
    ("sn", "<"): lambda bound: lambda tm: tm.sn < bound,
    ("sn", "<="): lambda bound: lambda tm: tm.sn <= bound,
    ("sp", ">"): lambda bound: lambda tm: tm.sp > bound,
    ("sp", ">="): lambda bound: lambda tm: tm.sp >= bound,
    ("sp", "="): lambda bound: lambda tm: tm.sp == bound,
    ("sp", "<"): lambda bound: lambda tm: tm.sp < bound,
    ("sp", "<="): lambda bound: lambda tm: tm.sp <= bound,
}


def _bind_thresholds(terms: tuple[ast.ThresholdTerm, ...]) -> MembershipThreshold:
    threshold = SN_POSITIVE
    for term in terms:
        try:
            make_check = _THRESHOLD_CHECKS[(term.field, term.op)]
        except KeyError:
            raise PlanError(
                f"unsupported threshold {term.field} {term.op}"
            ) from None
        threshold = threshold & MembershipThreshold(
            make_check(term.bound), f"{term.field} {term.op} {term.bound}"
        )
    return threshold


def _bind_source(node, database) -> Plan:
    if isinstance(node, ast.RelationSource):
        relation = database.get(node.name)
        return ScanPlan(node.name, relation.schema)
    if isinstance(node, ast.JoinSource):
        left = _bind_source(node.left, database)
        right = _bind_source(node.right, database)
        paired = ProductPlan(left, right)
        predicate = _bind_condition(node.condition, paired.schema())
        return SelectPlan(paired, predicate, SN_POSITIVE)
    if isinstance(node, ast.SubquerySource):
        return build_plan(node.query, database)
    raise PlanError(f"cannot bind source {node!r}")


def build_plan(statement, database) -> Plan:
    """Bind a parsed statement into a logical plan.

    >>> from repro.storage import Database
    >>> from repro.datasets.restaurants import table_ra
    >>> db = Database(); db.add(table_ra())
    >>> plan = build_plan(parse("SELECT rname FROM RA"), db)
    >>> print(plan.describe())
    Project [rname]
      Scan RA
    """
    if isinstance(statement, ast.SelectStatement):
        plan = _bind_source(statement.source, database)
        if statement.condition is not None or statement.thresholds:
            predicate = (
                _bind_condition(statement.condition, plan.schema())
                if statement.condition is not None
                else None
            )
            threshold = _bind_thresholds(statement.thresholds)
            plan = SelectPlan(plan, predicate, threshold)
        if statement.projection is not None:
            try:
                plan = ProjectPlan(plan, statement.projection)
            except Exception as exc:
                raise PlanError(str(exc)) from exc
        return plan
    if isinstance(statement, ast.UnionStatement):
        left = _bind_source(statement.left, database)
        right = _bind_source(statement.right, database)
        if statement.operator == "intersect":
            plan: Plan = IntersectPlan(left, right)
        else:
            plan = UnionPlan(left, right)
        if statement.keys is not None:
            actual = set(plan.schema().key_names)
            if set(statement.keys) != actual:
                raise PlanError(
                    f"UNION BY ({', '.join(statement.keys)}) does not match "
                    f"the key attributes ({', '.join(sorted(actual))})"
                )
        return plan
    raise PlanError(f"cannot plan statement {statement!r}")


# ---------------------------------------------------------------------------
# Optimization
# ---------------------------------------------------------------------------


def _is_trivial_threshold(threshold: MembershipThreshold) -> bool:
    return threshold is SN_POSITIVE or threshold.description == "sn > 0"


def _conjuncts(predicate: Predicate | None) -> list[Predicate]:
    if predicate is None:
        return []
    if isinstance(predicate, And):
        return list(predicate.parts)
    return [predicate]


def _conjoin(parts: list[Predicate]) -> Predicate | None:
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return And(*parts)


def optimize(plan: Plan) -> Plan:
    """Apply the rewrite rules bottom-up until a fixpoint."""
    changed = True
    while changed:
        plan, changed = _rewrite(plan)
    return plan


def _rewrite(plan: Plan) -> tuple[Plan, bool]:
    # Rewrite children first.
    if isinstance(plan, SelectPlan):
        child, changed = _rewrite(plan.child)
        plan = SelectPlan(child, plan.predicate, plan.threshold) if changed else plan
        rewritten, local = _rewrite_select(plan)
        return rewritten, changed or local
    if isinstance(plan, ProjectPlan):
        child, changed = _rewrite(plan.child)
        plan = ProjectPlan(child, plan.names) if changed else plan
        rewritten, local = _rewrite_project(plan)
        return rewritten, changed or local
    if isinstance(plan, UnionPlan):
        left, left_changed = _rewrite(plan.left)
        right, right_changed = _rewrite(plan.right)
        if left_changed or right_changed:
            return UnionPlan(left, right, plan.on_conflict), True
        return plan, False
    if isinstance(plan, IntersectPlan):
        # No pushdown through an intersection either: it Dempster-merges
        # matched tuples exactly like the union.
        left, left_changed = _rewrite(plan.left)
        right, right_changed = _rewrite(plan.right)
        if left_changed or right_changed:
            return IntersectPlan(left, right, plan.on_conflict), True
        return plan, False
    if isinstance(plan, RenamePlan):
        # No rewrites across a rename: it is pure plumbing and rare
        # enough that translating predicates through it is not worth it.
        child, changed = _rewrite(plan.child)
        if changed:
            return RenamePlan(child, plan.mapping), True
        return plan, False
    if isinstance(plan, ProductPlan):
        left, left_changed = _rewrite(plan.left)
        right, right_changed = _rewrite(plan.right)
        if left_changed or right_changed:
            return ProductPlan(left, right), True
        return plan, False
    return plan, False


def _rewrite_select(plan: SelectPlan) -> tuple[Plan, bool]:
    child = plan.child
    # Fuse adjacent selections when the inner threshold is trivial.
    if isinstance(child, SelectPlan) and _is_trivial_threshold(child.threshold):
        merged = _conjoin(_conjuncts(child.predicate) + _conjuncts(plan.predicate))
        return SelectPlan(child.child, merged, plan.threshold), True
    # Push single-side conjuncts below a product -- also through an
    # intervening projection (projection neither renames attributes nor
    # touches memberships, so the multiplicative revision commutes).
    through_project: ProjectPlan | None = None
    product_child: ProductPlan | None = None
    if isinstance(child, ProductPlan):
        product_child = child
    elif isinstance(child, ProjectPlan) and isinstance(child.child, ProductPlan):
        through_project = child
        product_child = child.child
    if product_child is not None and plan.predicate is not None:
        from repro.algebra.product import _rename_map

        left_schema = product_child.left.schema()
        right_schema = product_child.right.schema()
        # original -> product-visible name on each side...
        left_renames = _rename_map(left_schema, right_schema)
        right_renames = _rename_map(right_schema, left_schema)
        # ...and back, to translate pushed predicates into scan names.
        left_restore = {new: old for old, new in left_renames.items()}
        right_restore = {new: old for old, new in right_renames.items()}
        push_left: list[Predicate] = []
        push_right: list[Predicate] = []
        keep: list[Predicate] = []
        for conjunct in _conjuncts(plan.predicate):
            attrs = conjunct.attributes()
            if attrs and attrs <= set(left_restore):
                push_left.append(conjunct.rename_attributes(left_restore))
            elif attrs and attrs <= set(right_restore):
                push_right.append(conjunct.rename_attributes(right_restore))
            else:
                keep.append(conjunct)
        if push_left or push_right:
            left = product_child.left
            right = product_child.right
            if push_left:
                left = SelectPlan(left, _conjoin(push_left), SN_POSITIVE)
            if push_right:
                right = SelectPlan(right, _conjoin(push_right), SN_POSITIVE)
            inner: Plan = ProductPlan(left, right)
            if through_project is not None:
                inner = ProjectPlan(inner, through_project.names)
            remaining = _conjoin(keep)
            if remaining is None and _is_trivial_threshold(plan.threshold):
                return inner, True
            return SelectPlan(inner, remaining, plan.threshold), True
    return plan, False


def _rewrite_project(plan: ProjectPlan) -> tuple[Plan, bool]:
    child = plan.child
    # Fuse adjacent projections.
    if isinstance(child, ProjectPlan):
        return ProjectPlan(child.child, plan.names), True
    # Push a projection below a selection that only reads projected attrs.
    if isinstance(child, SelectPlan):
        predicate_attrs = (
            child.predicate.attributes() if child.predicate is not None else frozenset()
        )
        if predicate_attrs <= set(plan.names) and not isinstance(
            child.child, ProjectPlan
        ):
            pushed = ProjectPlan(child.child, plan.names)
            return SelectPlan(pushed, child.predicate, child.threshold), True
    return plan, False
