"""Binding and optimizing query plans.

:func:`build_plan` binds an AST against a database catalog: relation
names resolve to schemas, attribute references (including dotted ones
like ``RA.rname``, which map to the product schema's prefixed
``RA_rname``) resolve to schema attributes, and syntactic conditions
become algebra predicates.

:func:`optimize` normalizes the bound plan through the explicit rewrite
pass pipeline of :mod:`repro.exec.rewrite` (selection fusion and
pushdown through products, projection pruning -- see that module for
the rules and the reasons there is deliberately no pushdown through the
extended union), so physical lowering (:mod:`repro.exec.physical`)
always sees normalized plans.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import PlanError
from repro.model.evidence import EvidenceSet
from repro.model.schema import RelationSchema
from repro.algebra.predicates import (
    And,
    AttributeOperand,
    IsPredicate,
    LiteralOperand,
    Not,
    Or,
    Predicate,
    ThetaPredicate,
)
from repro.algebra.thresholds import SN_POSITIVE, MembershipThreshold
from repro.query import ast
from repro.query.parser import parse
from repro.query.plans import (
    IntersectPlan,
    Plan,
    ProductPlan,
    ProjectPlan,
    ScanPlan,
    SelectPlan,
    UnionPlan,
)


# ---------------------------------------------------------------------------
# Binding
# ---------------------------------------------------------------------------


def _resolve_name(ref: ast.NameRef, schema: RelationSchema) -> str:
    """Resolve a (possibly dotted) attribute reference against a schema."""
    if ref.qualifier is not None:
        prefixed = f"{ref.qualifier}_{ref.name}"
        if prefixed in schema:
            return prefixed
        if ref.name in schema:
            return ref.name
        raise PlanError(
            f"cannot resolve {ref.render()!r} against relation "
            f"{schema.name!r} (attributes: {', '.join(schema.names)})"
        )
    if ref.name in schema:
        return ref.name
    raise PlanError(
        f"unknown attribute {ref.name!r} of relation {schema.name!r} "
        f"(attributes: {', '.join(schema.names)})"
    )


def _bind_operand(node, schema: RelationSchema):
    if isinstance(node, ast.NameRef):
        return AttributeOperand(_resolve_name(node, schema))
    if isinstance(node, ast.ValueLiteral):
        value = node.value
        if isinstance(value, float):
            value = Fraction(str(value))
        return LiteralOperand(value)
    if isinstance(node, ast.EvidenceLiteral):
        return LiteralOperand(EvidenceSet.parse(node.text))
    raise PlanError(f"cannot bind operand {node!r}")


def _bind_condition(node, schema: RelationSchema) -> Predicate:
    if isinstance(node, ast.IsCondition):
        return IsPredicate(_resolve_name(node.attribute, schema), node.values)
    if isinstance(node, ast.CompareCondition):
        return ThetaPredicate(
            _bind_operand(node.left, schema),
            node.op,
            _bind_operand(node.right, schema),
        )
    if isinstance(node, ast.AndCondition):
        return And(*[_bind_condition(part, schema) for part in node.parts])
    if isinstance(node, ast.OrCondition):
        return Or(*[_bind_condition(part, schema) for part in node.parts])
    if isinstance(node, ast.NotCondition):
        return Not(_bind_condition(node.part, schema))
    raise PlanError(f"cannot bind condition {node!r}")


_THRESHOLD_CHECKS = {
    ("sn", ">"): lambda bound: lambda tm: tm.sn > bound,
    ("sn", ">="): lambda bound: lambda tm: tm.sn >= bound,
    ("sn", "="): lambda bound: lambda tm: tm.sn == bound,
    ("sn", "<"): lambda bound: lambda tm: tm.sn < bound,
    ("sn", "<="): lambda bound: lambda tm: tm.sn <= bound,
    ("sp", ">"): lambda bound: lambda tm: tm.sp > bound,
    ("sp", ">="): lambda bound: lambda tm: tm.sp >= bound,
    ("sp", "="): lambda bound: lambda tm: tm.sp == bound,
    ("sp", "<"): lambda bound: lambda tm: tm.sp < bound,
    ("sp", "<="): lambda bound: lambda tm: tm.sp <= bound,
}


def _bind_thresholds(terms: tuple[ast.ThresholdTerm, ...]) -> MembershipThreshold:
    threshold = SN_POSITIVE
    for term in terms:
        try:
            make_check = _THRESHOLD_CHECKS[(term.field, term.op)]
        except KeyError:
            raise PlanError(
                f"unsupported threshold {term.field} {term.op}"
            ) from None
        threshold = threshold & MembershipThreshold(
            make_check(term.bound), f"{term.field} {term.op} {term.bound}"
        )
    return threshold


def _bind_source(node, database) -> Plan:
    if isinstance(node, ast.RelationSource):
        relation = database.get(node.name)
        return ScanPlan(node.name, relation.schema)
    if isinstance(node, ast.JoinSource):
        left = _bind_source(node.left, database)
        right = _bind_source(node.right, database)
        paired = ProductPlan(left, right)
        predicate = _bind_condition(node.condition, paired.schema())
        return SelectPlan(paired, predicate, SN_POSITIVE)
    if isinstance(node, ast.SubquerySource):
        return build_plan(node.query, database)
    raise PlanError(f"cannot bind source {node!r}")


def build_plan(statement, database) -> Plan:
    """Bind a parsed statement into a logical plan.

    >>> from repro.storage import Database
    >>> from repro.datasets.restaurants import table_ra
    >>> db = Database(); db.add(table_ra())
    >>> plan = build_plan(parse("SELECT rname FROM RA"), db)
    >>> print(plan.describe())
    Project [rname]
      Scan RA
    """
    if isinstance(statement, ast.SelectStatement):
        plan = _bind_source(statement.source, database)
        if statement.condition is not None or statement.thresholds:
            predicate = (
                _bind_condition(statement.condition, plan.schema())
                if statement.condition is not None
                else None
            )
            threshold = _bind_thresholds(statement.thresholds)
            plan = SelectPlan(plan, predicate, threshold)
        if statement.projection is not None:
            try:
                plan = ProjectPlan(plan, statement.projection)
            except Exception as exc:
                raise PlanError(str(exc)) from exc
        return plan
    if isinstance(statement, ast.UnionStatement):
        left = _bind_source(statement.left, database)
        right = _bind_source(statement.right, database)
        if statement.operator == "intersect":
            plan: Plan = IntersectPlan(left, right)
        else:
            plan = UnionPlan(left, right)
        if statement.keys is not None:
            actual = set(plan.schema().key_names)
            if set(statement.keys) != actual:
                raise PlanError(
                    f"UNION BY ({', '.join(statement.keys)}) does not match "
                    f"the key attributes ({', '.join(sorted(actual))})"
                )
        return plan
    raise PlanError(f"cannot plan statement {statement!r}")


# ---------------------------------------------------------------------------
# Optimization
# ---------------------------------------------------------------------------


def optimize(plan: Plan) -> Plan:
    """Normalize *plan* through the standard rewrite pass pipeline.

    A thin wrapper kept for backward compatibility; the passes
    themselves live in :mod:`repro.exec.rewrite`.
    """
    from repro.exec.rewrite import default_pipeline

    return default_pipeline().run(plan)
