"""Recursive-descent parser for the query language.

Grammar (keywords case-insensitive)::

    statement  := query ';'? EOF
    query      := select | union
    union      := source UNION source (BY '(' ident (',' ident)* ')')?
    select     := SELECT projection FROM source (WHERE condition)?
                  (WITH thresholds)?
    projection := '*' | ident (',' ident)*
    source     := primary (JOIN primary ON condition)*
    primary    := ident | '(' query ')'
    condition  := conjunct (OR conjunct)*
    conjunct   := factor (AND factor)*
    factor     := NOT factor | '(' condition ')' | atom
    atom       := operand IS setlit | operand cmp operand
    operand    := name | NUMBER | STRING | EVIDENCE
    name       := ident ('.' ident)?
    setlit     := '{' value (',' value)* '}'
    thresholds := thresh (AND thresh)*
    thresh     := (SN | SP) cmp NUMBER
    cmp        := '=' | '==' | '<' | '>' | '<=' | '>='
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import ParseError
from repro.ds.notation import parse_atom
from repro.query import ast
from repro.query.lexer import tokenize
from repro.query.tokens import (
    KIND_EOF,
    KIND_EVIDENCE,
    KIND_IDENT,
    KIND_KEYWORD,
    KIND_NUMBER,
    KIND_STRING,
    Token,
)

_COMPARISONS = ("<=", ">=", "==", "=", "<", ">")


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.kind != KIND_EOF:
            self._index += 1
        return token

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        token = self._advance()
        if not (token.kind == KIND_KEYWORD and token.value == word):
            raise ParseError(
                f"expected {word}, got {token.value!r} at offset {token.position}"
            )

    def _accept_symbol(self, symbol: str) -> bool:
        if self._peek().is_symbol(symbol):
            self._advance()
            return True
        return False

    def _expect_symbol(self, symbol: str) -> None:
        token = self._advance()
        if not token.is_symbol(symbol):
            raise ParseError(
                f"expected {symbol!r}, got {token.value!r} at offset "
                f"{token.position}"
            )

    def _expect_ident(self) -> str:
        token = self._advance()
        if token.kind != KIND_IDENT:
            raise ParseError(
                f"expected an identifier, got {token.value!r} at offset "
                f"{token.position}"
            )
        return token.value

    # -- grammar ----------------------------------------------------------------

    def parse_statement(self):
        query = self._parse_query()
        self._accept_symbol(";")
        token = self._peek()
        if token.kind != KIND_EOF:
            raise ParseError(
                f"trailing input {token.value!r} at offset {token.position}"
            )
        return query

    def _parse_query(self):
        if self._peek().is_keyword("SELECT"):
            statement = self._parse_select()
            # A top-level select may still be the left arm of a UNION.
            if self._peek().is_keyword("UNION") or self._peek().is_keyword(
                "INTERSECT"
            ):
                raise ParseError(
                    "UNION/INTERSECT take relation or parenthesized-query "
                    "sources; wrap the SELECT in parentheses"
                )
            return statement
        return self._parse_union_or_source_query()

    def _parse_union_or_source_query(self):
        left = self._parse_source()
        operator = None
        if self._accept_keyword("UNION"):
            operator = "union"
        elif self._accept_keyword("INTERSECT"):
            operator = "intersect"
        if operator is not None:
            right = self._parse_source()
            keys: tuple[str, ...] | None = None
            if self._accept_keyword("BY"):
                self._expect_symbol("(")
                names = [self._expect_ident()]
                while self._accept_symbol(","):
                    names.append(self._expect_ident())
                self._expect_symbol(")")
                keys = tuple(names)
            return ast.UnionStatement(left, right, keys, operator)
        if isinstance(left, ast.SubquerySource):
            return left.query
        if isinstance(left, ast.RelationSource):
            # A bare relation name is shorthand for SELECT * FROM name.
            return ast.SelectStatement(None, left, None, ())
        return ast.SelectStatement(None, left, None, ())

    def _parse_select(self):
        self._expect_keyword("SELECT")
        projection: tuple[str, ...] | None
        if self._accept_symbol("*"):
            projection = None
        else:
            names = [self._expect_ident()]
            while self._accept_symbol(","):
                names.append(self._expect_ident())
            projection = tuple(names)
        self._expect_keyword("FROM")
        source = self._parse_source()
        condition = None
        if self._accept_keyword("WHERE"):
            condition = self._parse_condition()
        thresholds: tuple[ast.ThresholdTerm, ...] = ()
        if self._accept_keyword("WITH"):
            thresholds = self._parse_thresholds()
        return ast.SelectStatement(projection, source, condition, thresholds)

    def _parse_source(self):
        source = self._parse_primary_source()
        while self._accept_keyword("JOIN"):
            right = self._parse_primary_source()
            self._expect_keyword("ON")
            condition = self._parse_condition()
            source = ast.JoinSource(source, right, condition)
        return source

    def _parse_primary_source(self):
        if self._accept_symbol("("):
            query = self._parse_query()
            self._expect_symbol(")")
            return ast.SubquerySource(query)
        name = self._expect_ident()
        return ast.RelationSource(name)

    # -- conditions -----------------------------------------------------------------

    def _parse_condition(self):
        parts = [self._parse_conjunct()]
        while self._accept_keyword("OR"):
            parts.append(self._parse_conjunct())
        if len(parts) == 1:
            return parts[0]
        return ast.OrCondition(tuple(parts))

    def _parse_conjunct(self):
        parts = [self._parse_factor()]
        while self._accept_keyword("AND"):
            parts.append(self._parse_factor())
        if len(parts) == 1:
            return parts[0]
        return ast.AndCondition(tuple(parts))

    def _parse_factor(self):
        if self._accept_keyword("NOT"):
            return ast.NotCondition(self._parse_factor())
        if self._peek().is_symbol("("):
            self._advance()
            condition = self._parse_condition()
            self._expect_symbol(")")
            return condition
        return self._parse_atom()

    def _parse_atom(self):
        left = self._parse_operand()
        if self._accept_keyword("IS"):
            if not isinstance(left, ast.NameRef):
                raise ParseError("the left side of IS must be an attribute name")
            values = self._parse_set_literal()
            return ast.IsCondition(left, values)
        op = self._parse_comparison()
        right = self._parse_operand()
        return ast.CompareCondition(left, op, right)

    def _parse_comparison(self) -> str:
        token = self._advance()
        if token.value in _COMPARISONS:
            return "=" if token.value == "==" else token.value
        raise ParseError(
            f"expected a comparison operator, got {token.value!r} at offset "
            f"{token.position}"
        )

    def _parse_operand(self):
        token = self._peek()
        if token.kind == KIND_IDENT:
            self._advance()
            if self._accept_symbol("."):
                member = self._expect_ident()
                return ast.NameRef(member, qualifier=token.value)
            return ast.NameRef(token.value)
        if token.kind == KIND_NUMBER:
            self._advance()
            return ast.ValueLiteral(_parse_number(token.value))
        if token.kind == KIND_STRING:
            self._advance()
            return ast.ValueLiteral(token.value)
        if token.kind == KIND_EVIDENCE:
            self._advance()
            return ast.EvidenceLiteral(token.value)
        raise ParseError(
            f"expected an operand, got {token.value!r} at offset {token.position}"
        )

    def _parse_set_literal(self) -> tuple:
        self._expect_symbol("{")
        values = [self._parse_set_value()]
        while self._accept_symbol(","):
            values.append(self._parse_set_value())
        self._expect_symbol("}")
        return tuple(values)

    def _parse_set_value(self):
        token = self._advance()
        if token.kind == KIND_IDENT:
            return token.value
        if token.kind == KIND_NUMBER:
            return _parse_number(token.value)
        if token.kind == KIND_STRING:
            return token.value
        raise ParseError(
            f"expected a value in set literal, got {token.value!r} at offset "
            f"{token.position}"
        )

    # -- thresholds --------------------------------------------------------------------

    def _parse_thresholds(self) -> tuple[ast.ThresholdTerm, ...]:
        terms = [self._parse_threshold_term()]
        while self._accept_keyword("AND"):
            terms.append(self._parse_threshold_term())
        return tuple(terms)

    def _parse_threshold_term(self) -> ast.ThresholdTerm:
        token = self._advance()
        if token.is_keyword("SN"):
            field = "sn"
        elif token.is_keyword("SP"):
            field = "sp"
        else:
            raise ParseError(
                f"expected SN or SP in WITH clause, got {token.value!r} at "
                f"offset {token.position}"
            )
        op = self._parse_comparison()
        bound_token = self._advance()
        if bound_token.kind != KIND_NUMBER:
            raise ParseError(
                f"expected a number bound, got {bound_token.value!r} at offset "
                f"{bound_token.position}"
            )
        bound = _parse_number(bound_token.value)
        if not isinstance(bound, (int, Fraction)):
            bound = Fraction(str(bound))
        return ast.ThresholdTerm(field, op, Fraction(bound))


def _parse_number(text: str):
    value = parse_atom(text)
    if isinstance(value, str):
        raise ParseError(f"bad number literal {text!r}")
    return value


def parse(text: str):
    """Parse a query string into its AST.

    >>> statement = parse("SELECT rname FROM RA WHERE speciality IS {si}")
    >>> statement.projection
    ('rname',)
    """
    return _Parser(tokenize(text)).parse_statement()
