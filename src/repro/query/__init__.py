"""Query processing over extended relations (Figure 1's last stage).

A small SQL-like language over the extended algebra::

    SELECT rname, phone FROM RA
        WHERE speciality IS {si} AND rating IS {ex}
        WITH SN > 0.5;

    RA UNION RB BY (rname);

    SELECT * FROM RA JOIN RM_A ON RA.rname = RM_A.rname WITH SN > 0;

Semantics map 1:1 onto Section 3 of the paper:

* ``WHERE`` holds a selection condition (is-predicates with ``IS {...}``
  and theta-predicates with ``= < > <= >=``; ``AND`` uses the paper's
  multiplicative rule, ``OR``/``NOT`` are the documented extensions);
* ``WITH`` holds the membership threshold condition ``Q`` over ``SN`` /
  ``SP`` (conjoined with ``sn > 0`` automatically);
* ``UNION`` is the extended union on the common key (``BY (...)`` names
  the key, which must match the schemas' key);
* ``JOIN ... ON`` is the extended join; clashing attribute names are
  referenced with dotted qualifiers (``RA.rname``) that resolve to the
  product schema's prefixed names.

Pipeline: :func:`parse` -> :func:`repro.query.planner.build_plan` ->
:func:`repro.query.planner.optimize` -> execution against a
:class:`repro.storage.Database`.
"""

from repro.query.lexer import tokenize
from repro.query.parser import parse
from repro.query.planner import build_plan, optimize
from repro.query.executor import compile_text, execute, explain
from repro.query.fingerprint import fingerprint, plan_key

__all__ = [
    "tokenize",
    "parse",
    "build_plan",
    "optimize",
    "compile_text",
    "execute",
    "explain",
    "fingerprint",
    "plan_key",
]
