"""Hand-written lexer for the query language.

Notable tokenization rules:

* keywords are case-insensitive (``select`` == ``SELECT``); identifiers
  keep their case;
* a ``[`` opens an *evidence-set literal*, captured raw up to the
  matching ``]`` and handed to :func:`repro.ds.notation.parse_evidence`
  later -- the evidence grammar has its own lexer;
* numbers cover integers, decimals and rationals (``1/3``);
* strings use single or double quotes with backslash escapes.
"""

from __future__ import annotations

import re

from repro.errors import LexError
from repro.query.tokens import (
    KEYWORDS,
    KIND_EOF,
    KIND_EVIDENCE,
    KIND_IDENT,
    KIND_KEYWORD,
    KIND_NUMBER,
    KIND_STRING,
    KIND_SYMBOL,
    SYMBOLS,
    Token,
)

_WHITESPACE = re.compile(r"\s+")
_COMMENT = re.compile(r"--[^\n]*")
_NUMBER = re.compile(r"\d+(\.\d+|/\d+)?")
_IDENT = re.compile(r"[A-Za-z_][A-Za-z_0-9]*")
_STRING = re.compile(r"\"(?:[^\"\\]|\\.)*\"|'(?:[^'\\]|\\.)*'")


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*; raises :class:`LexError` on illegal input.

    >>> [t.value for t in tokenize("SELECT rname FROM RA")[:3]]
    ['SELECT', 'rname', 'FROM']
    """
    tokens: list[Token] = []
    position = 0
    length = len(text)
    while position < length:
        match = _WHITESPACE.match(text, position) or _COMMENT.match(text, position)
        if match:
            position = match.end()
            continue
        start = position
        character = text[position]
        if character == "[":
            end = _find_bracket_end(text, position)
            tokens.append(Token(KIND_EVIDENCE, text[position : end + 1], start))
            position = end + 1
            continue
        match = _STRING.match(text, position)
        if match:
            raw = match.group(0)
            body = raw[1:-1].replace("\\" + raw[0], raw[0]).replace("\\\\", "\\")
            tokens.append(Token(KIND_STRING, body, start))
            position = match.end()
            continue
        match = _NUMBER.match(text, position)
        if match:
            tokens.append(Token(KIND_NUMBER, match.group(0), start))
            position = match.end()
            continue
        match = _IDENT.match(text, position)
        if match:
            word = match.group(0)
            if word.upper() in KEYWORDS:
                tokens.append(Token(KIND_KEYWORD, word.upper(), start))
            else:
                tokens.append(Token(KIND_IDENT, word, start))
            position = match.end()
            continue
        for symbol in SYMBOLS:
            if text.startswith(symbol, position):
                tokens.append(Token(KIND_SYMBOL, symbol, start))
                position += len(symbol)
                break
        else:
            raise LexError(f"illegal character {character!r}", position)
    tokens.append(Token(KIND_EOF, "", length))
    return tokens


def _find_bracket_end(text: str, start: int) -> int:
    """The index of the ``]`` closing the ``[`` at *start*."""
    depth = 0
    for index in range(start, len(text)):
        if text[index] == "[":
            depth += 1
        elif text[index] == "]":
            depth -= 1
            if depth == 0:
                return index
    raise LexError("unterminated evidence-set literal", start)
