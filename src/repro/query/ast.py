"""Abstract syntax trees for the query language.

The AST is deliberately decoupled from the algebra: names are unresolved
strings (possibly dotted), predicates are syntax, and no schema is
consulted.  Binding happens in :mod:`repro.query.planner`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction


# -- operands -----------------------------------------------------------------


@dataclass(frozen=True)
class NameRef:
    """An attribute reference, optionally qualified (``RA.rname``)."""

    name: str
    qualifier: str | None = None

    def render(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


@dataclass(frozen=True)
class ValueLiteral:
    """A scalar literal (number or string)."""

    value: object


@dataclass(frozen=True)
class EvidenceLiteral:
    """An evidence-set literal in bracket notation (unparsed text)."""

    text: str


# -- predicates ---------------------------------------------------------------


@dataclass(frozen=True)
class IsCondition:
    """``<name> IS { v1, v2, ... }``."""

    attribute: NameRef
    values: tuple


@dataclass(frozen=True)
class CompareCondition:
    """``<operand> theta <operand>``."""

    left: object
    op: str
    right: object


@dataclass(frozen=True)
class AndCondition:
    """Conjunction."""

    parts: tuple


@dataclass(frozen=True)
class OrCondition:
    """Disjunction (extension)."""

    parts: tuple


@dataclass(frozen=True)
class NotCondition:
    """Negation (extension)."""

    part: object


# -- thresholds ------------------------------------------------------------------


@dataclass(frozen=True)
class ThresholdTerm:
    """``SN >= 0.5`` etc.; field is ``"sn"`` or ``"sp"``."""

    field: str
    op: str
    bound: Fraction


# -- sources ------------------------------------------------------------------------


@dataclass(frozen=True)
class RelationSource:
    """A named relation in the catalog."""

    name: str


@dataclass(frozen=True)
class JoinSource:
    """``<source> JOIN <source> ON <condition>``."""

    left: object
    right: object
    condition: object


@dataclass(frozen=True)
class SubquerySource:
    """A parenthesized query used as a source."""

    query: object


# -- statements ------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectStatement:
    """``SELECT <projection> FROM <source> [WHERE ...] [WITH ...]``.

    ``projection`` is ``None`` for ``*``.
    """

    projection: tuple[str, ...] | None
    source: object
    condition: object | None
    thresholds: tuple[ThresholdTerm, ...]


@dataclass(frozen=True)
class UnionStatement:
    """``<source> UNION|INTERSECT <source> [BY (key, ...)]``.

    ``operator`` is ``"union"`` or ``"intersect"`` (the latter is the
    consensus extension).
    """

    left: object
    right: object
    keys: tuple[str, ...] | None
    operator: str = "union"
