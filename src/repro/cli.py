"""Command-line interface.

Every ``DB`` argument is a storage *location*: a backend URL
(``json:restaurants.json``, ``sqlite:federation.db``,
``log:journal.jsonl``) or a bare path resolved per
:mod:`repro.storage.backends` (the ``REPRO_STORAGE`` environment
variable names the default engine, else the file extension decides,
else JSON).

``repro demo [DB]``
    Write the paper's example database (R_A, R_B, M_A, M_B, RM_A, RM_B)
    to ``DB`` (default ``restaurants.json``), ready for querying.

``repro query DB QUERY``
    Execute one query against a database and print the result in the
    paper's table style.  ``--explain`` prints the optimized plan
    instead; ``--save NAME OUT`` stores the result relation under NAME
    into the location OUT (which may equal DB).

``repro show DB [RELATION]``
    Print the catalog, or one relation as a table.

``repro convert SRC DST``
    Migrate a database between any two backend locations
    (``--partitions N`` re-shards the persisted tuple layout on the
    way).

``repro compact DB``
    Fold an append-only ``log:`` store's history into its live
    snapshots (:meth:`repro.storage.backends.log.LogBackend.compact`)
    and report bytes before/after.

``repro repl DB``
    Interactive query loop over one database, running through a caching
    :class:`repro.session.Session`: repeated queries hit the
    plan/result caches.  ``:explain Q`` prints the optimized plan,
    ``:profile Q`` executes Q and prints the EXPLAIN ANALYZE profile
    (per-node wall times and row counts, see
    :meth:`repro.session.Session.explain_analyze`), ``:stats`` the
    session counters plus the evidence-kernel path counters
    (:mod:`repro.ds.kernel`), the physical executor / partition
    configuration and fan-out counters (:mod:`repro.exec`), the storage
    backend and the full metrics registry (:mod:`repro.obs`),
    ``:tables`` the catalog, ``:open URL`` switches to another
    database, ``:persist`` writes the catalog back through the attached
    backend, and ``:quit`` (or EOF) exits.  ``--trace-out FILE``
    enables structured tracing and appends span records to FILE as
    JSONL.

``repro stats [DB]``
    Dump the process metrics registry (:mod:`repro.obs`) -- as a human
    table, ``--json``, or ``--prometheus`` text exposition.  With a
    database and ``--query Q`` (repeatable), runs the queries first so
    their kernel/executor/session activity shows in the dump.

``repro stream DB EVENTS --schema REL``
    Replay a JSONL event file (see :mod:`repro.stream.connectors`)
    through a :class:`repro.stream.StreamEngine` using REL's schema,
    publish the integrated relation into the catalog, and report
    throughput, the kernel-vs-fallback combination split and the
    per-batch changelog.  ``--workers N`` (and ``--executor``) fan the
    flush re-folds out over a worker pool (:mod:`repro.exec`);
    ``--durable URL`` journals every flushed batch through a storage
    backend (a ``log:`` URL gives write-ahead recovery); ``--save OUT``
    persists the resulting database, ``--show`` prints the integrated
    table, ``--trace-out FILE`` traces the replay into FILE as JSONL.

``repro worker serve ADDRESS`` / ``repro worker run -n N -- CMD``
    Distributed execution (:mod:`repro.exec.remote`).  ``serve`` runs
    one worker daemon on ``HOST:PORT`` (or ``unix:/path``); point
    coordinators at it with ``REPRO_EXECUTOR=remote`` and
    ``REPRO_WORKERS_ADDRS=host:port,host:port,...``.  ``run`` spawns a
    loopback cluster of N daemons, executes CMD with the remote
    executor configured against it, and tears the cluster down --
    ``make test-remote`` uses it to drive the tier-1 suite over the
    wire.  With ``--store`` workers own per-node shard stores and
    eligible batches ship entity keys instead of tuples
    (``make test-remote-sharded``).

Exit status: 0 on success, 1 on any :class:`repro.errors.ReproError`
(message on stderr), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys

from contextlib import contextmanager

from repro.errors import ReproError
from repro.storage.backends import (
    open_backend,
    open_database,
    resolve_backend,
)
from repro.storage.database import Database
from repro.storage.formatting import format_relation


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Evidential reasoning for database integration "
        "(Lim, Srivastava & Shekhar, ICDE 1994).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser(
        "demo", help="write the paper's example database to a storage location"
    )
    demo.add_argument(
        "path",
        nargs="?",
        default="restaurants.json",
        help="output location -- a json:/sqlite:/log: URL or a path "
        "(default: restaurants.json)",
    )
    demo.add_argument(
        "--integrated",
        action="store_true",
        help="also include the integrated relations R, M, RM",
    )

    query = commands.add_parser(
        "query", help="run a query against a database"
    )
    query.add_argument("database", help="database location (URL or path)")
    query.add_argument("text", help="the query, e.g. 'RA UNION RB BY (rname)'")
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the optimized logical plan instead of executing",
    )
    query.add_argument(
        "--style",
        choices=["decimal", "fraction", "auto"],
        default="decimal",
        help="mass rendering style (default: decimal, as the paper prints)",
    )
    query.add_argument(
        "--save",
        nargs=2,
        metavar=("NAME", "OUT"),
        help="store the result relation under NAME into the database "
        "location OUT",
    )

    convert = commands.add_parser(
        "convert",
        help="migrate a database between two storage backends",
    )
    convert.add_argument("source", help="source location (URL or path)")
    convert.add_argument("destination", help="destination location (URL or path)")
    convert.add_argument(
        "--partitions",
        type=int,
        default=None,
        metavar="N",
        help="re-shard the persisted tuple layout into N hash partitions",
    )

    repl = commands.add_parser(
        "repl", help="interactive query loop (cached session) over a database"
    )
    repl.add_argument("database", help="database location (URL or path)")
    repl.add_argument(
        "--style",
        choices=["decimal", "fraction", "auto"],
        default="decimal",
        help="mass rendering style",
    )
    repl.add_argument(
        "--trace-out",
        metavar="FILE",
        help="enable structured tracing and append span records to FILE "
        "as JSONL",
    )

    stream = commands.add_parser(
        "stream",
        help="replay a JSONL event file into an integrated relation",
    )
    stream.add_argument("database", help="database location (URL or path)")
    stream.add_argument("events", help="JSONL event file")
    stream.add_argument(
        "--schema",
        required=True,
        metavar="RELATION",
        help="catalog relation whose schema the stream speaks",
    )
    stream.add_argument(
        "--name",
        default="integrated",
        help="name of the integrated relation (default: integrated)",
    )
    stream.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help="auto-flush every N events (default: only explicit flushes)",
    )
    stream.add_argument(
        "--on-conflict",
        choices=["raise", "vacuous", "drop"],
        default="vacuous",
        help="total-conflict policy (default: vacuous)",
    )
    stream.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan flush re-folds out over N workers (implies a thread "
        "executor unless --executor says otherwise)",
    )
    stream.add_argument(
        "--executor",
        choices=["serial", "thread", "process", "auto"],
        default=None,
        help="physical executor; 'auto' picks per batch via the cost "
        "model (default: REPRO_EXECUTOR or serial)",
    )
    stream.add_argument(
        "--durable",
        metavar="URL",
        help="journal every flushed batch through this storage backend "
        "(a log: URL keeps a write-ahead event log)",
    )
    stream.add_argument(
        "--save",
        metavar="OUT",
        help="write the database (with the integrated relation) to the "
        "location OUT",
    )
    stream.add_argument(
        "--show",
        action="store_true",
        help="print the integrated relation after the replay",
    )
    stream.add_argument(
        "--style",
        choices=["decimal", "fraction", "auto"],
        default="decimal",
        help="mass rendering style",
    )
    stream.add_argument(
        "--trace-out",
        metavar="FILE",
        help="enable structured tracing and append span records to FILE "
        "as JSONL",
    )

    stats = commands.add_parser(
        "stats",
        help="dump the process metrics registry (optionally after "
        "running queries)",
    )
    stats.add_argument(
        "database",
        nargs="?",
        help="database location (URL or path) to run --query against",
    )
    stats.add_argument(
        "--query",
        action="append",
        default=[],
        metavar="Q",
        help="execute Q against DATABASE before dumping (repeatable)",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit the metrics as a JSON object",
    )
    stats.add_argument(
        "--prometheus",
        action="store_true",
        help="emit the metrics in the Prometheus text exposition format",
    )

    show = commands.add_parser("show", help="inspect a database")
    show.add_argument("database", help="database location (URL or path)")
    show.add_argument(
        "relation", nargs="?", help="relation to print (default: catalog)"
    )
    show.add_argument(
        "--style",
        choices=["decimal", "fraction", "auto"],
        default="decimal",
        help="mass rendering style",
    )

    compact = commands.add_parser(
        "compact",
        help="fold an append-only log store's history away "
        "(log: URLs only)",
    )
    compact.add_argument("database", help="store location (URL or path)")

    worker = commands.add_parser(
        "worker",
        help="distributed execution: serve a worker daemon or run a "
        "command against a local cluster",
    )
    worker_actions = worker.add_subparsers(
        dest="worker_command", required=True
    )
    serve = worker_actions.add_parser(
        "serve",
        help="run one worker daemon on ADDRESS (HOST:PORT or unix:/path; "
        "port 0 picks a free one)",
    )
    serve.add_argument("address", help="address to bind (HOST:PORT)")
    serve.add_argument(
        "--pool-workers",
        type=int,
        default=1,
        metavar="N",
        help="fan batches over N local warm-pool processes (default 1)",
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="URL",
        help="own a shard store at URL (e.g. sqlite:shards.db): the "
        "coordinator syncs relation shards here and ships entity keys "
        "instead of tuples",
    )
    run = worker_actions.add_parser(
        "run",
        help="spawn a loopback cluster, run CMD against it "
        "(REPRO_EXECUTOR=remote), tear the cluster down",
    )
    run.add_argument(
        "-n",
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="cluster size (default 4)",
    )
    run.add_argument(
        "--threshold",
        type=int,
        default=0,
        metavar="N",
        help="REPRO_REMOTE_THRESHOLD for the command (default 0: "
        "every batch goes remote)",
    )
    run.add_argument(
        "--store",
        action="store_true",
        help="give every worker a temporary SQLite shard store, so "
        "eligible batches scatter entity keys instead of tuples",
    )
    run.add_argument(
        "cmd",
        nargs=argparse.REMAINDER,
        metavar="CMD",
        help="command to run (prefix with -- to stop option parsing)",
    )
    return parser


def _command_demo(args: argparse.Namespace, out) -> int:
    from repro.algebra.union import union
    from repro.datasets.restaurants import (
        table_m_a,
        table_m_b,
        table_ra,
        table_rb,
        table_rm_a,
        table_rm_b,
    )

    db = Database("tourist_bureau")
    for relation in (
        table_ra(),
        table_rb(),
        table_m_a(),
        table_m_b(),
        table_rm_a(),
        table_rm_b(),
    ):
        db.add(relation)
    if args.integrated:
        db.add(union(table_ra(), table_rb(), name="R"))
        db.add(union(table_m_a(), table_m_b(), name="M"))
        db.add(union(table_rm_a(), table_rm_b(), name="RM"))
    with open_backend(args.path) as backend:
        backend.save_database(db)
        print(
            f"wrote {len(db)} relations ({', '.join(db.names())}) "
            f"to {backend.url()}",
            file=out,
        )
    return 0


def _save_result(relation, name: str, destination: str, out) -> None:
    """Store one relation into a (possibly new) database location."""
    with open_backend(destination) as backend:
        target = backend.load_database() if backend.exists() else Database()
        target.add(relation.with_name(name), replace=True)
        backend.save_database(target)
        print(f"saved result as {name!r} in {backend.url()}", file=out)


def _command_query(args: argparse.Namespace, out) -> int:
    db = open_database(args.database)
    try:
        if args.explain:
            print(db.explain(args.text), file=out)
            return 0
        result = db.query(args.text)
        print(format_relation(result, style=args.style), file=out)
    finally:
        db.close()
    if args.save:
        name, destination = args.save
        _save_result(result, name, destination, out)
    return 0


def _command_convert(args: argparse.Namespace, out) -> int:
    source = resolve_backend(args.source)
    destination = resolve_backend(args.destination)
    if source.path.resolve() == destination.path.resolve():
        raise ReproError(
            f"convert needs two distinct locations, got {source.url()} "
            f"twice"
        )
    if args.partitions is not None and args.partitions < 1:
        raise ReproError(
            f"--partitions must be >= 1, got {args.partitions}"
        )
    with source, destination:
        db = source.load_database()
        destination.save_database(db, partitions=args.partitions)
        tuples = sum(len(relation) for relation in db)
        sharding = (
            f" in {args.partitions} partitions"
            if args.partitions is not None and args.partitions > 1
            else ""
        )
        print(
            f"converted {len(db)} relations ({tuples} tuples) from "
            f"{source.url()} to {destination.url()}{sharding}",
            file=out,
        )
    return 0


@contextmanager
def _trace_to(path: str | None):
    """Enable tracing with a JSONL sink at *path* for one command."""
    if not path:
        yield
        return
    from repro.obs import tracing

    sink = tracing.JsonlSink(path)
    tracing.add_sink(sink)
    previous = tracing.enabled()
    tracing.set_tracing(True)
    try:
        yield
    finally:
        tracing.set_tracing(previous)
        tracing.remove_sink(sink)
        sink.close()


def _command_stats(args: argparse.Namespace, out) -> int:
    import json

    from repro.obs import registry

    if args.query and args.database is None:
        raise ReproError("--query needs a DATABASE to run against")
    db = session = None
    if args.database is not None:
        from repro.session import Session

        db = open_database(args.database)
        # Held in a local on purpose: the registry tracks SessionStats
        # weakly, so the session must outlive the dump below.
        session = Session(db)
        for query in args.query:
            session.execute(query)
    try:
        if args.json:
            print(
                json.dumps(registry().to_json(), indent=2, sort_keys=True),
                file=out,
            )
        elif args.prometheus:
            print(registry().prometheus(), file=out, end="")
        else:
            print(registry().render(), file=out)
    finally:
        del session
        if db is not None:
            db.close()
    return 0


def _command_repl(args: argparse.Namespace, out) -> int:
    from repro.session import Session

    db = open_database(args.database)
    session = Session(db)

    def banner() -> None:
        print(
            f"database {db.name!r}: {', '.join(db.names())} -- "
            f":explain Q / :profile Q / :stats / :tables / :open URL / "
            f":persist / :quit",
            file=out,
        )

    banner()
    with _trace_to(args.trace_out):
        for line in sys.stdin:
            text = line.strip()
            if not text:
                continue
            if text in (":quit", ":q", ":exit"):
                break
            try:
                if text == ":stats":
                    from repro.ds.kernel import kernel_stats
                    from repro.exec import current_config, exec_stats
                    from repro.obs import registry

                    print(session.stats().summary(), file=out)
                    print(kernel_stats().summary(), file=out)
                    print(current_config().describe(), file=out)
                    print(exec_stats().summary(), file=out)
                    backend = db.backend
                    print(
                        backend.describe()
                        if backend is not None
                        else "storage backend: (none attached)",
                        file=out,
                    )
                    print(registry().render(), file=out)
                elif text == ":tables":
                    for relation in db:
                        keys = ", ".join(relation.schema.key_names)
                        print(
                            f"  {relation.name:<12} {len(relation):>4} tuples  "
                            f"key=({keys})",
                            file=out,
                        )
                elif text.startswith(":open"):
                    url = text[len(":open"):].strip()
                    if not url:
                        print("usage: :open URL", file=out)
                        continue
                    fresh = open_database(url)
                    db.close()
                    db, session = fresh, Session(fresh)
                    banner()
                elif text == ":persist":
                    db.persist()
                    print(
                        f"persisted {len(db)} relations to {db.backend.url()}",
                        file=out,
                    )
                elif text.startswith(":profile"):
                    query = text[len(":profile"):].strip()
                    if not query:
                        print("usage: :profile Q", file=out)
                        continue
                    print(session.explain_analyze(query).describe(), file=out)
                elif text.startswith(":explain"):
                    print(session.explain(text[len(":explain"):].strip()), file=out)
                elif text.startswith(":"):
                    print(f"unknown command {text.split()[0]!r}", file=out)
                else:
                    result = session.execute(text)
                    print(format_relation(result, style=args.style), file=out)
            except ReproError as exc:
                print(f"error: {exc}", file=out)
    db.close()
    return 0


def _command_stream(args: argparse.Namespace, out) -> int:
    import time

    from repro.exec import configure, current_config, exec_stats
    from repro.integration.merging import TupleMerger
    from repro.stream import StreamEngine, read_events, replay

    if args.executor is not None or args.workers is not None:
        kind = args.executor
        if kind is None and args.workers and args.workers > 1:
            kind = "thread"
        configure(executor=kind, workers=args.workers)
    db = open_database(args.database)
    durable = open_backend(args.durable) if args.durable else None
    try:
        schema = db.get(args.schema).schema
        engine = StreamEngine(
            schema,
            name=args.name,
            merger=TupleMerger(on_conflict=args.on_conflict),
            database=db,
            batch_size=args.batch,
            backend=durable,
        )
        started = time.perf_counter()
        with _trace_to(args.trace_out):
            report = replay(engine, read_events(args.events))
        elapsed = time.perf_counter() - started
        # A tiny replay can finish between two clock ticks; "inf
        # events/s" is noise, so elide the rate instead.
        rate = (
            f"{report.events / elapsed:,.0f} events/s"
            if elapsed > 0
            else "events/s: n/a"
        )
        print(
            f"replayed {report.summary()} in {elapsed:.3f}s ({rate})",
            file=out,
        )
        print(
            f"integrated {args.name!r}: {len(engine.relation)} tuples from "
            f"{len(engine.sources())} source(s), watermark {engine.watermark}",
            file=out,
        )
        stats = engine.stats()
        print(
            f"evidence combinations: {stats.kernel_combinations} on the "
            f"kernel path, {stats.fallback_combinations} on the fallback path",
            file=out,
        )
        print(
            f"{current_config().describe()}; {exec_stats().summary()}",
            file=out,
        )
        if durable is not None:
            print(
                f"durable: {durable.describe()} (watermark "
                f"{durable.stream_watermark(args.name)})",
                file=out,
            )
        print(engine.changelog.summary(), file=out)
        if args.show:
            print(format_relation(engine.relation, style=args.style), file=out)
        if args.save:
            with open_backend(args.save) as target:
                target.save_database(db)
                print(f"saved database to {target.url()}", file=out)
    finally:
        if durable is not None:
            durable.close()
        db.close()
    return 0


def _command_compact(args: argparse.Namespace, out) -> int:
    with open_backend(args.database) as backend:
        compact = getattr(backend, "compact", None)
        if compact is None:
            print(
                f"error: {backend.url()} does not support compaction "
                f"(only log: stores do)",
                file=sys.stderr,
            )
            return 1
        digest = compact()
    saved = digest["bytes_before"] - digest["bytes_after"]
    ratio = saved / digest["bytes_before"] if digest["bytes_before"] else 0.0
    print(
        f"compacted {backend.url()}: {digest['bytes_before']:,} -> "
        f"{digest['bytes_after']:,} bytes ({digest['records']} record(s), "
        f"{saved:,} bytes / {ratio:.0%} reclaimed)",
        file=out,
    )
    return 0


def _command_show(args: argparse.Namespace, out) -> int:
    db = open_database(args.database)
    try:
        if args.relation is None:
            print(f"database {db.name!r}: {len(db)} relation(s)", file=out)
            for relation in db:
                keys = ", ".join(relation.schema.key_names)
                print(
                    f"  {relation.name:<12} {len(relation):>4} tuples  "
                    f"key=({keys})",
                    file=out,
                )
            return 0
        print(
            format_relation(db.get(args.relation), style=args.style), file=out
        )
    finally:
        db.close()
    return 0


def _command_worker(args: argparse.Namespace, out) -> int:
    if args.worker_command == "serve":
        from repro.exec.remote import WorkerServer

        server = WorkerServer(
            args.address, pool_workers=args.pool_workers, store=args.store
        )
        server.start()
        store_note = f", shard store {args.store}" if args.store else ""
        print(
            f"worker serving on {server.address} "
            f"(pid {os.getpid()}, {args.pool_workers} pool worker(s)"
            f"{store_note}); Ctrl-C to stop",
            file=out,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
        return 0

    # worker run -n N -- CMD...
    import subprocess

    from repro.exec.remote import spawn_local_cluster

    cmd = list(args.cmd)
    if cmd and cmd[0] == "--":
        cmd = cmd[1:]
    if not cmd:
        print("error: worker run needs a command after --", file=sys.stderr)
        return 2
    store_dir = None
    if args.store:
        import tempfile

        store_dir = tempfile.TemporaryDirectory(prefix="repro-shards-")
    try:
        cluster = spawn_local_cluster(
            args.workers,
            store_dir=store_dir.name if store_dir else None,
        )
    except BaseException:
        if store_dir is not None:
            store_dir.cleanup()
        raise
    env = dict(os.environ)
    env["REPRO_EXECUTOR"] = "remote"
    env["REPRO_WORKERS_ADDRS"] = cluster.addr_spec
    env["REPRO_REMOTE_THRESHOLD"] = str(args.threshold)
    sharded = " with shard stores" if args.store else ""
    print(
        f"cluster of {args.workers} worker(s){sharded} at "
        f"{cluster.addr_spec}; running: {' '.join(cmd)}",
        file=out,
    )
    try:
        return subprocess.call(cmd, env=env)
    finally:
        cluster.stop()
        if store_dir is not None:
            store_dir.cleanup()


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the exit status."""
    out = out if out is not None else sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "compact": _command_compact,
        "demo": _command_demo,
        "query": _command_query,
        "convert": _command_convert,
        "repl": _command_repl,
        "show": _command_show,
        "stats": _command_stats,
        "stream": _command_stream,
        "worker": _command_worker,
    }
    try:
        return handlers[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output was piped into a pager/head that closed early: normal.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
