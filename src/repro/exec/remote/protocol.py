"""The wire protocol between the coordinator and worker daemons.

Every message is one **frame**:

====== ======= ====================================================
bytes  field   meaning
====== ======= ====================================================
2      magic   ``b"RX"`` -- rejects non-protocol peers immediately
1      version protocol version (currently 1)
1      kind    a :class:`FrameKind` value
4      length  payload byte count, unsigned big-endian
4      crc32   CRC-32 of the payload (zlib), unsigned big-endian
length payload frame-kind-specific bytes
====== ======= ====================================================

A short read anywhere (the peer died or the stream was cut mid-frame)
raises :class:`~repro.errors.ProtocolError`, as does a bad magic,
an unknown version, or a CRC mismatch -- the coordinator treats all of
them as a transport failure and re-scatters the chunk elsewhere,
never as data.

Batch frames reuse the warm pool's compact task encoding
(:mod:`repro.exec.warmpool`): the ``(fn, common)`` pair is pickled
**once** per batch by the coordinator and the identical blob is reused
in every chunk frame of that batch, so per-chunk wire cost is the item
blob plus a fixed header.  Reply frames carry the chunk results *and*
the worker-side telemetry: the kernel-stats delta the chunk produced
(:data:`repro.ds.kernel.STATS` fields) and, when the coordinator asked
for them, the worker's tracing spans -- shipping observability with the
data keeps the cost model and trace trees whole across machines.

The module is deliberately transport-agnostic: every function takes a
connected socket object, whether TCP or ``AF_UNIX``.
"""

from __future__ import annotations

import pickle
import struct
import zlib

from enum import IntEnum

from repro.errors import ProtocolError

MAGIC = b"RX"
VERSION = 1

_HEADER = struct.Struct(">2sBBLL")
_U32 = struct.Struct(">L")

#: Largest payload a well-behaved peer may send (guards a corrupted or
#: hostile length field from allocating unbounded memory).
MAX_PAYLOAD_BYTES = 1 << 31


class FrameKind(IntEnum):
    """Frame discriminator (one byte on the wire)."""

    HELLO = 1          #: coordinator -> worker: introduce yourself
    HELLO_REPLY = 2    #: worker -> coordinator: {pid, pool_workers, ...}
    PING = 3           #: heartbeat request
    PONG = 4           #: heartbeat reply
    BATCH = 5          #: one encoded chunk of a scattered batch
    RESULT = 6         #: chunk results + worker-side telemetry
    TASK_ERROR = 7     #: the task itself raised (deterministic; no retry)
    SHUTDOWN = 8       #: coordinator -> worker: stop serving
    SHARD_SYNC = 9     #: coordinator -> worker: shard-store delta/snapshot ops
    SHARD_SYNC_REPLY = 10  #: worker -> coordinator: {epoch} or {error}
    KEY_BATCH = 11     #: a chunk shipped as entity keys, not tuples
    SHARD_STALE = 12   #: worker -> coordinator: cannot serve the keys locally


def send_frame(sock, kind: FrameKind, payload: bytes) -> int:
    """Write one frame to *sock*; returns the bytes put on the wire."""
    header = _HEADER.pack(
        MAGIC, VERSION, int(kind), len(payload), zlib.crc32(payload)
    )
    sock.sendall(header + payload)
    return len(header) + len(payload)


def recv_exact(sock, count: int) -> bytes:
    """Read exactly *count* bytes or raise :class:`ProtocolError`."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} byte(s) received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock) -> tuple[FrameKind, bytes, int]:
    """Read one frame; returns ``(kind, payload, wire_bytes)``.

    Raises :class:`ProtocolError` on truncation, bad magic, version
    mismatch, an unknown frame kind, an oversized length field, or a
    payload whose CRC does not match the header.
    """
    header = recv_exact(sock, _HEADER.size)
    magic, version, kind, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version}, "
            f"this end speaks {VERSION}"
        )
    try:
        kind = FrameKind(kind)
    except ValueError:
        raise ProtocolError(f"unknown frame kind {kind}") from None
    if length > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"frame payload of {length} bytes is oversized")
    payload = recv_exact(sock, length)
    if zlib.crc32(payload) != crc:
        raise ProtocolError(
            f"payload CRC mismatch on a {kind.name} frame "
            f"({length} byte(s)): corrupt or truncated stream"
        )
    return kind, payload, _HEADER.size + length


# -- batch encoding -----------------------------------------------------------


def encode_common(fn, common) -> bytes:
    """Pickle the per-batch constant ``(fn, common)`` pair, once.

    *fn* must be a module-level callable (it pickles by reference);
    a pickling failure propagates so the caller can fall back to a
    local executor before anything touches the wire.
    """
    return pickle.dumps((fn, common), protocol=pickle.HIGHEST_PROTOCOL)


def encode_chunk(chunk: list) -> bytes:
    """Pickle one chunk's items."""
    return pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL)


def encode_batch(common_blob: bytes, chunk_blob: bytes, trace: bool) -> bytes:
    """Assemble a BATCH payload from pre-pickled blobs.

    ``common_blob`` is produced once per batch (:func:`encode_common`)
    and reused verbatim for every chunk frame; only ``chunk_blob``
    varies.  *trace* asks the worker to capture and return its spans.
    """
    return (
        bytes([1 if trace else 0])
        + _U32.pack(len(common_blob))
        + common_blob
        + chunk_blob
    )


def decode_batch(payload: bytes) -> tuple[bytes, bytes, bool]:
    """Split a BATCH payload into ``(common_blob, chunk_blob, trace)``."""
    if len(payload) < 1 + _U32.size:
        raise ProtocolError("BATCH payload shorter than its own header")
    trace = bool(payload[0])
    (common_length,) = _U32.unpack_from(payload, 1)
    start = 1 + _U32.size
    if start + common_length > len(payload):
        raise ProtocolError("BATCH payload truncated inside the common blob")
    common_blob = payload[start:start + common_length]
    return common_blob, payload[start + common_length:], trace


def encode_result(results: list, kernel_delta: tuple, spans) -> bytes:
    """Pickle a RESULT payload: chunk results + worker-side telemetry.

    ``kernel_delta`` is the ``(kernel_combinations,
    fallback_combinations, compilations)`` triple this chunk added to
    the worker's :data:`repro.ds.kernel.STATS`; *spans* is the captured
    span list (or ``None`` when tracing was off).
    """
    return pickle.dumps(
        (results, kernel_delta, spans), protocol=pickle.HIGHEST_PROTOCOL
    )


def decode_result(payload: bytes) -> tuple[list, tuple, object]:
    """Unpickle a RESULT payload."""
    try:
        return pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 -- any unpickle failure is wire-level
        raise ProtocolError(f"undecodable RESULT payload: {exc}") from exc


def encode_error(exc: BaseException) -> bytes:
    """Pickle a TASK_ERROR payload (falling back to a repr carrier)."""
    try:
        return pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:  # noqa: BLE001 -- unpicklable exception: carry its repr
        from repro.errors import ExecutionError

        return pickle.dumps(
            ExecutionError(f"remote task failed: {exc!r}"),
            protocol=pickle.HIGHEST_PROTOCOL,
        )


def decode_error(payload: bytes) -> BaseException:
    """Unpickle a TASK_ERROR payload."""
    try:
        exc = pickle.loads(payload)
    except Exception as error:  # noqa: BLE001 -- see decode_result
        raise ProtocolError(
            f"undecodable TASK_ERROR payload: {error}"
        ) from error
    if not isinstance(exc, BaseException):
        raise ProtocolError(
            f"TASK_ERROR payload is not an exception: {exc!r}"
        )
    return exc


def encode_info(info: dict) -> bytes:
    """Pickle a small plain-dict payload (HELLO_REPLY and friends)."""
    return pickle.dumps(info, protocol=pickle.HIGHEST_PROTOCOL)


def decode_info(payload: bytes, what: str = "HELLO_REPLY") -> dict:
    """Unpickle a plain-dict payload (HELLO_REPLY, SHARD_SYNC_REPLY,
    SHARD_STALE)."""
    try:
        info = pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 -- see decode_result
        raise ProtocolError(f"undecodable {what} payload: {exc}") from exc
    if not isinstance(info, dict):
        raise ProtocolError(f"{what} payload is not a dict: {info!r}")
    return info


# -- shard locality -----------------------------------------------------------
#
# The data-locality layer pairs a worker-owned SQLite shard store with
# two extra exchanges:
#
# * ``SHARD_SYNC`` ships a list of store operations -- ``("full", name,
#   relation)`` snapshots or ``("delta", name, schema, upserts,
#   removed)`` dirty-key deltas -- and the worker answers with a
#   ``SHARD_SYNC_REPLY`` carrying the store's new ``catalog_version``
#   (the *epoch*) or an ``error`` string;
# * ``KEY_BATCH`` reuses the BATCH payload layout, but the per-chunk
#   blob holds ``(epoch, specs)`` instead of pickled items: the worker
#   point-loads each spec's ``(relation_name, keys)`` rows from its
#   store, rebuilding the chunk's items locally.  Any mismatch (wrong
#   epoch, unknown relation, missing key) answers ``SHARD_STALE`` and
#   the coordinator re-ships the chunk as tuples.


def encode_sync(ops: list) -> bytes:
    """Pickle a SHARD_SYNC payload (a list of store operations)."""
    return pickle.dumps(ops, protocol=pickle.HIGHEST_PROTOCOL)


def decode_sync(payload: bytes) -> list:
    """Unpickle a SHARD_SYNC payload.

    Sync operations carry only :mod:`repro.model` values (relations,
    tuples, schemas, keys), which always import on a worker; a failure
    here is wire-level corruption, not a task problem.
    """
    try:
        ops = pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 -- see decode_result
        raise ProtocolError(f"undecodable SHARD_SYNC payload: {exc}") from exc
    if not isinstance(ops, list):
        raise ProtocolError(f"SHARD_SYNC payload is not a list: {ops!r}")
    return ops


def encode_keyspec(epoch: int, specs: list) -> bytes:
    """Pickle a KEY_BATCH chunk blob: the expected store epoch plus one
    ``[(relation_name, keys), ...]`` spec per item."""
    return pickle.dumps((int(epoch), specs), protocol=pickle.HIGHEST_PROTOCOL)


def decode_keyspec(blob: bytes) -> tuple[int, list]:
    """Unpickle a KEY_BATCH chunk blob into ``(epoch, specs)``."""
    try:
        epoch, specs = pickle.loads(blob)
    except Exception as exc:  # noqa: BLE001 -- keys are plain atoms; see decode_sync
        raise ProtocolError(f"undecodable KEY_BATCH spec: {exc}") from exc
    return int(epoch), list(specs)
