"""The coordinator: :class:`RemoteExecutor` and its worker clients.

The :class:`RemoteExecutor` carries the ``Executor`` contract across a
wire.  A batch submitted through :meth:`~RemoteExecutor.map_encoded`
is pickled with the warm pool's compact encoding (``(fn, common)``
once per batch), split into contiguous chunks, scattered across the
live workers concurrently, and gathered back **in exact serial order**
-- chunk *i* of the item list always lands at position *i* of the
result, whatever worker answered it and in whatever order the replies
arrived.

Failure handling draws a hard line between the two ways a chunk can go
wrong:

* a **transport failure** (connection refused, reset, truncated or
  corrupt frame -- any :class:`~repro.errors.ProtocolError` or
  ``OSError``) says nothing about the task.  The worker is declared
  dead, ``exec.remote.worker_deaths`` is bumped, and the chunk is
  re-scattered to a surviving worker after a short backoff
  (``exec.remote.retries``).  When no workers survive, the chunk runs
  locally -- the batch *degrades*, it never fails;
* a **task error** (the worker ran the task and it raised) is
  deterministic: retrying would raise again, so the exception crosses
  the wire in a ``TASK_ERROR`` frame and is re-raised here, exactly as
  the serial path would have raised it.

Small batches should never pay a network round trip: before scattering,
the batch is priced against the cost model's remote tier
(:func:`repro.exec.cost.remote_worthwhile`), which is fed the measured
round-trip latency and bytes-per-item of every batch this coordinator
ships (``REPRO_REMOTE_THRESHOLD`` pins the gate to an item count
instead; ``0`` forces everything remote, which is how the fault and
equivalence suites exercise the wire).  Unpicklable payloads, an empty
worker list, and nested fan-out all fall back to a local adaptive
executor transparently.

When every worker owns a shard store (``repro worker serve --store``),
callers that can describe items as entity keys use
:meth:`~RemoteExecutor.map_encoded_keyed`: the coordinator first pushes
O(delta) ``SHARD_SYNC`` operations bringing each store current on the
referenced relations (:class:`~repro.exec.remote.shards.ShardSyncManager`
plans them from published versions and dirty-key hints), then scatters
``KEY_BATCH`` frames carrying key lists instead of tuple blobs; workers
point-load their rows locally.  The locality tier of the cost model
prices key bytes plus pending sync against tuple shipping
(``REPRO_REMOTE_LOCALITY`` forces it ``on``/``off``).  Any epoch
mismatch, un-synced shard, or worker death degrades that chunk -- or
the whole batch -- to the tuple-shipping path above, so the equivalence
contract never depends on store state.  ``exec.remote.locality_hits``/
``locality_misses`` count the outcomes and ``exec.remote.bytes_saved``
estimates the avoided traffic.

Worker-side telemetry ships home with every reply: kernel-stats deltas
are applied to the local counters (so ``EXPLAIN ANALYZE`` and the cost
model see remote work), and tracing spans are re-parented under the
dispatching span so a distributed batch reads as one trace tree.
"""

from __future__ import annotations

import os
import socket
import threading
import time

from repro.ds.kernel import apply_kernel_delta
from repro.errors import ConfigError, ProtocolError, TaskDecodeError
from repro.exec.executors import (
    Executor,
    _task_depth,
    note_inline_batch,
    note_parallel_batch,
)
from repro.exec.remote import protocol
from repro.exec.remote.shards import ShardSyncManager
from repro.exec.remote.worker import parse_address
from repro.obs import tracing
from repro.obs.registry import registry as _metrics_registry

_METRICS = _metrics_registry()
_BATCHES = _METRICS.counter(
    "exec.remote.batches", "batches scattered to remote workers"
)
_TASKS = _METRICS.counter(
    "exec.remote.tasks", "items shipped to remote workers"
)
_BYTES_SENT = _METRICS.counter(
    "exec.remote.bytes_sent", "payload bytes put on the wire"
)
_BYTES_RECEIVED = _METRICS.counter(
    "exec.remote.bytes_received", "payload bytes read off the wire"
)
_RETRIES = _METRICS.counter(
    "exec.remote.retries", "chunks re-scattered after a transport failure"
)
_WORKER_DEATHS = _METRICS.counter(
    "exec.remote.worker_deaths", "workers declared dead mid-batch"
)
_FALLBACKS = _METRICS.counter(
    "exec.remote.fallbacks",
    "batches that ran locally (unpicklable payload or no live workers)",
)
_LOCAL_BATCHES = _METRICS.counter(
    "exec.remote.local_batches",
    "batches the cost model kept local (below the wire threshold)",
)
_RTT_SECONDS = _METRICS.histogram(
    "exec.remote.rtt_seconds", "per-chunk round-trip latency"
)
_LOCALITY_HITS = _METRICS.counter(
    "exec.remote.locality_hits",
    "key-only chunks served from worker shard stores",
)
_LOCALITY_MISSES = _METRICS.counter(
    "exec.remote.locality_misses",
    "key-only chunks that fell back to tuple shipping",
)
_BYTES_SAVED = _METRICS.counter(
    "exec.remote.bytes_saved",
    "estimated wire bytes key-only scatter avoided",
)


class _UnshippableChunk(Exception):
    """Internal: a chunk's items could not pickle; the batch falls back."""


class _ShardStale(Exception):
    """Internal: a worker answered SHARD_STALE; re-ship the chunk as tuples."""


#: Backoff before retrying a chunk on a survivor (seconds; grows
#: linearly with the attempt number, stays well under a heartbeat).
RETRY_BACKOFF = 0.02
#: Connection timeout for dialing a worker (seconds).
CONNECT_TIMEOUT = 5.0
#: Per-chunk reply timeout (seconds); generous because a chunk may
#: carry real merge work, but finite so a hung worker is eventually
#: declared dead instead of hanging the batch.
REPLY_TIMEOUT = 120.0


class WorkerClient:
    """One coordinator-side connection to one worker daemon.

    The client owns a single socket and serializes requests on a lock
    (the framing is strictly request/reply per connection).  ``dead``
    is sticky: a transport failure closes the socket and the client
    stays dead until :meth:`reconnect` succeeds -- the coordinator
    retries reconnection on the next batch, so a restarted daemon
    rejoins without intervention.
    """

    def __init__(self, address: str):
        self.address = address
        self._family, self._sockaddr = parse_address(address)
        self._sock = None
        self._lock = threading.Lock()
        self.dead = False
        self.pid: int | None = None
        self.rtt: float | None = None
        self.in_flight = 0
        #: Shard-store state (data locality): the worker's store URL and
        #: its last acknowledged ``catalog_version`` (the epoch), plus
        #: the coordinator-side relation versions this store holds.
        self.store_url: str | None = None
        self.store_epoch: int | None = None
        self.shard_versions: dict[str, int] = {}

    def _dial(self):
        sock = socket.socket(self._family, socket.SOCK_STREAM)
        sock.settimeout(CONNECT_TIMEOUT)
        sock.connect(self._sockaddr)
        sock.settimeout(REPLY_TIMEOUT)
        if self._family == socket.AF_INET:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def connect(self) -> bool:
        """Dial and handshake (HELLO + a timed PING); ``False`` on failure."""
        with self._lock:
            if self._sock is not None:
                return True
            try:
                sock = self._dial()
                protocol.send_frame(sock, protocol.FrameKind.HELLO, b"")
                kind, payload, _ = protocol.recv_frame(sock)
                if kind != protocol.FrameKind.HELLO_REPLY:
                    raise ProtocolError(
                        f"expected HELLO_REPLY, got {kind.name}"
                    )
                info = protocol.decode_info(payload)
                started = time.perf_counter()
                protocol.send_frame(sock, protocol.FrameKind.PING, b"")
                kind, _, _ = protocol.recv_frame(sock)
                if kind != protocol.FrameKind.PONG:
                    raise ProtocolError(f"expected PONG, got {kind.name}")
                self.rtt = time.perf_counter() - started
            except (ProtocolError, OSError):
                self.dead = True
                return False
            self._sock = sock
            self.pid = info.get("pid")
            store_url = info.get("store")
            store_epoch = info.get("store_epoch")
            if (
                store_url != self.store_url
                or store_epoch != self.store_epoch
            ):
                # A different store, a restarted worker whose store
                # changed, or out-of-band writes: everything we thought
                # was synced may be stale.  (A persistent store whose
                # epoch still matches keeps its synced state across
                # reconnects.)
                self.shard_versions = {}
            self.store_url = store_url
            self.store_epoch = store_epoch
            self.dead = False
        from repro.exec import cost as _cost

        _cost.note_remote_sample(rtt_seconds=self.rtt)
        return True

    def reconnect(self) -> bool:
        """Forget a dead socket and dial again."""
        self.mark_dead()
        self.dead = False
        return self.connect()

    def heartbeat(self) -> float:
        """One timed PING/PONG round trip; raises on transport failure."""
        with self._lock:
            if self._sock is None:
                raise ProtocolError(f"worker {self.address} is not connected")
            started = time.perf_counter()
            protocol.send_frame(self._sock, protocol.FrameKind.PING, b"")
            kind, _, _ = protocol.recv_frame(self._sock)
            if kind != protocol.FrameKind.PONG:
                raise ProtocolError(f"expected PONG, got {kind.name}")
            self.rtt = time.perf_counter() - started
        from repro.exec import cost as _cost

        _cost.note_remote_sample(rtt_seconds=self.rtt)
        return self.rtt

    def run_chunk(
        self, common_blob: bytes, chunk_blob: bytes, n_items: int, trace: bool
    ) -> tuple[list, tuple, object]:
        """Ship one chunk and block for its reply.

        Returns ``(results, kernel_delta, spans)``.  A ``TASK_ERROR``
        reply re-raises the task's exception; transport trouble raises
        :class:`ProtocolError`/``OSError`` for the coordinator's retry
        logic.  Wire byte counts and the round trip land on the
        ``exec.remote.*`` metrics here, per chunk; the bytes-per-item
        observation feeds the cost model's remote tier (the chunk's
        elapsed time does not -- it includes the compute, so the pure
        heartbeat RTT is the latency signal).
        """
        payload = protocol.encode_batch(common_blob, chunk_blob, trace)
        with self._lock:
            if self._sock is None:
                raise ProtocolError(f"worker {self.address} is not connected")
            self.in_flight += 1
            try:
                started = time.perf_counter()
                sent = protocol.send_frame(
                    self._sock, protocol.FrameKind.BATCH, payload
                )
                kind, reply, received = protocol.recv_frame(self._sock)
                elapsed = time.perf_counter() - started
            finally:
                self.in_flight -= 1
        _BYTES_SENT.inc(sent)
        _BYTES_RECEIVED.inc(received)
        _RTT_SECONDS.observe(elapsed)
        from repro.exec import cost as _cost

        _cost.note_remote_sample(
            bytes_per_item=(sent + received) / max(1, n_items)
        )
        if kind == protocol.FrameKind.TASK_ERROR:
            raise protocol.decode_error(reply)
        if kind != protocol.FrameKind.RESULT:
            raise ProtocolError(
                f"expected RESULT or TASK_ERROR, got {kind.name}"
            )
        return protocol.decode_result(reply)

    def sync_shards(self, payload: bytes) -> dict:
        """Push one SHARD_SYNC payload; returns the worker's reply dict.

        The reply carries ``epoch`` (the store's new catalog version)
        on success or ``error`` when the store could not apply the
        operations; transport trouble raises for the caller's
        dead-worker handling.  Sync bytes are real wire traffic and
        meter into ``exec.remote.bytes_sent``/``bytes_received``.
        """
        with self._lock:
            if self._sock is None:
                raise ProtocolError(f"worker {self.address} is not connected")
            self.in_flight += 1
            try:
                sent = protocol.send_frame(
                    self._sock, protocol.FrameKind.SHARD_SYNC, payload
                )
                kind, reply, received = protocol.recv_frame(self._sock)
            finally:
                self.in_flight -= 1
        _BYTES_SENT.inc(sent)
        _BYTES_RECEIVED.inc(received)
        if kind != protocol.FrameKind.SHARD_SYNC_REPLY:
            raise ProtocolError(
                f"expected SHARD_SYNC_REPLY, got {kind.name}"
            )
        return protocol.decode_info(reply, what="SHARD_SYNC_REPLY")

    def run_chunk_keyed(
        self, common_blob: bytes, spec_blob: bytes, n_items: int, trace: bool
    ) -> tuple[list, tuple, object, int]:
        """Ship one chunk as entity keys and block for its reply.

        Returns ``(results, kernel_delta, spans, wire_bytes)`` -- the
        extra element is the chunk's actual framed traffic, which the
        caller compares against the tuple-shipping estimate for
        ``exec.remote.bytes_saved``.  A ``SHARD_STALE`` reply raises
        :class:`_ShardStale` (the caller re-ships the chunk as tuples);
        a ``TASK_ERROR`` re-raises like :meth:`run_chunk`.  Keyed
        traffic feeds the cost model's *locality* bytes-per-item
        estimate, never the tuple-shipping one.
        """
        payload = protocol.encode_batch(common_blob, spec_blob, trace)
        with self._lock:
            if self._sock is None:
                raise ProtocolError(f"worker {self.address} is not connected")
            self.in_flight += 1
            try:
                started = time.perf_counter()
                sent = protocol.send_frame(
                    self._sock, protocol.FrameKind.KEY_BATCH, payload
                )
                kind, reply, received = protocol.recv_frame(self._sock)
                elapsed = time.perf_counter() - started
            finally:
                self.in_flight -= 1
        _BYTES_SENT.inc(sent)
        _BYTES_RECEIVED.inc(received)
        _RTT_SECONDS.observe(elapsed)
        from repro.exec import cost as _cost

        _cost.note_locality_sample((sent + received) / max(1, n_items))
        if kind == protocol.FrameKind.SHARD_STALE:
            info = protocol.decode_info(reply, what="SHARD_STALE")
            raise _ShardStale(info.get("reason", "shard store is stale"))
        if kind == protocol.FrameKind.TASK_ERROR:
            raise protocol.decode_error(reply)
        if kind != protocol.FrameKind.RESULT:
            raise ProtocolError(
                f"expected RESULT, TASK_ERROR or SHARD_STALE, got {kind.name}"
            )
        results, kernel_delta, spans = protocol.decode_result(reply)
        return results, kernel_delta, spans, sent + received

    def mark_dead(self) -> None:
        """Declare the worker dead and close its socket (idempotent)."""
        with self._lock:
            sock, self._sock = self._sock, None
            self.dead = True
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover -- close races are benign
                pass

    def close(self) -> None:
        """Close the connection without declaring the worker dead."""
        with self._lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover -- close races are benign
                pass

    def __repr__(self) -> str:
        state = "dead" if self.dead else (
            "connected" if self._sock is not None else "idle"
        )
        return f"WorkerClient({self.address}, {state})"


def _workers_from_env() -> list[str]:
    raw = os.environ.get("REPRO_WORKERS_ADDRS", "")
    return [part.strip() for part in raw.split(",") if part.strip()]


def _apply_task(task, item):
    """Module-level trampoline: lets :meth:`Executor.map` ship a
    picklable *task* through the encoded path (``common`` is the task)."""
    return task(item)


class RemoteExecutor(Executor):
    """Scatter/gather execution across socket worker daemons.

    *addresses* defaults to ``REPRO_WORKERS_ADDRS`` (comma-separated
    ``host:port`` / ``unix:/path`` specs).  With no addresses at all
    the executor still constructs and works -- every batch runs on the
    local fallback -- so ``REPRO_EXECUTOR=remote`` without a cluster
    degrades to ``auto`` rather than failing.
    """

    kind = "remote"

    def __init__(self, workers: int | None = None, addresses=None):
        if addresses is None:
            addresses = _workers_from_env()
        self.addresses = [str(address) for address in addresses]
        if workers is None:
            workers = max(1, len(self.addresses))
        super().__init__(workers)
        self._clients = [WorkerClient(address) for address in self.addresses]
        self._local = None
        self._dispatch_pool = None
        self._lock = threading.Lock()
        self._shards = ShardSyncManager()

    # -- local fallback --------------------------------------------------------

    def _local_executor(self) -> Executor:
        if self._local is None:
            with self._lock:
                if self._local is None:
                    from repro.exec.executors import AdaptiveExecutor

                    self._local = AdaptiveExecutor(os.cpu_count() or 1)
        return self._local

    def _ensure_dispatch_pool(self):
        if self._dispatch_pool is None:
            with self._lock:
                if self._dispatch_pool is None:
                    from concurrent.futures import ThreadPoolExecutor

                    self._dispatch_pool = ThreadPoolExecutor(
                        max_workers=max(2, len(self._clients)),
                        thread_name_prefix="repro-remote",
                    )
        return self._dispatch_pool

    def _live_clients(self) -> list[WorkerClient]:
        """Connected clients, attempting one reconnect per dead one."""
        live = []
        for client in self._clients:
            if client.dead:
                if client.reconnect():
                    live.append(client)
            elif client.connect():
                live.append(client)
        return live

    # -- the Executor contract -------------------------------------------------

    def map(self, task, items) -> list:
        items = list(items)
        if len(items) <= 1 or _task_depth() > 0:
            note_inline_batch()
            return [task(item) for item in items]
        # Arbitrary tasks reach the wire through the trampoline when
        # they pickle (module-level callables); closures fall back to
        # the local executor, exactly like the warm pool's contract.
        return self.map_encoded(_apply_task, task, items)

    def _map(self, task, items):  # pragma: no cover -- map() routes itself
        return [task(item) for item in items]

    def map_encoded(self, fn, common, items) -> list:
        items = list(items)
        if len(items) <= 1 or _task_depth() > 0:
            note_inline_batch()
            return [fn(common, item) for item in items]
        results = self.submit_batch(fn, common, items)
        if results is None:
            _FALLBACKS.inc()
            return self._local_executor().map_encoded(fn, common, items)
        return results

    def submit_batch(self, fn, common, items) -> list | None:
        """Scatter ``[fn(common, item) for item in items]`` to the cluster.

        Returns results in exact item order, or ``None`` when the batch
        cannot or should not go remote (unpicklable payload, no live
        workers, or the cost model priced it below the wire threshold)
        -- the caller falls back locally, mirroring
        :meth:`repro.exec.warmpool.WarmPool.submit_batch`.
        """
        items = list(items)
        if not items:
            return []
        if not self._worth_shipping(len(items)):
            _LOCAL_BATCHES.inc()
            return None
        live = self._live_clients()
        if not live:
            return None
        try:
            common_blob = protocol.encode_common(fn, common)
        except Exception:  # noqa: BLE001 -- any pickling failure: fall back
            return None
        chunks = self._chunk(items, len(live))
        trace = tracing.enabled()
        note_parallel_batch(len(items))
        _BATCHES.inc()
        _TASKS.inc(len(items))
        with tracing.span(
            "exec.remote.scatter", chunks=len(chunks), tasks=len(items)
        ):
            # Chunk items are encoded inside the dispatch threads, not
            # here: chunk 0 is on the wire (and its worker computing)
            # while chunk 1 is still pickling, so the coordinator's
            # encode cost overlaps the cluster's work instead of
            # serializing in front of it.
            pool = self._ensure_dispatch_pool()
            futures = [
                pool.submit(
                    self._run_chunk_resilient,
                    common_blob,
                    chunk,
                    live[index % len(live)],
                    trace,
                )
                for index, chunk in enumerate(chunks)
            ]
            gathered, first_error, unshippable = [], None, False
            for future in futures:
                try:
                    gathered.append(future.result())
                except _UnshippableChunk:
                    unshippable = True
                except BaseException as exc:  # noqa: BLE001 -- gather all first
                    if first_error is None:
                        first_error = exc
            if first_error is not None:
                raise first_error
            if unshippable:
                return None
        results: list = []
        for chunk_results, kernel_delta, spans in gathered:
            results.extend(chunk_results)
            if kernel_delta:
                self._apply_kernel_delta(kernel_delta)
            if spans:
                tracing.ingest(spans)
        return results

    def _run_chunk_resilient(
        self,
        common_blob: bytes,
        chunk: list,
        client: WorkerClient,
        trace: bool,
    ) -> tuple[list, tuple | None, object]:
        """Run one chunk, surviving any number of worker deaths.

        Transport failures mark the worker dead and move the chunk to
        the next survivor with linear backoff; the local inline run is
        the final rung, so the chunk always completes.  Task errors
        propagate untouched; items that cannot pickle raise
        :class:`_UnshippableChunk` so the batch falls back locally.
        """
        try:
            chunk_blob = protocol.encode_chunk(chunk)
        except Exception as exc:  # noqa: BLE001 -- pickling failure: fall back
            raise _UnshippableChunk(str(exc)) from exc
        attempt = 0
        while True:
            if not client.dead:
                try:
                    return client.run_chunk(
                        common_blob, chunk_blob, len(chunk), trace
                    )
                except TaskDecodeError as exc:
                    # The task pickles here but its module does not
                    # import over there (a test module, a __main__
                    # script): no worker can run it, so the whole batch
                    # falls back locally rather than failing/retrying.
                    raise _UnshippableChunk(str(exc)) from exc
                except (ProtocolError, OSError):
                    client.mark_dead()
                    _WORKER_DEATHS.inc()
            survivors = [peer for peer in self._clients if not peer.dead]
            if not survivors:
                # Cluster gone: run the chunk here, exactly and quietly.
                from repro.exec.remote.worker import _execute_chunk

                return _execute_chunk(common_blob, chunk_blob, None), None, None
            attempt += 1
            _RETRIES.inc()
            time.sleep(RETRY_BACKOFF * min(attempt, 5))
            # Prefer the survivor with the least queued work.
            client = min(survivors, key=lambda peer: peer.in_flight)

    # -- shard locality --------------------------------------------------------

    def publish_relation(self, relation, changed=None, removed=None) -> None:
        """Register *relation* as shippable by key (with dirty hints).

        Callers with precise dirty-key knowledge (the stream engine's
        flush delta, ``Database.persist``) pass hints so only O(delta)
        rows cross the wire on the next sync; without hints the manager
        diffs against the previously published version.
        """
        self._shards.publish(relation, changed=changed, removed=removed)

    def map_encoded_keyed(self, fn, common, specs, items) -> list:
        """Like :meth:`map_encoded`, shipping entity keys when possible.

        ``specs[i]`` describes ``items[i]`` as
        ``[(relation_name, keys), ...]`` -- enough for a shard-resident
        worker to rebuild the item from its local store.  Every
        condition that rules out key-only scatter (no shard stores,
        unpublished relations, stale epochs, cost gate, worker death
        mid-batch) degrades to the tuple-shipping path, preserving the
        bit-for-bit equivalence contract.
        """
        items = list(items)
        if len(items) <= 1 or _task_depth() > 0:
            note_inline_batch()
            return [fn(common, item) for item in items]
        results = self.submit_batch_keyed(fn, common, list(specs), items)
        if results is not None:
            return results
        return self.map_encoded(fn, common, items)

    def submit_batch_keyed(self, fn, common, specs, items) -> list | None:
        """Scatter a batch as key lists; ``None`` defers to tuple shipping.

        Whole-batch disqualifiers (locality disabled, a worker without
        a store, an unpublished relation, a failed sync, the cost gate)
        return ``None`` so the caller reuses :meth:`submit_batch`
        unchanged; per-chunk trouble (stale epoch, worker death) is
        handled inside :meth:`_run_chunk_resilient_keyed` without
        abandoning the keyed batch.
        """
        items = list(items)
        if not items:
            return []
        if len(specs) != len(items):
            return None
        mode = os.environ.get("REPRO_REMOTE_LOCALITY", "").strip().lower()
        if mode in ("0", "off", "no"):
            return None
        names: list = []
        for spec in specs:
            for name, _keys in spec:
                if name not in names:
                    names.append(name)
        if not names:
            return None
        tracked = set(self._shards.names())
        if any(name not in tracked for name in names):
            return None
        live = self._live_clients()
        if not live or any(client.store_url is None for client in live):
            return None
        if mode not in ("1", "on", "force") and not self._worth_shipping_keyed(
            len(items), live, names
        ):
            return None
        synced = self._sync_clients(live, names)
        if not synced:
            return None
        try:
            common_blob = protocol.encode_common(fn, common)
        except Exception:  # noqa: BLE001 -- any pickling failure: fall back
            return None
        paired = self._chunk(list(zip(specs, items)), len(synced))
        trace = tracing.enabled()
        note_parallel_batch(len(items))
        _BATCHES.inc()
        _TASKS.inc(len(items))
        with tracing.span(
            "exec.remote.scatter_keyed", chunks=len(paired), tasks=len(items)
        ):
            pool = self._ensure_dispatch_pool()
            futures = [
                pool.submit(
                    self._run_chunk_resilient_keyed,
                    common_blob,
                    [spec for spec, _item in pair],
                    [item for _spec, item in pair],
                    synced,
                    synced[index % len(synced)],
                    trace,
                )
                for index, pair in enumerate(paired)
            ]
            gathered, first_error, unshippable = [], None, False
            for future in futures:
                try:
                    gathered.append(future.result())
                except _UnshippableChunk:
                    unshippable = True
                except BaseException as exc:  # noqa: BLE001 -- gather all first
                    if first_error is None:
                        first_error = exc
            if first_error is not None:
                raise first_error
            if unshippable:
                return None
        results: list = []
        for chunk_results, kernel_delta, spans in gathered:
            results.extend(chunk_results)
            if kernel_delta:
                self._apply_kernel_delta(kernel_delta)
            if spans:
                tracing.ingest(spans)
        return results

    def _sync_clients(self, live, names) -> list | None:
        """Bring every live client's shard store current on *names*.

        Returns the clients whose stores now hold every referenced
        relation at the published version (their ``store_epoch`` is
        refreshed from the sync reply), or ``None`` when some name was
        never published -- key-only scatter cannot serve it at all.  A
        store that rejects a delta (pre-key-layout rows, out-of-band
        damage) gets one full-snapshot retry before the client is
        skipped for this batch.
        """
        synced: list = []
        for client in live:
            plan = self._shards.plan_for(client.shard_versions, names)
            if plan is None:
                return None
            ops, new_versions = plan
            force_full = False
            while True:
                if ops:
                    try:
                        reply = client.sync_shards(protocol.encode_sync(ops))
                    except (ProtocolError, OSError):
                        client.mark_dead()
                        _WORKER_DEATHS.inc()
                        break
                    if "error" in reply:
                        if force_full:
                            break
                        force_full = True
                        plan = self._shards.plan_for(
                            client.shard_versions, names, force_full=True
                        )
                        if plan is None:
                            return None
                        ops, new_versions = plan
                        continue
                    client.store_epoch = reply.get("epoch")
                client.shard_versions.update(new_versions)
                synced.append(client)
                break
        return synced

    def _run_chunk_resilient_keyed(
        self,
        common_blob: bytes,
        spec_chunk: list,
        item_chunk: list,
        synced: list,
        client: WorkerClient,
        trace: bool,
    ) -> tuple[list, tuple | None, object]:
        """Run one keyed chunk, degrading to tuple shipping on trouble.

        A ``SHARD_STALE`` reply (epoch drift, missing rows) or running
        out of synced survivors re-ships this chunk's *tuples* through
        :meth:`_run_chunk_resilient` -- same items, same order, so the
        gather contract is untouched.  Worker deaths retry the keyed
        frame on synced survivors first, exactly like the tuple path's
        retry ladder.
        """
        attempt = 0
        while True:
            if not client.dead:
                spec_blob = protocol.encode_keyspec(
                    client.store_epoch or 0, spec_chunk
                )
                try:
                    results, kernel_delta, spans, wire = client.run_chunk_keyed(
                        common_blob, spec_blob, len(item_chunk), trace
                    )
                except _ShardStale:
                    _LOCALITY_MISSES.inc()
                    return self._run_chunk_resilient(
                        common_blob, item_chunk, client, trace
                    )
                except TaskDecodeError as exc:
                    raise _UnshippableChunk(str(exc)) from exc
                except (ProtocolError, OSError):
                    client.mark_dead()
                    _WORKER_DEATHS.inc()
                else:
                    _LOCALITY_HITS.inc()
                    from repro.exec import cost as _cost

                    saved = int(
                        _cost.observed_remote_bytes_per_item()
                        * len(item_chunk)
                        - wire
                    )
                    if saved > 0:
                        _BYTES_SAVED.inc(saved)
                    return results, kernel_delta, spans
            survivors = [peer for peer in synced if not peer.dead]
            if not survivors:
                # No synced store left: ship the tuples instead.
                _LOCALITY_MISSES.inc()
                return self._run_chunk_resilient(
                    common_blob, item_chunk, client, trace
                )
            attempt += 1
            _RETRIES.inc()
            time.sleep(RETRY_BACKOFF * min(attempt, 5))
            client = min(survivors, key=lambda peer: peer.in_flight)

    # -- policy ----------------------------------------------------------------

    def _worth_shipping(self, n_items: int) -> bool:
        """The remote-tier cost gate (``REPRO_REMOTE_THRESHOLD`` pins it)."""
        raw = os.environ.get("REPRO_REMOTE_THRESHOLD", "").strip()
        if raw:
            try:
                return n_items >= int(raw)
            except ValueError:
                raise ConfigError(
                    f"REPRO_REMOTE_THRESHOLD must be an integer item count, "
                    f"got {raw!r}"
                ) from None
        from repro.exec import cost as _cost

        return _cost.remote_worthwhile(n_items, max(1, len(self.addresses)))

    def _worth_shipping_keyed(self, n_items: int, live, names) -> bool:
        """The locality-tier cost gate: keys + pending sync vs tuples.

        ``REPRO_REMOTE_THRESHOLD`` pins this gate too, so test runs
        that force everything remote exercise the keyed path as well.
        The pending-sync size is the worst lag across the live clients
        -- every one of them must be brought current before the batch
        scatters.
        """
        raw = os.environ.get("REPRO_REMOTE_THRESHOLD", "").strip()
        if raw:
            try:
                return n_items >= int(raw)
            except ValueError:
                raise ConfigError(
                    f"REPRO_REMOTE_THRESHOLD must be an integer item count, "
                    f"got {raw!r}"
                ) from None
        from repro.exec import cost as _cost

        pending = 0
        for client in live:
            lag = self._shards.pending_items(client.shard_versions, names)
            if lag is None:
                return False
            pending = max(pending, lag)
        return _cost.locality_worthwhile(
            n_items, max(1, len(self.addresses)), pending
        )

    @staticmethod
    def _chunk(items: list, workers: int) -> list[list]:
        """At most *workers* contiguous chunks, sizes differing by <= 1."""
        count = min(max(workers, 1), len(items))
        base, extra = divmod(len(items), count)
        chunks, start = [], 0
        for index in range(count):
            size = base + (1 if index < extra else 0)
            chunks.append(items[start:start + size])
            start += size
        return chunks

    @staticmethod
    def _apply_kernel_delta(delta: tuple) -> None:
        kernel, fallback, compilations = delta
        apply_kernel_delta(kernel, fallback, compilations)

    def close(self) -> None:
        """Close every client connection and the dispatch pool.

        Idempotent by construction: every resource is swapped out under
        the lock before being released, so repeated ``close()`` calls
        (and the interpreter-exit hook racing an explicit close) find
        nothing left to do.
        """
        with self._lock:
            pool, self._dispatch_pool = self._dispatch_pool, None
            local, self._local = self._local, None
        for client in self._clients:
            client.close()
        if pool is not None:
            pool.shutdown(wait=True)
        if local is not None:
            local.close()

    def __repr__(self) -> str:
        return (
            f"RemoteExecutor({len(self.addresses)} worker address(es), "
            f"{self.workers} worker(s))"
        )
