"""The worker daemon: serve encoded partition batches over a socket.

A :class:`WorkerServer` listens on a TCP ``host:port`` (or an
``AF_UNIX`` path), accepts any number of coordinator connections, and
answers each one on its own thread:

* ``HELLO`` -> ``HELLO_REPLY`` with the worker's pid, pool size and
  protocol version -- the coordinator's liveness and identity check;
* ``PING`` -> ``PONG`` -- heartbeats, also how the coordinator measures
  the round-trip latency the cost model prices remote dispatch with;
* ``BATCH`` -> ``RESULT`` (or ``TASK_ERROR`` when the task itself
  raises): the chunk is decoded with the warm pool's compact encoding,
  executed in request order, and the reply carries the results plus the
  kernel-stats delta the work produced and -- when the coordinator asked
  -- the tracing spans, re-parented on the coordinator side so a
  distributed batch reads as one trace tree.

With a ``--store URL`` the daemon is **shard-resident**: it owns a
local storage backend (typically SQLite) holding its partitions' rows,
kept current by the coordinator's ``SHARD_SYNC`` pushes.  A
``KEY_BATCH`` frame then carries entity keys instead of tuples; the
worker point-loads the named rows from its store (in the
coordinator-sent key order, so the rebuilt shard relations are
bit-for-bit the ones the coordinator would have shipped) and executes
the chunk as usual.  Every ``KEY_BATCH`` asserts the store's
``catalog_version`` (the *epoch*); a mismatch, an unknown relation or
a missing key answers ``SHARD_STALE`` and the coordinator re-ships the
chunk as tuples -- staleness degrades, it never corrupts.

With ``pool_workers > 1`` (and a ``fork``-capable platform) a batch is
fanned out over the worker's own local warm pool
(:mod:`repro.exec.warmpool`), so one daemon can spend a whole
multi-core box; by default the daemon executes inline, one chunk per
connection thread, which is the right shape for the one-daemon-per-core
clusters :func:`spawn_local_cluster` builds.

A malformed or truncated frame closes that connection (the error never
crashes the daemon); the protocol guarantees the coordinator sees the
failure as a transport error and re-scatters elsewhere.

``repro worker serve HOST:PORT`` wraps this in a CLI;
``repro worker run -n N -- CMD`` spawns a loopback cluster and runs a
command against it (how ``make test-remote`` drives the tier-1 suite).
"""

from __future__ import annotations

import os
import pickle
import socket
import threading

from repro.ds.kernel import STATS as KERNEL_STATS
from repro.errors import ConfigError, ProtocolError, TaskDecodeError
from repro.exec.remote import protocol
from repro.obs import tracing


def parse_address(spec: str) -> tuple[int, object]:
    """Parse ``host:port`` / ``unix:/path`` into ``(family, address)``.

    Raises :class:`ConfigError` on anything else, naming both accepted
    shapes.
    """
    spec = spec.strip()
    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise ConfigError("unix: worker address needs a socket path")
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover -- non-POSIX
            raise ConfigError("unix: worker addresses need AF_UNIX support")
        return socket.AF_UNIX, path
    host, separator, port = spec.rpartition(":")
    if not separator or not host:
        raise ConfigError(
            f"worker address must be HOST:PORT or unix:/path, got {spec!r}"
        )
    try:
        return socket.AF_INET, (host, int(port))
    except ValueError:
        raise ConfigError(
            f"worker address port must be an integer, got {port!r} "
            f"in {spec!r}"
        ) from None


def format_address(family: int, address) -> str:
    """Render ``(family, address)`` back into the spec syntax."""
    if family == getattr(socket, "AF_UNIX", object()):
        return f"unix:{address}"
    host, port = address
    return f"{host}:{port}"


class _ShardMiss(Exception):
    """Internal: the local store cannot serve a KEY_BATCH exactly."""


def _decode_task(common_blob: bytes):
    """Unpickle the per-batch ``(fn, common)`` pair.

    The task's module may not import here (a test module, a ``__main__``
    script); :class:`TaskDecodeError` ships back so the coordinator runs
    the batch locally instead of raising or retrying.
    """
    try:
        return pickle.loads(common_blob)
    except Exception as exc:  # noqa: BLE001 -- any unpickle failure
        raise TaskDecodeError(
            f"worker pid {os.getpid()} cannot decode the shipped task: "
            f"{exc!r}"
        ) from exc


def _execute_items(fn, common, items: list, pool) -> list:
    """Run decoded items in request order.

    Inline execution runs under the nested-task guard: a worker daemon
    forked from a ``REPRO_EXECUTOR=remote`` process inherits that
    configuration, and without the guard a task that itself reaches a
    partition-aware operation would try to scatter back to the cluster
    it is part of.
    """
    from repro.exec.executors import _inside_task

    if pool is not None and len(items) > 1:
        results = pool.submit_batch(fn, common, items)
        if results is not None:
            return results
    with _inside_task():
        return [fn(common, item) for item in items]


def _execute_chunk(common_blob: bytes, chunk_blob: bytes, pool) -> list:
    """Decode and run one tuple-shipped chunk, preserving item order."""
    fn, common = _decode_task(common_blob)
    try:
        chunk = pickle.loads(chunk_blob)
    except Exception as exc:  # noqa: BLE001 -- see _decode_task
        raise TaskDecodeError(
            f"worker pid {os.getpid()} cannot decode the shipped chunk: "
            f"{exc!r}"
        ) from exc
    return _execute_items(fn, common, chunk, pool)


class WorkerServer:
    """One daemon: a listening socket plus per-connection threads."""

    def __init__(
        self,
        address: str = "127.0.0.1:0",
        pool_workers: int = 1,
        store: str | None = None,
    ):
        if pool_workers < 1:
            raise ConfigError(
                f"pool_workers must be >= 1, got {pool_workers!r}"
            )
        self._family, self._requested = parse_address(address)
        self.pool_workers = int(pool_workers)
        self.store_url = str(store) if store else None
        # SQLite connections are thread-bound, and every coordinator
        # connection is served on its own thread: each serving thread
        # opens its own backend over the same store file.
        self._store_local = threading.local()
        self._listener = None
        self._bound = None
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()

    def _store(self):
        """This serving thread's handle on the shard store (or None)."""
        if self.store_url is None:
            return None
        backend = getattr(self._store_local, "backend", None)
        if backend is None:
            from repro.storage.backends import resolve_backend

            backend = resolve_backend(self.store_url).open()
            self._store_local.backend = backend
        return backend

    @property
    def address(self) -> str:
        """The bound address spec (the real port once started)."""
        if self._bound is None:
            raise ConfigError("worker server is not started")
        return format_address(self._family, self._bound)

    def start(self) -> "WorkerServer":
        """Bind, listen, and start the accept loop on a thread."""
        listener = socket.socket(self._family, socket.SOCK_STREAM)
        if self._family == socket.AF_INET:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(self._requested)
        listener.listen(64)
        self._listener = listener
        self._bound = listener.getsockname()
        accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-worker-accept", daemon=True
        )
        accept_thread.start()
        self._threads.append(accept_thread)
        return self

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (for the ``repro worker serve`` CLI)."""
        if self._listener is None:
            self.start()
        self._stop.wait()

    def stop(self) -> None:
        """Stop accepting and close the listener (idempotent)."""
        self._stop.set()
        with self._lock:
            listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover -- close races are benign
                pass
        if self._family == getattr(socket, "AF_UNIX", object()) and self._bound:
            try:
                os.unlink(self._bound)
            except OSError:
                pass

    def __enter__(self) -> "WorkerServer":
        return self.start() if self._listener is None else self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- serving --------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                listener = self._listener
            if listener is None:
                return
            try:
                connection, _peer = listener.accept()
            except OSError:
                return  # listener closed: shutting down
            thread = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="repro-worker-conn",
                daemon=True,
            )
            thread.start()

    def _serve_connection(self, connection) -> None:
        pool = None
        if self.pool_workers > 1:
            from repro.exec import warmpool

            pool = warmpool.get_pool(self.pool_workers)
        try:
            while not self._stop.is_set():
                try:
                    kind, payload, _ = protocol.recv_frame(connection)
                except (ProtocolError, OSError):
                    return  # truncated/garbage frame or peer gone: drop it
                if kind == protocol.FrameKind.HELLO:
                    protocol.send_frame(
                        connection,
                        protocol.FrameKind.HELLO_REPLY,
                        protocol.encode_info(self._hello_info()),
                    )
                elif kind == protocol.FrameKind.PING:
                    protocol.send_frame(
                        connection, protocol.FrameKind.PONG, b""
                    )
                elif kind == protocol.FrameKind.BATCH:
                    self._serve_batch(connection, payload, pool)
                elif kind == protocol.FrameKind.KEY_BATCH:
                    self._serve_key_batch(connection, payload, pool)
                elif kind == protocol.FrameKind.SHARD_SYNC:
                    self._serve_sync(connection, payload)
                elif kind == protocol.FrameKind.SHUTDOWN:
                    self.stop()
                    return
                else:
                    return  # a reply frame from a confused peer: drop it
        finally:
            try:
                connection.close()
            except OSError:  # pragma: no cover -- close races are benign
                pass

    def _hello_info(self) -> dict:
        info = {
            "pid": os.getpid(),
            "pool_workers": self.pool_workers,
            "version": protocol.VERSION,
            "store": self.store_url,
            "store_epoch": None,
        }
        if self.store_url is not None:
            try:
                info["store_epoch"] = self._store().catalog_version()
            except Exception:  # noqa: BLE001 -- an unusable store means no epoch
                info["store"] = None
        return info

    def _serve_batch(self, connection, payload: bytes, pool) -> None:
        try:
            common_blob, chunk_blob, trace = protocol.decode_batch(payload)
        except ProtocolError:
            raise  # malformed batch: let the connection loop drop the peer
        self._run_and_reply(
            connection,
            lambda: _execute_chunk(common_blob, chunk_blob, pool),
            trace,
        )

    def _serve_key_batch(self, connection, payload: bytes, pool) -> None:
        """Serve a key-only chunk from the local shard store.

        Items rebuild from point loads in the coordinator-sent key
        order -- exactly the shard relations the coordinator would have
        pickled -- then execute like any tuple-shipped chunk.  Anything
        the store cannot serve exactly answers ``SHARD_STALE``.
        """
        try:
            common_blob, spec_blob, trace = protocol.decode_batch(payload)
            epoch, specs = protocol.decode_keyspec(spec_blob)
        except ProtocolError:
            raise
        try:
            items = self._materialize_items(epoch, specs)
        except _ShardMiss as miss:
            protocol.send_frame(
                connection,
                protocol.FrameKind.SHARD_STALE,
                protocol.encode_info({"reason": str(miss)}),
            )
            return
        self._run_and_reply(
            connection,
            lambda: _execute_items(*_decode_task(common_blob), items, pool),
            trace,
        )

    def _materialize_items(self, epoch: int, specs: list) -> list:
        """Rebuild each spec's shard-relation row from the local store."""
        from repro.errors import SerializationError
        from repro.model.relation import ExtendedRelation

        store = self._store()
        if store is None:
            raise _ShardMiss("worker has no shard store (--store)")
        current = store.catalog_version()
        if current != epoch:
            raise _ShardMiss(
                f"shard epoch mismatch: coordinator expects {epoch}, "
                f"store is at {current}"
            )
        schemas: dict[str, object] = {}
        items = []
        for spec in specs:
            parts = []
            for name, keys in spec:
                schema = schemas.get(name)
                if schema is None:
                    try:
                        schema = store.load_schema(name)
                    except SerializationError as exc:
                        raise _ShardMiss(str(exc)) from exc
                    schemas[name] = schema
                rows = store.load_rows(name, keys)
                if rows is None:
                    raise _ShardMiss(
                        f"store is missing key(s) of relation {name!r}"
                    )
                # "allow" admits whatever the coordinator's source
                # relation held (its own policy already vetted every
                # row); content is identical either way.
                parts.append(
                    ExtendedRelation(schema, rows, on_unsupported="allow")
                )
            items.append(tuple(parts))
        return items

    def _run_and_reply(self, connection, execute, trace: bool) -> None:
        try:
            baseline = KERNEL_STATS.snapshot()
            if trace:
                with tracing.capture() as spans:
                    with tracing.tracing_scope():
                        results = execute()
            else:
                spans = None
                results = execute()
            delta = KERNEL_STATS.since(baseline)
            reply = protocol.encode_result(
                results,
                (
                    delta.kernel_combinations,
                    delta.fallback_combinations,
                    delta.compilations,
                ),
                list(spans) if spans else None,
            )
        except ProtocolError:
            raise  # malformed frame: let the connection loop drop the peer
        except BaseException as exc:  # noqa: BLE001 -- task errors cross the wire
            protocol.send_frame(
                connection,
                protocol.FrameKind.TASK_ERROR,
                protocol.encode_error(exc),
            )
            return
        protocol.send_frame(connection, protocol.FrameKind.RESULT, reply)

    def _serve_sync(self, connection, payload: bytes) -> None:
        """Apply shard-store sync operations; reply with the new epoch.

        Any application failure -- no store, a store that rejects a
        delta (legacy un-keyed rows), a broken disk -- answers with an
        ``error`` string instead of crashing the connection: the
        coordinator retries with full snapshots or gives up on keyed
        dispatch for this worker, and tuple shipping still works.
        """
        try:
            ops = protocol.decode_sync(payload)
        except ProtocolError:
            raise
        try:
            store = self._store()
            if store is None:
                raise ConfigError(
                    "worker has no shard store (start it with --store URL)"
                )
            for op in ops:
                if op[0] == "full":
                    _, _name, relation = op
                    store.save_relation(relation)
                elif op[0] == "delta":
                    _, name, schema, upserts, removed = op
                    store.apply_relation_delta(name, schema, upserts, removed)
                else:
                    raise ConfigError(f"unknown sync op {op[0]!r}")
            reply = {"epoch": store.catalog_version()}
        except BaseException as exc:  # noqa: BLE001 -- report, don't crash
            reply = {"error": repr(exc)}
        protocol.send_frame(
            connection,
            protocol.FrameKind.SHARD_SYNC_REPLY,
            protocol.encode_info(reply),
        )


# -- local clusters -----------------------------------------------------------


def _serve_child(
    address: str, pool_workers: int, port_pipe, store: str | None = None
) -> None:
    """Child-process entry: start a server and report the bound address."""
    server = WorkerServer(address, pool_workers=pool_workers, store=store)
    server.start()
    port_pipe.send(server.address)
    port_pipe.close()
    server.serve_forever()


class LocalCluster:
    """A handful of loopback worker daemons, one process each."""

    def __init__(
        self,
        processes: list,
        addresses: list[str],
        stores: list[str | None] | None = None,
    ):
        self.processes = processes
        self.addresses = addresses
        self.stores = stores if stores is not None else [None] * len(processes)

    @property
    def addr_spec(self) -> str:
        """The comma-joined spec ``REPRO_WORKERS_ADDRS`` expects."""
        return ",".join(self.addresses)

    def kill_worker(self, index: int) -> None:
        """Terminate one daemon abruptly (fault-injection tests)."""
        self.processes[index].terminate()
        self.processes[index].join(timeout=5)

    def stop(self) -> None:
        """Terminate every daemon (idempotent)."""
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        for process in self.processes:
            process.join(timeout=5)

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        alive = sum(1 for process in self.processes if process.is_alive())
        return (
            f"LocalCluster({len(self.processes)} worker(s), {alive} alive: "
            f"{self.addr_spec})"
        )


def spawn_local_cluster(
    n: int,
    pool_workers: int = 1,
    host: str = "127.0.0.1",
    store_dir: str | None = None,
) -> LocalCluster:
    """Fork *n* worker daemons on loopback ports picked by the kernel.

    For tests, benchmarks and ``repro worker run``.  Daemons are forked
    from this process (so they inherit the imported modules -- tasks
    pickled by reference resolve immediately) and listen on ephemeral
    ports; the returned :class:`LocalCluster` carries the bound
    addresses and terminates the daemons on :meth:`LocalCluster.stop`
    or context-manager exit.  With *store_dir* each daemon owns a
    SQLite shard store ``worker-<i>.sqlite`` under that directory, so
    batches can ship keys instead of tuples (the caller owns the
    directory's lifetime).
    """
    if n < 1:
        raise ConfigError(f"a cluster needs >= 1 worker, got {n!r}")
    import multiprocessing

    context = multiprocessing.get_context("fork")
    processes, addresses, stores = [], [], []
    for index in range(n):
        store = None
        if store_dir is not None:
            store = "sqlite:" + os.path.join(
                str(store_dir), f"worker-{index}.sqlite"
            )
        parent_pipe, child_pipe = context.Pipe(duplex=False)
        process = context.Process(
            target=_serve_child,
            args=(f"{host}:0", pool_workers, child_pipe, store),
            daemon=True,
        )
        process.start()
        child_pipe.close()
        if not parent_pipe.poll(10):
            for started in processes:
                started.terminate()
            raise ProtocolError("cluster worker failed to report its port")
        addresses.append(parent_pipe.recv())
        parent_pipe.close()
        processes.append(process)
        stores.append(store)
    return LocalCluster(processes, addresses, stores)
