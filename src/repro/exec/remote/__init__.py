"""repro.exec.remote -- distributed shard-by-key execution over sockets.

The executor abstraction (:mod:`repro.exec.executors`) historically
stopped at one host: serial, thread-pool and fork process-pool
executors all spend the same machine.  This package carries the same
``Executor`` contract across a wire:

* :mod:`repro.exec.remote.protocol` -- the length-prefixed, CRC-checked
  binary framing both ends speak.  Batches reuse the warm pool's
  compact task encoding (:meth:`Executor.map_encoded`): ``(fn, common)``
  pickled once per batch and reused for every chunk frame, per-chunk
  item blobs, and reply frames that ship results *plus* the worker-side
  kernel-stats deltas and tracing spans, so telemetry crosses the wire
  with the data.
* :mod:`repro.exec.remote.worker` -- the worker daemon
  (``repro worker serve HOST:PORT``): accepts connections, runs batch
  frames through the local machinery (optionally fanned over a local
  warm pool with ``--pool-workers``), and answers heartbeats.
  :func:`spawn_local_cluster` forks *n* daemons on loopback ports for
  tests, benchmarks and ``repro worker run``.
* :mod:`repro.exec.remote.coordinator` -- :class:`RemoteExecutor`, the
  ``Executor`` that scatters encoded partition batches across the
  configured workers (``REPRO_WORKERS_ADDRS``), gathers results in
  exact serial order, retries a dead worker's chunks on survivors with
  backoff, and transparently falls back to the local adaptive executor
  when a payload cannot pickle or the cluster is gone.  Batches the
  cost model (:mod:`repro.exec.cost`, remote tier) prices below the
  wire overhead never leave the process.
* :mod:`repro.exec.remote.shards` -- the coordinator-side ledger of the
  data-locality layer: which relation versions each worker's shard
  store holds, delta logs for O(delta) ``SHARD_SYNC`` pushes, and the
  sync plans behind key-only ``KEY_BATCH`` scatter (workers started
  with ``--store URL`` point-load their rows locally; any epoch
  mismatch, dead worker or un-synced shard falls back to tuple
  shipping).

Whatever the cluster size and whatever fails mid-batch, the equivalence
contract of :mod:`repro.exec` holds: results equal the serial path
exactly -- same tuples, same order, exact Fractions, bit-for-bit floats
(property-tested in ``tests/exec``).  Activity surfaces as the
``exec.remote.*`` metrics in the :mod:`repro.obs` registry.
"""

from repro.exec.remote.coordinator import RemoteExecutor, WorkerClient
from repro.exec.remote.protocol import (
    FrameKind,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.exec.remote.shards import ShardSyncManager
from repro.exec.remote.worker import (
    LocalCluster,
    WorkerServer,
    spawn_local_cluster,
)

__all__ = [
    "FrameKind",
    "LocalCluster",
    "ProtocolError",
    "RemoteExecutor",
    "ShardSyncManager",
    "WorkerClient",
    "WorkerServer",
    "recv_frame",
    "send_frame",
    "spawn_local_cluster",
]
