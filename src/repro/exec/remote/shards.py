"""Coordinator-side shard state: what each worker's store should hold.

The data-locality layer keeps a per-node SQLite store next to every
worker daemon (``repro worker serve --store URL``) so scatter frames
can carry entity *keys* instead of serialized tuples.  That only works
if the coordinator knows, per worker, how far its store lags behind the
relations the next batch will reference -- which is exactly what
:class:`ShardSyncManager` tracks:

* :meth:`publish` registers the current version of a relation, either
  with explicit dirty-key hints (the stream engine's
  :class:`~repro.stream.changelog.BatchDelta` knows precisely which
  entities a flush touched -- PR 8's dirty-shard tracking, reused) or
  by diffing against the previously published version;
* a bounded per-relation **delta log** records which keys each version
  touched, so a worker that is only a few versions behind receives an
  O(delta) upsert list instead of a full snapshot;
* :meth:`plan_for` turns one client's synced-version map into the
  minimal list of ``SHARD_SYNC`` operations bringing its store current
  (``[]`` when it already is), and :meth:`pending_items` prices that
  same plan for the cost gate.

Versions here are coordinator-side bookkeeping; the wire-level
freshness check is the worker store's ``catalog_version`` (the
*epoch*), which every sync reply reports and every ``KEY_BATCH``
frame asserts -- out-of-band store mutation or a worker restart with a
different store shows up as an epoch mismatch and the chunk falls back
to tuple shipping.
"""

from __future__ import annotations

import threading

#: Delta-log entries kept per relation; a client further behind than
#: the log reaches receives a full snapshot instead.
MAX_DELTA_LOG = 64


def _diff_keys(old, new) -> tuple[frozenset, frozenset]:
    """``(changed, removed)`` key sets between two relation versions."""
    changed = []
    new_keys = set()
    for etuple in new:
        key = etuple.key()
        new_keys.add(key)
        previous = old.get(key)
        if previous is None or previous != etuple:
            changed.append(key)
    removed = [key for key in old.keys() if key not in new_keys]
    return frozenset(changed), frozenset(removed)


class _Tracked:
    """One relation's published history: current version + delta log."""

    __slots__ = ("version", "relation", "deltas")

    def __init__(self, relation):
        self.version = 1
        self.relation = relation
        #: version -> (changed keys, removed keys) taking v-1 to v.
        self.deltas: dict[int, tuple[frozenset, frozenset]] = {}


class ShardSyncManager:
    """Tracks published relation versions and plans per-worker syncs."""

    def __init__(self):
        self._tracked: dict[str, _Tracked] = {}
        self._lock = threading.Lock()

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._tracked))

    def publish(self, relation, changed=None, removed=None) -> None:
        """Register *relation* as the current version of its name.

        *changed*/*removed* are optional dirty-key hints (inserted and
        updated keys count as changed); without them the new version is
        diffed against the previous one.  Publishing the identical
        object, or a content-identical relation, does not bump the
        version -- workers already synced stay synced.
        """
        name = relation.name
        with self._lock:
            tracked = self._tracked.get(name)
            if tracked is None:
                self._tracked[name] = _Tracked(relation)
                return
            if tracked.relation is relation:
                return
            if tracked.relation.schema != relation.schema:
                # A schema change invalidates every stored row; clear
                # the log so every client resyncs with a full snapshot.
                tracked.version += 1
                tracked.relation = relation
                tracked.deltas = {}
                return
            if changed is None and removed is None:
                changed, removed = _diff_keys(tracked.relation, relation)
            else:
                changed = frozenset(changed if changed is not None else ())
                removed = frozenset(removed if removed is not None else ())
            if not changed and not removed:
                tracked.relation = relation
                return
            tracked.version += 1
            tracked.relation = relation
            tracked.deltas[tracked.version] = (changed, removed)
            while len(tracked.deltas) > MAX_DELTA_LOG:
                del tracked.deltas[min(tracked.deltas)]

    def _plan_one(
        self, tracked: _Tracked, have: int, force_full: bool
    ) -> tuple | None:
        """One relation's sync op (``None`` when *have* is current)."""
        if have == tracked.version:
            return None
        span = range(have + 1, tracked.version + 1)
        if (
            not force_full
            and have > 0
            and all(version in tracked.deltas for version in span)
        ):
            affected: set = set()
            for version in span:
                changed, removed = tracked.deltas[version]
                affected |= changed | removed
            relation = tracked.relation
            upserts = [
                etuple for etuple in relation if etuple.key() in affected
            ]
            present = set(relation.keys())
            removes = sorted(
                (key for key in affected if key not in present), key=repr
            )
            return ("delta", relation.name, relation.schema, upserts, removes)
        return ("full", tracked.relation.name, tracked.relation)

    def plan_for(
        self, client_versions: dict, names, force_full: bool = False
    ) -> tuple[list, dict] | None:
        """The sync ops bringing one client current on *names*.

        Returns ``(ops, new_versions)`` -- the wire operations (empty
        when the client is already current) and the version map to
        merge into the client's state once the worker acknowledges --
        or ``None`` when some name was never published (nothing can
        serve it keyed).  With *force_full* every lagging relation
        ships as a snapshot (the retry path after a store rejected a
        delta).
        """
        ops: list = []
        new_versions: dict = {}
        with self._lock:
            for name in names:
                tracked = self._tracked.get(name)
                if tracked is None:
                    return None
                op = self._plan_one(
                    tracked, client_versions.get(name, 0), force_full
                )
                if op is not None:
                    ops.append(op)
                new_versions[name] = tracked.version
        return ops, new_versions

    def pending_items(self, client_versions: dict, names) -> int | None:
        """Rows a sync for *names* would push to this client.

        The cost gate's delta-size input: 0 when the client is current,
        the affected-key count when the delta log covers the gap, the
        full relation size otherwise.  ``None`` when some name was
        never published.
        """
        total = 0
        with self._lock:
            for name in names:
                tracked = self._tracked.get(name)
                if tracked is None:
                    return None
                op = self._plan_one(
                    tracked, client_versions.get(name, 0), False
                )
                if op is None:
                    continue
                if op[0] == "delta":
                    total += len(op[3]) + len(op[4])
                else:
                    total += len(tracked.relation)
        return total

    def __repr__(self) -> str:
        with self._lock:
            parts = ", ".join(
                f"{name}@v{tracked.version}"
                for name, tracked in sorted(self._tracked.items())
            )
        return f"ShardSyncManager({parts or 'empty'})"
