"""Pluggable executors: how partitioned physical work is fanned out.

The integration semantics of the paper are per-entity -- Dempster
merges, selection revision, union/intersection all decompose over
definite keys -- so the physical layer phrases its work as independent
*partition tasks*.  An :class:`Executor` decides how those tasks run:

* :class:`SerialExecutor` (the default) runs tasks inline, in order.
  Results and pair order are bit-for-bit identical to the historical
  single-loop code paths.
* :class:`ThreadExecutor` fans tasks out over a thread pool.  Per-entity
  work shares no mutable state, so the GIL-bound pool already overlaps
  the interpreter-released portions (hashing, allocation) and keeps
  results exact.
* :class:`ProcessExecutor` fans tasks out over a ``fork`` process pool.
  Tasks are *not* pickled -- the payload is published in a module global
  and inherited by the forked children, so closures over plans,
  predicates and thresholds work unchanged; only results cross the pipe
  (every model object pickles: mass functions re-enter through their
  constructor, see :meth:`repro.ds.mass.MassFunction.__reduce__`).
  Platforms without ``fork`` fall back to inline execution.

The active executor is process-global, chosen via :func:`configure` or
the ``REPRO_EXECUTOR`` / ``REPRO_WORKERS`` / ``REPRO_PARTITIONS``
environment variables, and read by every partition-aware call site
through :func:`get_executor` / :func:`partition_count`.  Nested fan-out
(a partition task that itself reaches a partition-aware operation) runs
inline: the outer fan-out already owns the worker pool, and nesting
would deadlock a bounded pool.

``REPRO_EXECUTOR=auto`` opts into the **adaptive runtime**:
:class:`AdaptiveExecutor` prices each batch with the cost model
(:mod:`repro.exec.cost` -- focal-set sizes x source count x
kernel-vs-fallback path, fed by the live telemetry counters) and routes
it to the serial loop, the thread pool, or the warm process pool
(:mod:`repro.exec.warmpool`), picking the partition count to match.
Picklable batches submitted through :meth:`Executor.map_encoded` reach
process workers over the persistent warm pool instead of forking per
batch (disable with ``REPRO_WARM_POOL=0``).

Whatever the executor and partition count, every partition-aware code
path reassembles results so they *equal the serial result exactly* --
same tuples, same exact Fractions, bit-for-bit identical floats (the
property tests in ``tests/exec`` assert this).
"""

from __future__ import annotations

import atexit
import os
import threading

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import asdict, dataclass

from repro.counters import ThreadLocalCounters
from repro.errors import ConfigError, ExecutionError
from repro.obs import tracing
from repro.obs.registry import registry as _metrics_registry

#: Accepted executor kinds (``auto`` defers to the cost model per
#: batch; ``remote`` scatters across socket worker daemons, see
#: :mod:`repro.exec.remote`).
EXECUTOR_KINDS = ("serial", "thread", "process", "auto", "remote")


@dataclass
class ExecStats:
    """A point-in-time snapshot of physical fan-out activity.

    ``parallel_batches`` counts :meth:`Executor.map` calls that fanned
    out to a pool; ``inline_batches`` those that ran inline (serial
    executor, single task, or nested inside another task); ``tasks``
    the partition tasks executed through fan-out.  The live counters
    are :data:`STATS` (a :class:`LiveExecStats`).
    """

    parallel_batches: int = 0
    inline_batches: int = 0
    tasks: int = 0

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"exec: {self.parallel_batches} parallel batch(es) "
            f"({self.tasks} task(s)), {self.inline_batches} inline"
        )


class LiveExecStats:
    """The process-wide counters, safe to bump from pool workers.

    Nested fan-out runs :meth:`Executor.map` *inside* worker threads
    (counted as inline batches there), so the counters are bumped
    concurrently; increments go through
    :class:`~repro.counters.ThreadLocalCounters` so counts observed
    after a batch returns are exact.
    """

    _FIELDS = ("parallel_batches", "inline_batches", "tasks")

    def __init__(self):
        self._counters = ThreadLocalCounters(self._FIELDS)

    @property
    def parallel_batches(self) -> int:
        return self._counters.total("parallel_batches")

    @property
    def inline_batches(self) -> int:
        return self._counters.total("inline_batches")

    @property
    def tasks(self) -> int:
        return self._counters.total("tasks")

    def bump(self, field: str, amount: int = 1) -> None:
        """Add *amount* to *field* (lock-free; callable from any thread)."""
        self._counters.bump(field, amount)

    def snapshot(self) -> ExecStats:
        """A consistent :class:`ExecStats` copy of the counters."""
        return ExecStats(**self._counters.totals())

    def reset(self) -> None:
        """Zero the counters in place (the object identity is shared)."""
        self._counters.reset()

    def summary(self) -> str:
        """One-line human-readable digest."""
        return self.snapshot().summary()


#: The shared counter object; mutate via :meth:`LiveExecStats.bump` /
#: :meth:`LiveExecStats.reset`, never rebind (modules hold direct
#: references).
STATS = LiveExecStats()

# Surface the fan-out counters on the process-wide metrics registry
# (``exec.*`` names) behind the existing snapshot API.
_metrics_registry().register_source(
    "exec", lambda: asdict(STATS.snapshot()), STATS.reset
)


def exec_stats() -> ExecStats:
    """The process-wide :data:`STATS` object (live, not a copy)."""
    return STATS


def note_inline_batch() -> None:
    """Count a batch the calling executor ran inline (no fan-out).

    Owning-layer entry point for executors living in subpackages (the
    remote coordinator): they report through here rather than bumping
    :data:`STATS` from another package.
    """
    STATS.bump("inline_batches")


def note_parallel_batch(tasks: int) -> None:
    """Count a fanned-out batch of *tasks* items (see :func:`note_inline_batch`)."""
    STATS.bump("parallel_batches")
    STATS.bump("tasks", tasks)


# -- nested-task guard --------------------------------------------------------

_LOCAL = threading.local()


def _task_depth() -> int:
    return getattr(_LOCAL, "depth", 0)


@contextmanager
def _inside_task():
    _LOCAL.depth = _task_depth() + 1
    try:
        yield
    finally:
        _LOCAL.depth -= 1


# -- executors ----------------------------------------------------------------


class Executor(ABC):
    """Runs a batch of independent partition tasks, preserving order."""

    kind = "?"

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ExecutionError(f"workers must be >= 1, got {workers!r}")
        self.workers = int(workers)

    def map(self, task, items) -> list:
        """``[task(item) for item in items]``, possibly in parallel.

        Results come back in item order; the first task exception
        propagates.  Batches of one task, and batches issued from inside
        another task (nested fan-out), always run inline.
        """
        items = list(items)
        if len(items) <= 1 or self.workers <= 1 or _task_depth() > 0:
            STATS.bump("inline_batches")
            return [task(item) for item in items]
        STATS.bump("parallel_batches")
        STATS.bump("tasks", len(items))
        with tracing.span("exec.map", kind=self.kind, tasks=len(items)):
            return self._map(task, items)

    @abstractmethod
    def _map(self, task, items: list) -> list:
        """Fan a multi-task batch out (pool executors override)."""

    def map_encoded(self, fn, common, items) -> list:
        """``[fn(common, item) for item in items]``, possibly in parallel.

        The encoded variant of :meth:`map` for *picklable* work: *fn*
        must be a module-level callable and ``common``/*items* must
        pickle.  Executors with persistent workers (the process
        executor's warm pool, :mod:`repro.exec.warmpool`) ship the
        batch as compact pickled payloads -- ``common`` crosses the
        pipe once per chunk, not once per item -- instead of forking;
        in-process executors simply close over ``common``.  Same
        contract as :meth:`map`: results in item order, first exception
        propagates.
        """
        items = list(items)

        def task(item):
            return fn(common, item)

        return self.map(task, items)

    def close(self) -> None:
        """Release pool resources (no-op for poolless executors)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.workers} worker(s))"


class SerialExecutor(Executor):
    """Inline execution: the historical single-loop behavior."""

    kind = "serial"

    def __init__(self):
        super().__init__(workers=1)

    def _map(self, task, items):  # pragma: no cover -- map() short-circuits
        return [task(item) for item in items]


class ThreadExecutor(Executor):
    """A persistent thread pool (lazily created)."""

    kind = "thread"

    def __init__(self, workers: int):
        super().__init__(workers)
        self._pool = None
        self._lock = threading.Lock()

    def _ensure_pool(self):
        if self._pool is None:
            with self._lock:
                if self._pool is None:
                    from concurrent.futures import ThreadPoolExecutor

                    self._pool = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="repro-exec",
                    )
        return self._pool

    def _map(self, task, items):
        pool = self._ensure_pool()

        def run(item):
            with _inside_task():
                return task(item)

        return list(pool.map(run, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


#: Payload for forked children: set immediately before the fork, so the
#: children inherit it by memory copy and the pipe carries only indices.
#: Guarded by :data:`_FORK_LOCK` -- the payload is process-global, so
#: concurrent process-pool batches from different driver threads must
#: serialize (one would otherwise fork the other's tasks).
_FORK_PAYLOAD = None
_FORK_LOCK = threading.Lock()


def _fork_invoke(index: int):
    task, items = _FORK_PAYLOAD
    with _inside_task():
        if not tracing.enabled():
            return task(items[index]), None
        # Ship the worker's spans back with the result (the same pattern
        # the stream engine uses for kernel stats): the child captures,
        # the parent ingests, and the trace reads as one tree.
        with tracing.capture() as spans:
            result = task(items[index])
        return result, spans


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off")


class ProcessExecutor(Executor):
    """A process pool: warm persistent workers, forking as the fallback.

    :meth:`map` batches carry arbitrary closures, so they fork a pool
    per batch *after* publishing the payload in :data:`_FORK_PAYLOAD` --
    forked workers inherit tasks through memory rather than pickling
    (plans and thresholds hold closures and cannot cross a pipe); only
    task *results* are pickled back.  :meth:`map_encoded` batches are
    picklable by contract, so they dispatch to the persistent warm pool
    (:mod:`repro.exec.warmpool`) instead -- the fork tax is paid once,
    making process workers profitable on small stream batches.  *warm*
    defaults to the ``REPRO_WARM_POOL`` flag (on); payloads that turn
    out not to pickle fall back to the fork path transparently.  Where
    the ``fork`` start method is unavailable batches run inline.
    """

    kind = "process"

    def __init__(self, workers: int, warm: bool | None = None):
        super().__init__(workers)
        self.warm = (
            _env_flag("REPRO_WARM_POOL", default=True) if warm is None else warm
        )

    def map_encoded(self, fn, common, items) -> list:
        items = list(items)
        if (
            not self.warm
            or len(items) <= 1
            or self.workers <= 1
            or _task_depth() > 0
        ):
            return super().map_encoded(fn, common, items)
        from repro.exec import warmpool

        pool = warmpool.get_pool(self.workers)
        if pool is None:
            return super().map_encoded(fn, common, items)
        results = pool.submit_batch(fn, common, items)
        if results is None:  # unpicklable payload: inherit-by-fork path
            return super().map_encoded(fn, common, items)
        STATS.bump("parallel_batches")
        STATS.bump("tasks", len(items))
        return results

    def _map(self, task, items):
        global _FORK_PAYLOAD
        try:
            import multiprocessing

            context = multiprocessing.get_context("fork")
        except (ImportError, ValueError):
            return [task(item) for item in items]
        with _FORK_LOCK:
            _FORK_PAYLOAD = (task, items)
            try:
                with context.Pool(
                    processes=min(self.workers, len(items))
                ) as pool:
                    pairs = pool.map(_fork_invoke, range(len(items)))
            finally:
                _FORK_PAYLOAD = None
        results = []
        for result, spans in pairs:
            if spans:
                tracing.ingest(spans)
            results.append(result)
        return results


class AdaptiveExecutor(Executor):
    """The cost-model router behind ``REPRO_EXECUTOR=auto``.

    Holds one inner executor per kind and delegates each batch to the
    one the cost model (:mod:`repro.exec.cost`) picked: the preceding
    :func:`partition_count` call prices the workload (under whatever
    :func:`repro.exec.cost.workload` hint the call site scoped) and
    remembers the decision thread-locally; this executor consumes it,
    so partitioning and executor kind always come from the same
    pricing.  A batch with no usable remembered decision (or more items
    than the decision partitioned for) is re-priced from its item
    count.  Every route is exact -- the equivalence contract holds for
    any executor -- so routing only ever changes *when* the answer
    arrives.
    """

    kind = "auto"

    def __init__(self, workers: int):
        super().__init__(workers)
        self._inner = {
            "serial": SerialExecutor(),
            "thread": ThreadExecutor(workers),
            "process": ProcessExecutor(workers),
        }

    def _delegate(self, n_items: int) -> Executor:
        from repro.exec import cost as _cost

        decision = _cost.consume()
        if decision is None or n_items > decision.partitions:
            decision = _cost.decide_for(n_items, self.workers)
        return self._inner[decision.kind]

    def map(self, task, items) -> list:
        items = list(items)
        if len(items) <= 1 or _task_depth() > 0:
            STATS.bump("inline_batches")
            return [task(item) for item in items]
        return self._delegate(len(items)).map(task, items)

    def map_encoded(self, fn, common, items) -> list:
        items = list(items)
        if len(items) <= 1 or _task_depth() > 0:
            STATS.bump("inline_batches")
            return [fn(common, item) for item in items]
        return self._delegate(len(items)).map_encoded(fn, common, items)

    def _map(self, task, items):  # pragma: no cover -- map() delegates
        return [task(item) for item in items]

    def close(self) -> None:
        for executor in self._inner.values():
            executor.close()


# -- configuration ------------------------------------------------------------


@dataclass(frozen=True)
class ExecConfig:
    """The active physical-execution configuration.

    ``partitions`` of ``None`` means "one partition per worker" --
    which, for the serial executor, means no partitioning at all, i.e.
    the exact historical code paths.
    """

    kind: str = "serial"
    workers: int = 1
    partitions: int | None = None

    def effective_partitions(self) -> int:
        """The partition count partition-aware call sites fan out to."""
        if self.partitions is not None:
            return self.partitions
        return self.workers if self.kind != "serial" else 1

    def describe(self) -> str:
        """One-line human-readable rendering (for ``:stats`` and CLIs)."""
        return (
            f"executor: {self.kind}, {self.workers} worker(s), "
            f"{self.effective_partitions()} partition(s)"
        )


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    try:
        return int(raw)
    except ValueError:
        raise ConfigError(
            f"{name} must be an integer, got {raw!r}"
        ) from None


def _default_workers(kind: str) -> int:
    """The worker count a *kind* gets when none is configured.

    Serial needs one; the remote executor defaults to one worker per
    configured ``REPRO_WORKERS_ADDRS`` address (the natural scatter
    width) and falls back to the CPU count with no cluster configured;
    everything else takes the CPU count.
    """
    if kind == "serial":
        return 1
    if kind == "remote":
        raw = os.environ.get("REPRO_WORKERS_ADDRS", "")
        addresses = [part for part in raw.split(",") if part.strip()]
        if addresses:
            return len(addresses)
    return os.cpu_count() or 1


def _config_from_env() -> ExecConfig:
    kind = os.environ.get("REPRO_EXECUTOR", "serial").strip().lower()
    if kind not in EXECUTOR_KINDS:
        raise ConfigError(
            f"REPRO_EXECUTOR must be one of {EXECUTOR_KINDS}, got {kind!r}"
        )
    workers = _env_int("REPRO_WORKERS")
    if workers is None or workers <= 0:
        workers = _default_workers(kind)
    return ExecConfig(kind, workers, _env_int("REPRO_PARTITIONS"))


#: Resolved lazily on first use, not at import: a malformed REPRO_*
#: variable must surface as a clean ExecutionError inside whatever
#: entry point runs (the CLI turns ReproErrors into exit 1), never as a
#: traceback that makes the package unimportable.
_config: ExecConfig | None = None
_executor: Executor | None = None


def _current() -> ExecConfig:
    global _config
    if _config is None:
        _config = _config_from_env()
    return _config


def _build_executor(config: ExecConfig) -> Executor:
    if config.kind == "serial":
        return SerialExecutor()
    if config.kind == "thread":
        return ThreadExecutor(config.workers)
    if config.kind == "auto":
        return AdaptiveExecutor(config.workers)
    if config.kind == "remote":
        from repro.exec.remote import RemoteExecutor

        return RemoteExecutor(config.workers)
    return ProcessExecutor(config.workers)


def configure(
    executor: str | None = None,
    workers: int | None = None,
    partitions: int | None = None,
) -> ExecConfig:
    """Choose the process-global executor and partitioning.

    >>> configure(executor="thread", workers=4).describe()
    'executor: thread, 4 worker(s), 4 partition(s)'
    >>> configure(executor="serial", workers=1, partitions=None).kind
    'serial'

    Omitted arguments keep their current value, except that switching
    *executor* without *workers* picks a sensible default (1 for serial,
    the CPU count otherwise).  ``partitions=None`` restores the
    one-partition-per-worker default.  Returns the new configuration.
    """
    global _config, _executor
    current = _current()
    kind = current.kind if executor is None else str(executor).strip().lower()
    if kind not in EXECUTOR_KINDS:
        raise ConfigError(
            f"executor must be one of {EXECUTOR_KINDS}, got {executor!r}"
        )
    if workers is None:
        if kind == current.kind:
            workers = current.workers
        else:
            workers = _default_workers(kind)
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers!r}")
    if partitions is not None and partitions < 1:
        raise ConfigError(f"partitions must be >= 1, got {partitions!r}")
    if _executor is not None:
        _executor.close()
    _config = ExecConfig(kind, int(workers), partitions)
    _executor = None
    return _config


def current_config() -> ExecConfig:
    """The active :class:`ExecConfig` (immutable snapshot)."""
    return _current()


def get_executor() -> Executor:
    """The process-global executor for the current configuration."""
    global _executor
    if _executor is None:
        _executor = _build_executor(_current())
    return _executor


def _shutdown_at_exit() -> None:
    """Close the global executor when the interpreter exits.

    A session that never calls ``close()`` explicitly would otherwise
    leak pool threads and remote connections past its useful life;
    every executor's ``close()`` is idempotent, so this hook is safe to
    run after (or race with) an explicit close.  The warm fork pool has
    its own hook (:mod:`repro.exec.warmpool`) because it deliberately
    outlives any one executor.
    """
    global _executor
    executor, _executor = _executor, None
    if executor is not None:
        executor.close()


atexit.register(_shutdown_at_exit)


def partition_count(size: int) -> int:
    """Partitions to use for a workload of *size* entities.

    1 (meaning: stay on the serial code path) when the configuration
    does not partition or the workload is too small to split.

    Under ``REPRO_EXECUTOR=auto`` the count comes from the cost model
    (:mod:`repro.exec.cost`), priced with the call site's active
    :func:`~repro.exec.cost.workload` hint; the decision is remembered
    thread-locally so the :class:`AdaptiveExecutor`'s next ``map`` /
    ``map_encoded`` routes to the matching executor kind.  An explicit
    ``REPRO_PARTITIONS`` still pins the partition count.
    """
    if size <= 1 or _task_depth() > 0:
        return 1
    config = _current()
    if config.kind == "auto":
        from repro.exec import cost as _cost

        decision = _cost.decide_for(size, config.workers)
        _cost.remember(decision)
        if config.partitions is not None:
            return min(config.partitions, size)
        return min(decision.partitions, size)
    return min(config.effective_partitions(), size)


@contextmanager
def executor_scope(
    executor: str | None = None,
    workers: int | None = None,
    partitions: int | None = None,
):
    """Temporarily reconfigure the executor (tests, benchmarks).

    >>> with executor_scope(executor="thread", workers=2) as config:
    ...     config.kind
    'thread'
    """
    global _config, _executor
    previous_config, previous_executor = _current(), _executor
    _executor = None
    try:
        yield configure(executor, workers, partitions)
    finally:
        if _executor is not None:
            _executor.close()
        _config, _executor = previous_config, previous_executor
