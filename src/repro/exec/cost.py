"""The self-tuning cost model behind ``REPRO_EXECUTOR=auto``.

Fixed executor configuration makes the partitioned layer an
all-or-nothing bet: ``REPRO_EXECUTOR=process`` wins on thousand-entity
folds and loses badly on four-entity stream batches, while ``serial``
leaves cores idle on the big ones.  This module closes the loop: every
partition-aware call site (``Session._run`` via the physical operators,
``Federation.integrate``, ``StreamEngine.flush``) describes its
workload, the model prices it, and the adaptive executor
(:class:`repro.exec.executors.AdaptiveExecutor`) routes the batch to
whichever path the estimate favors -- inline, the thread pool, or the
warm process pool (:mod:`repro.exec.warmpool`).

Cost model inputs
=================

A :class:`WorkloadProfile` prices one fan-out:

``entities``
    How many independent per-entity merges the batch holds (the
    decomposition unit of the paper's integration semantics).
``sources``
    Average contributions per entity; an n-source entity folds with
    ``n - 1`` pairwise Dempster combinations.
``focal``
    Average focal-set size of the evidence being combined; a pairwise
    combination walks the ``focal x focal`` cross product.
``kernel_fraction``
    The share of combinations expected on the compiled bitmask kernel
    path (:mod:`repro.ds.kernel`) rather than the symbolic frozenset
    fallback.  When the caller supplies no hint this is *observed* from
    the process-wide ``kernel.kernel_combinations`` /
    ``kernel.fallback_combinations`` telemetry counters -- the model
    literally feeds off what the kernel has been doing.

Call sites refine the defaults through the :func:`workload` hint
context (the stream engine samples its dirty entities, the federation
knows its source count); everything degrades gracefully to defaults.

Every choice the model makes is an *executor* choice, never a
*semantics* choice: the equivalence contract of :mod:`repro.exec`
(any executor x any partition count == serial, bit for bit) holds for
every decision, so a mispriced workload costs time, not correctness.
The decision counters surface as ``exec.auto.*_decisions`` metrics.

Cost units are calibrated microseconds of pure-Python merge work on a
commodity core; only the *ratios* matter, so the constants need to be
plausible, not exact.
"""

from __future__ import annotations

import threading

from contextlib import contextmanager
from dataclasses import dataclass

from repro.ds.kernel import STATS as _KERNEL_STATS
from repro.obs.registry import registry as _metrics_registry

#: Fixed per-entity overhead of a merge (dict walks, report and
#: membership bookkeeping), independent of the evidence combined.
ENTITY_BASE_COST = 3.0
#: Pairwise combination on the compiled bitmask kernel path:
#: ``base + cell * focal**2`` (the kernel walks the mask cross product).
KERNEL_COMBINATION_BASE = 2.0
KERNEL_CELL_COST = 0.05
#: The symbolic frozenset fallback has the same shape with much larger
#: constants (Python-object set intersections per focal pair).
FALLBACK_COMBINATION_BASE = 10.0
FALLBACK_CELL_COST = 1.0

#: Thread-pool dispatch: per-batch setup plus per-task handoff, and the
#: GIL serializes all but the interpreter-released share of the work.
THREAD_BATCH_COST = 250.0
THREAD_TASK_COST = 40.0
THREAD_PARALLEL_FRACTION = 0.35
#: Warm process pool: per-batch pickling/bookkeeping, per-task pipe
#: round trip, plus per-entity state shipping both ways.
PROCESS_BATCH_COST = 1500.0
PROCESS_TASK_COST = 300.0
PROCESS_SHIP_COST = 4.0
#: Remote tier (``REPRO_EXECUTOR=remote``): per-batch encode/scatter
#: setup, per-chunk framing, plus the *measured* inputs -- round-trip
#: latency from heartbeats and bytes-on-wire per item from shipped
#: batches (:func:`note_remote_sample`) -- so the gate prices the
#: actual network, not a guess.  Until samples accrue the defaults
#: model a loopback cluster.
REMOTE_BATCH_COST = 2000.0
REMOTE_CHUNK_COST = 500.0
REMOTE_BYTE_COST = 0.001
DEFAULT_REMOTE_RTT = 0.0005
DEFAULT_REMOTE_BYTES_PER_ITEM = 512.0
#: Key-only locality scatter (shard-resident workers): an item costs
#: its key on the wire plus one indexed point load worker-side; until
#: keyed batches accrue samples the default models a short entity key.
DEFAULT_LOCALITY_BYTES_PER_ITEM = 64.0
LOCALITY_LOAD_COST = 1.0
#: Floor on the useful work one parallel task should carry; partition
#: counts are capped so tasks stay at least this expensive.
MIN_TASK_COST = {"thread": 2000.0, "process": 10000.0}

#: Defaults when a call site supplies no hint.
DEFAULT_SOURCES = 2.0
DEFAULT_FOCAL = 4.0
#: Below this many observed combinations the kernel counters carry too
#: little signal; assume the kernel path (enumerated domains dominate).
MIN_OBSERVED_COMBINATIONS = 100


@dataclass(frozen=True)
class WorkloadProfile:
    """The cost model's view of one fan-out (see the module docstring)."""

    entities: int
    sources: float = DEFAULT_SOURCES
    focal: float = DEFAULT_FOCAL
    kernel_fraction: float = 1.0

    def describe(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"{self.entities} entities x {self.sources:.1f} sources, "
            f"focal ~{self.focal:.1f}, "
            f"{self.kernel_fraction:.0%} kernel-path"
        )


@dataclass(frozen=True)
class Decision:
    """One routing decision: executor kind, partition count, estimate."""

    kind: str
    partitions: int
    estimated_cost: float
    reason: str

    def describe(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"auto -> {self.kind} x {self.partitions} "
            f"(~{self.estimated_cost:.0f} units: {self.reason})"
        )


def combination_cost(focal: float, kernel_fraction: float) -> float:
    """Estimated cost of one pairwise Dempster combination.

    Monotone in *focal* and non-increasing in *kernel_fraction* (the
    fallback constants dominate the kernel's).
    """
    focal = max(float(focal), 1.0)
    fraction = min(max(float(kernel_fraction), 0.0), 1.0)
    cells = focal * focal
    kernel = KERNEL_COMBINATION_BASE + KERNEL_CELL_COST * cells
    fallback = FALLBACK_COMBINATION_BASE + FALLBACK_CELL_COST * cells
    return fraction * kernel + (1.0 - fraction) * fallback


def entity_cost(
    sources: float,
    focal: float,
    kernel_fraction: float,
) -> float:
    """Estimated cost of merging one entity.

    An entity with ``sources`` contributions folds with
    ``sources - 1`` pairwise combinations.  Monotone in *sources* and
    *focal*: more evidence never lowers the estimate (asserted by the
    estimator property tests).
    """
    combinations = max(float(sources) - 1.0, 0.0)
    return ENTITY_BASE_COST + combinations * combination_cost(
        focal, kernel_fraction
    )


def estimate(profile: WorkloadProfile) -> float:
    """Total estimated cost of a workload (cost units)."""
    return max(int(profile.entities), 0) * entity_cost(
        profile.sources, profile.focal, profile.kernel_fraction
    )


def _partitions_for(kind: str, total: float, entities: int, workers: int) -> int:
    by_work = max(int(total // MIN_TASK_COST[kind]), 1)
    return min(workers, entities, by_work)


def decide(profile: WorkloadProfile, workers: int) -> Decision:
    """Price *profile* and pick the cheapest executor kind + partitions.

    Serial wins ties: a parallel path must beat the serial estimate
    strictly, so cheap workloads never pay dispatch overhead.
    """
    total = estimate(profile)
    entities = max(int(profile.entities), 0)
    if entities <= 1 or workers <= 1:
        return Decision("serial", 1, total, "nothing to fan out")
    best_kind, best_partitions, best_time = "serial", 1, total
    reason = f"serial beats dispatch overhead ({total:.0f} units)"
    thread_p = _partitions_for("thread", total, entities, workers)
    if thread_p >= 2:
        thread_time = (
            THREAD_BATCH_COST
            + thread_p * THREAD_TASK_COST
            + total * (1.0 - THREAD_PARALLEL_FRACTION)
            + total * THREAD_PARALLEL_FRACTION / thread_p
        )
        if thread_time < best_time:
            best_kind, best_partitions, best_time = "thread", thread_p, thread_time
            reason = f"thread overlap wins at {thread_p} partitions"
    process_p = _partitions_for("process", total, entities, workers)
    if process_p >= 2:
        process_time = (
            PROCESS_BATCH_COST
            + process_p * PROCESS_TASK_COST
            + entities * PROCESS_SHIP_COST
            + total / process_p
        )
        if process_time < best_time:
            best_kind, best_partitions, best_time = (
                "process",
                process_p,
                process_time,
            )
            reason = f"process workers win at {process_p} partitions"
    return Decision(best_kind, best_partitions, total, reason)


# -- the remote tier ----------------------------------------------------------

#: EWMA smoothing for the remote-tier observations; a handful of
#: samples dominates the default, one outlier does not.
REMOTE_EWMA_ALPHA = 0.3

#: Measured remote-tier inputs, EWMA-smoothed.  Written by the
#: coordinator's heartbeat and dispatch paths from multiple threads,
#: so every write happens under :data:`_REMOTE_LOCK`.
_REMOTE_LOCK = threading.Lock()
_remote_rtt: float | None = None
_remote_bytes_per_item: float | None = None
_locality_bytes_per_item: float | None = None


def note_remote_sample(
    rtt_seconds: float | None = None,
    bytes_per_item: float | None = None,
) -> None:
    """Feed the remote tier one measurement (either or both inputs).

    *rtt_seconds* comes from heartbeat PING/PONG round trips (pure
    latency -- chunk round trips include compute and would poison the
    signal); *bytes_per_item* from the framed size of shipped batches.
    """
    global _remote_rtt, _remote_bytes_per_item
    with _REMOTE_LOCK:
        if rtt_seconds is not None and rtt_seconds >= 0.0:
            if _remote_rtt is None:
                _remote_rtt = float(rtt_seconds)
            else:
                _remote_rtt += REMOTE_EWMA_ALPHA * (
                    float(rtt_seconds) - _remote_rtt
                )
        if bytes_per_item is not None and bytes_per_item >= 0.0:
            if _remote_bytes_per_item is None:
                _remote_bytes_per_item = float(bytes_per_item)
            else:
                _remote_bytes_per_item += REMOTE_EWMA_ALPHA * (
                    float(bytes_per_item) - _remote_bytes_per_item
                )


def note_locality_sample(bytes_per_item: float) -> None:
    """Feed the locality tier one keyed-batch wire measurement.

    Keyed chunks meter separately from tuple-shipped chunks: folding
    them into :func:`note_remote_sample` would drag the tuple estimate
    toward the key cost and erase the very difference the gate prices.
    """
    global _locality_bytes_per_item
    with _REMOTE_LOCK:
        if bytes_per_item is not None and bytes_per_item >= 0.0:
            if _locality_bytes_per_item is None:
                _locality_bytes_per_item = float(bytes_per_item)
            else:
                _locality_bytes_per_item += REMOTE_EWMA_ALPHA * (
                    float(bytes_per_item) - _locality_bytes_per_item
                )


def reset_remote_samples() -> None:
    """Forget the observed RTT/bytes (tests; a new cluster topology)."""
    global _remote_rtt, _remote_bytes_per_item, _locality_bytes_per_item
    with _REMOTE_LOCK:
        _remote_rtt = None
        _remote_bytes_per_item = None
        _locality_bytes_per_item = None


def observed_remote_rtt() -> float:
    """The smoothed heartbeat RTT in seconds (default: loopback-ish)."""
    with _REMOTE_LOCK:
        return DEFAULT_REMOTE_RTT if _remote_rtt is None else _remote_rtt


def observed_remote_bytes_per_item() -> float:
    """The smoothed wire bytes per shipped item (default: a small tuple)."""
    with _REMOTE_LOCK:
        return (
            DEFAULT_REMOTE_BYTES_PER_ITEM
            if _remote_bytes_per_item is None
            else _remote_bytes_per_item
        )


def remote_cost(profile: WorkloadProfile, workers: int) -> float:
    """Estimated cost of scattering *profile* across *workers* daemons.

    ``batch setup + per-chunk framing + one smoothed round trip +
    serialization per item + the compute divided across workers`` --
    cost units are microseconds, so the measured RTT converts at 1e6.
    Chunk round trips overlap across connections, so latency is paid
    once on the critical path, not once per chunk.
    """
    entities = max(int(profile.entities), 0)
    total = estimate(profile)
    chunks = min(max(int(workers), 1), max(entities, 1))
    rtt_units = observed_remote_rtt() * 1e6
    ship = entities * observed_remote_bytes_per_item() * REMOTE_BYTE_COST
    return (
        REMOTE_BATCH_COST
        + chunks * REMOTE_CHUNK_COST
        + rtt_units
        + ship
        + total / chunks
    )


def remote_worthwhile(size: int, workers: int) -> bool:
    """Should a *size*-item batch leave the process?

    ``True`` when the remote estimate strictly beats the serial one
    under the active :func:`workload` hint -- the same tie-breaking
    rule :func:`decide` uses, so cheap batches never pay the wire.
    """
    if size <= 1 or workers < 1:
        return False
    profile = profile_for(size)
    return remote_cost(profile, workers) < estimate(profile)


def observed_locality_bytes_per_item() -> float:
    """The smoothed wire bytes per key-only shipped item."""
    with _REMOTE_LOCK:
        return (
            DEFAULT_LOCALITY_BYTES_PER_ITEM
            if _locality_bytes_per_item is None
            else _locality_bytes_per_item
        )


def locality_cost(
    profile: WorkloadProfile, workers: int, pending_items: int = 0
) -> float:
    """Estimated cost of a key-only scatter to shard-resident workers.

    Same shape as :func:`remote_cost`, but an item ships as its key and
    is point-loaded worker-side, and *pending_items* -- rows the shard
    sync must still push before the batch can run keyed -- are charged
    at the tuple-shipping byte rate (syncing them IS shipping them,
    just once instead of per batch).
    """
    entities = max(int(profile.entities), 0)
    total = estimate(profile)
    chunks = min(max(int(workers), 1), max(entities, 1))
    rtt_units = observed_remote_rtt() * 1e6
    ship = entities * (
        observed_locality_bytes_per_item() * REMOTE_BYTE_COST
        + LOCALITY_LOAD_COST
    )
    sync = (
        max(int(pending_items), 0)
        * observed_remote_bytes_per_item()
        * REMOTE_BYTE_COST
    )
    return (
        REMOTE_BATCH_COST
        + chunks * REMOTE_CHUNK_COST
        + rtt_units
        + ship
        + sync
        + total / chunks
    )


def locality_worthwhile(
    size: int, workers: int, pending_items: int = 0
) -> bool:
    """Should a *size*-item batch ship keys instead of tuples?

    ``True`` when the keyed estimate strictly beats both the
    tuple-shipping remote estimate and the serial one -- locality must
    win outright, otherwise the coordinator takes the already-proven
    path.
    """
    if size <= 1 or workers < 1:
        return False
    profile = profile_for(size)
    keyed = locality_cost(profile, workers, pending_items)
    return keyed < remote_cost(profile, workers) and keyed < estimate(profile)


# -- observed inputs and per-thread hints -------------------------------------

_LOCAL = threading.local()

#: Decision counters, one per executor kind the model can pick.
_DECISION_COUNTERS = {
    kind: _metrics_registry().counter(
        f"exec.auto.{kind}_decisions",
        f"auto-mode batches routed to the {kind} path",
    )
    for kind in ("serial", "thread", "process")
}


def observed_kernel_fraction() -> float:
    """The kernel-path share of all combinations observed so far.

    Reads the process-wide kernel telemetry
    (:data:`repro.ds.kernel.STATS`, surfaced as the
    ``kernel.kernel_combinations`` / ``kernel.fallback_combinations``
    registry counters); defaults to 1.0 until enough signal accrues.
    """
    snapshot = _KERNEL_STATS.snapshot()
    total = snapshot.kernel_combinations + snapshot.fallback_combinations
    if total < MIN_OBSERVED_COMBINATIONS:
        return 1.0
    return snapshot.kernel_combinations / total


@contextmanager
def workload(
    entities: int | None = None,
    sources: float | None = None,
    focal: float | None = None,
    kernel_fraction: float | None = None,
):
    """Scope a workload hint for the cost model (thread-local, nestable).

    Call sites that know their workload's shape (the stream engine
    samples its dirty entities; the federation knows its source count)
    wrap their fan-out in this context so
    :func:`repro.exec.executors.partition_count` and the adaptive
    executor price the *actual* work rather than the defaults.  ``None``
    fields inherit from the enclosing hint (or the defaults).
    """
    previous = getattr(_LOCAL, "hint", None)
    merged = dict(previous or {})
    for name, value in (
        ("entities", entities),
        ("sources", sources),
        ("focal", focal),
        ("kernel_fraction", kernel_fraction),
    ):
        if value is not None:
            merged[name] = float(value)
    _LOCAL.hint = merged
    try:
        yield
    finally:
        _LOCAL.hint = previous


def profile_for(size: int) -> WorkloadProfile:
    """The effective profile for a workload of *size* entities.

    Merges the active :func:`workload` hint with the observed kernel
    fraction; *size* always wins over a hinted entity count (the call
    site's batch is what actually runs).
    """
    hint = getattr(_LOCAL, "hint", None) or {}
    return WorkloadProfile(
        entities=max(int(size), 0),
        sources=hint.get("sources", DEFAULT_SOURCES),
        focal=hint.get("focal", DEFAULT_FOCAL),
        kernel_fraction=hint.get(
            "kernel_fraction", observed_kernel_fraction()
        ),
    )


def decide_for(size: int, workers: int) -> Decision:
    """Decide routing for a *size*-entity workload under the active hint."""
    decision = decide(profile_for(size), workers)
    _DECISION_COUNTERS[decision.kind].inc()
    return decision


def remember(decision: Decision) -> None:
    """Stash *decision* for the adaptive executor's next batch.

    ``partition_count`` decides; the ``map``/``map_encoded`` that
    follows on the same thread consumes the decision, so the partition
    count and the executor kind always come from the same pricing.
    """
    _LOCAL.last = decision


def consume() -> Decision | None:
    """Pop the remembered decision (``None`` when there is none)."""
    decision = getattr(_LOCAL, "last", None)
    _LOCAL.last = None
    return decision
