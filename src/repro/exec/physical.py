"""Physical execution: logical plans lowered onto partitioned operators.

The logical plan IR (:mod:`repro.query.plans`) describes *what* to
compute; this module decides *how*.  Every logical node lowers 1:1 onto
a physical operator that may shard its input(s) into hash partitions
(:meth:`repro.model.relation.ExtendedRelation.partitions`), evaluate
the node per partition through the configured
:class:`~repro.exec.executors.Executor`, and reassemble the partition
results **in the exact order the serial evaluation would have
produced** -- so plans executed under any executor and any partition
count return relations identical (tuples, order, exact Fractions,
bit-for-bit floats) to the historical serial path.

Per-operator strategy:

* ``Scan`` / ``Literal`` -- never partitioned (catalog lookups).
* ``Select`` / ``Project`` / ``Rename`` -- tuple-wise: each partition
  evaluates the node on its shard; reassembly follows the input
  relation's key order.
* ``Union`` / ``Intersect`` -- delegated to the algebra's
  per-entity merge (:func:`repro.algebra.union.union_with_report` /
  :func:`repro.algebra.intersection.intersection_with_report`), which
  shards matched-entity work itself through the same executor.
* ``Product`` -- the left input is partitioned, each task pairs its
  shard with the whole right input; reassembly follows the serial
  left-major order.

Entry points: :func:`run_plan` executes a whole plan tree (what
:meth:`repro.query.plans.Plan.execute` delegates to), and
:func:`apply_node` evaluates a single node given its children's results
(what :meth:`repro.session.Session._run` calls between its per-subtree
result-cache lookups -- fingerprints and cache keys are untouched by
physical lowering).
"""

from __future__ import annotations

from repro.exec.executors import get_executor, partition_count
from repro.model.relation import ExtendedRelation
from repro.obs import tracing
from repro.query.plans import (
    IntersectPlan,
    LiteralPlan,
    Plan,
    ProductPlan,
    ProjectPlan,
    RenamePlan,
    ScanPlan,
    SelectPlan,
    UnionPlan,
)


class PhysicalOperator:
    """A physical counterpart of one logical node (plus lowered children)."""

    #: Human-readable partitioning strategy, overridden per operator.
    strategy = "passthrough"

    #: Short operator name used in span names (``physical.<op>``).
    op = "node"

    def __init__(self, plan: Plan, children: tuple["PhysicalOperator", ...]):
        self.plan = plan
        self.children = children

    def schema(self):
        """The operator's output schema (the logical node's)."""
        return self.plan.schema()

    def execute(self, database) -> ExtendedRelation:
        """Evaluate the whole physical subtree."""
        inputs = tuple(child.execute(database) for child in self.children)
        return self.traced_apply(inputs, database)

    def apply(self, inputs, database) -> ExtendedRelation:
        """Evaluate this operator alone, given its children's results."""
        return self.plan.apply(inputs, database)

    def traced_apply(self, inputs, database) -> ExtendedRelation:
        """:meth:`apply` wrapped in a ``physical.<op>`` tracing span.

        The one extra cost with tracing disabled is the flag check; with
        it enabled the span records the node label and the exact
        input/output row counts.
        """
        if not tracing.enabled():
            return self.apply(inputs, database)
        with tracing.span(
            "physical." + self.op, label=self.plan.label()
        ) as current:
            result = self.apply(inputs, database)
            current.note(
                rows_in=[len(relation) for relation in inputs],
                rows_out=len(result),
            )
            return result

    def describe(self, indent: int = 0) -> str:
        """The physical tree as indented text (strategy per node)."""
        lines = ["  " * indent + f"{self.plan.label()}  <{self.strategy}>"]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.plan.label()!r})"


class PhysicalScan(PhysicalOperator):
    """Catalog lookup; nothing to partition."""

    op = "scan"


class PhysicalLiteral(PhysicalOperator):
    """In-memory relation; nothing to partition."""

    op = "literal"


class _TupleWise(PhysicalOperator):
    """Shared shape of the per-tuple operators (select/project/rename).

    The logical node is evaluated once per input shard; since these
    operators never mix entities, reassembling the shard results in the
    input relation's key order reproduces the serial output exactly.
    """

    strategy = "partition input, reassemble in input order"

    def apply(self, inputs, database) -> ExtendedRelation:
        (relation,) = inputs
        n = partition_count(len(relation))
        if n <= 1:
            return self.plan.apply(inputs, database)
        plan = self.plan
        results = get_executor().map(
            lambda part: plan.apply((part,), database), relation.partitions(n)
        )
        merged: dict[tuple, object] = {}
        for part_result in results:
            for etuple in part_result:
                merged[etuple.key()] = etuple
        ordered = [merged[key] for key in relation.keys() if key in merged]
        # Part results carry the schema the serial evaluation would have
        # derived from the runtime input (bind-time plan schemas can
        # differ in relation *name* for literal-rooted plans).
        return ExtendedRelation(results[0].schema, ordered, on_unsupported="drop")


class PhysicalSelect(_TupleWise):
    """Extended selection, sharded tuple-wise."""

    op = "select"


class PhysicalProject(_TupleWise):
    """Extended projection, sharded tuple-wise."""

    op = "project"


class PhysicalRename(_TupleWise):
    """Attribute renaming, sharded tuple-wise."""

    op = "rename"


class PhysicalUnion(PhysicalOperator):
    """Extended union; the algebra merge shards per entity itself."""

    strategy = "per-entity merge tasks (in algebra.union)"
    op = "union"


class PhysicalIntersect(PhysicalOperator):
    """Extended intersection; the algebra merge shards per entity itself."""

    strategy = "per-entity merge tasks (in algebra.union)"
    op = "intersect"


class PhysicalProduct(PhysicalOperator):
    """Cartesian product: left input sharded, right broadcast."""

    strategy = "partition left, broadcast right"
    op = "product"

    def apply(self, inputs, database) -> ExtendedRelation:
        left, right = inputs
        n = partition_count(len(left))
        if n <= 1 or len(right) == 0:
            return self.plan.apply(inputs, database)
        plan = self.plan
        results = get_executor().map(
            lambda part: plan.apply((part, right), database), left.partitions(n)
        )
        merged: dict[tuple, object] = {}
        for part_result in results:
            for etuple in part_result:
                merged[etuple.key()] = etuple
        # Serial order is left-major: for each left tuple, every right
        # tuple in right order.  The product key concatenates the two
        # input keys (left key attributes precede right ones in the
        # concatenated schema), so the pairing is directly addressable.
        ordered = []
        for left_key in left.keys():
            for right_key in right.keys():
                etuple = merged.get(left_key + right_key)
                if etuple is not None:
                    ordered.append(etuple)
        return ExtendedRelation(results[0].schema, ordered, on_unsupported="drop")


_OPERATORS: dict[type, type] = {
    ScanPlan: PhysicalScan,
    LiteralPlan: PhysicalLiteral,
    SelectPlan: PhysicalSelect,
    ProjectPlan: PhysicalProject,
    RenamePlan: PhysicalRename,
    UnionPlan: PhysicalUnion,
    IntersectPlan: PhysicalIntersect,
    ProductPlan: PhysicalProduct,
}


def lower(plan: Plan) -> PhysicalOperator:
    """Lower a logical plan tree to its physical operator tree."""
    operator = _OPERATORS.get(type(plan), PhysicalOperator)
    return operator(plan, tuple(lower(child) for child in plan.children()))


def lower_node(plan: Plan) -> PhysicalOperator:
    """Lower a single node (children not lowered; for per-node engines)."""
    operator = _OPERATORS.get(type(plan), PhysicalOperator)
    return operator(plan, ())


def apply_node(plan: Plan, inputs, database) -> ExtendedRelation:
    """Evaluate one logical node physically, given its children's results."""
    return lower_node(plan).traced_apply(tuple(inputs), database)


def run_plan(plan: Plan, database) -> ExtendedRelation:
    """Execute a whole logical plan through the physical layer."""
    return lower(plan).execute(database)


def describe_physical(plan: Plan) -> str:
    """The physical plan of *plan*, as indented text (for tooling)."""
    return lower(plan).describe()
