"""The physical execution layer: partitioned, executor-driven evaluation.

The paper's integration semantics decompose per entity (definite keys
identify real-world entities; Dempster merges, selection revision and
union/intersection never mix entities), so the physical layer shards
entity work into hash partitions and fans the partition tasks out over
a pluggable worker pool:

* :mod:`repro.exec.executors` -- the :class:`Executor` abstraction
  (serial / thread-pool / fork process-pool / cost-model ``auto``), the
  process-global configuration (:func:`configure`, ``REPRO_EXECUTOR`` /
  ``REPRO_WORKERS`` / ``REPRO_PARTITIONS``), and fan-out counters;
* :mod:`repro.exec.cost` -- the adaptive cost model behind
  ``REPRO_EXECUTOR=auto``: per-entity merge cost from focal-set sizes x
  source count x kernel-vs-fallback share, choosing partition count and
  executor kind per call site;
* :mod:`repro.exec.warmpool` -- the persistent warm ``fork`` worker
  pool (compact task encoding) behind
  :meth:`Executor.map_encoded`, disabled via ``REPRO_WARM_POOL=0``;
* :mod:`repro.exec.remote` -- distributed shard-by-key execution:
  ``REPRO_EXECUTOR=remote`` scatters encoded batches to socket worker
  daemons (``REPRO_WORKERS_ADDRS``), gathers in exact serial order,
  and retries dead workers' chunks on survivors;
* :mod:`repro.exec.rewrite` -- the logical rewrite-pass pipeline
  (selection fusion/pushdown, projection pruning) run before lowering,
  so physical operators see normalized plans;
* :mod:`repro.exec.physical` -- per-node lowering of the logical plan
  IR onto partition-aware physical operators.

The default configuration is serial with no partitioning: results and
pair order are bit-for-bit the historical single-loop behavior.  With
any other executor and any partition count, every partition-aware path
(plans, :func:`repro.algebra.union.union_with_report`,
:meth:`repro.integration.federation.Federation.integrate`,
:meth:`repro.stream.engine.StreamEngine.flush`) reassembles results to
*equal the serial result exactly* -- property-tested in ``tests/exec``.

>>> from repro import exec as rexec
>>> rexec.configure(executor="thread", workers=2).kind
'thread'
>>> rexec.configure(executor="serial", workers=1, partitions=None).kind
'serial'
"""

from repro.exec.executors import (
    EXECUTOR_KINDS,
    AdaptiveExecutor,
    ExecConfig,
    ExecStats,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    configure,
    current_config,
    exec_stats,
    executor_scope,
    get_executor,
    partition_count,
)
from repro.exec import cost
from repro.exec.cost import Decision, WorkloadProfile
from repro.model.relation import partition_index

# The physical/rewrite halves import the plan IR, whose algebra imports
# the executors above -- so they are exposed lazily to keep the package
# importable from either end of that chain.  The remote half is lazy
# for a different reason: importing it registers its metrics and pulls
# in the socket machinery, which serial-only processes never need.
_LAZY = {
    "PhysicalOperator": "repro.exec.physical",
    "apply_node": "repro.exec.physical",
    "describe_physical": "repro.exec.physical",
    "lower": "repro.exec.physical",
    "run_plan": "repro.exec.physical",
    "PassPipeline": "repro.exec.rewrite",
    "RewritePass": "repro.exec.rewrite",
    "default_pipeline": "repro.exec.rewrite",
    "LocalCluster": "repro.exec.remote",
    "RemoteExecutor": "repro.exec.remote",
    "WorkerClient": "repro.exec.remote",
    "WorkerServer": "repro.exec.remote",
    "spawn_local_cluster": "repro.exec.remote",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)

__all__ = [
    "EXECUTOR_KINDS",
    "AdaptiveExecutor",
    "Decision",
    "ExecConfig",
    "ExecStats",
    "Executor",
    "LocalCluster",
    "WorkloadProfile",
    "cost",
    "PassPipeline",
    "PhysicalOperator",
    "ProcessExecutor",
    "RemoteExecutor",
    "RewritePass",
    "SerialExecutor",
    "ThreadExecutor",
    "WorkerClient",
    "WorkerServer",
    "apply_node",
    "configure",
    "current_config",
    "default_pipeline",
    "describe_physical",
    "exec_stats",
    "executor_scope",
    "get_executor",
    "lower",
    "partition_count",
    "partition_index",
    "run_plan",
    "spawn_local_cluster",
]
