"""Logical-plan rewrite passes (the rule half of the old ``optimize``).

The rewrites used to live inside :func:`repro.query.planner.optimize`
as one fused fixpoint loop.  They are now an explicit *pass pipeline*
run before physical lowering, so the physical layer
(:mod:`repro.exec.physical`) always sees normalized plans:

* **fuse-and-push-selections** -- adjacent selection fusion (the
  multiplicative membership revision is associative) and pushdown of
  single-side conjuncts below a product (also through an intervening
  projection).
* **prune-projections** -- adjacent projection fusion and pushdown of a
  projection below a selection that only reads projected attributes.

Deliberately **no pushdown through the extended union or
intersection**: both Dempster-combine matched tuples, and combining
*then* selecting is not the same as selecting *then* combining
(filtering a source first would both change which tuples match and let
an unmatched low-support tuple pass through unrevised).  The test-suite
pins this down with a counterexample.  No rewrites across a rename
either: it is pure plumbing and rare enough that translating predicates
through it is not worth it.

Each pass applies its node-local rule bottom-up until the pass reaches
a fixpoint; the pipeline cycles over its passes until a full round
changes nothing.  The rule set is unchanged from the fused loop, so the
pipeline reaches the same normal forms (asserted by the planner tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.predicates import And, Predicate
from repro.algebra.thresholds import SN_POSITIVE, MembershipThreshold
from repro.query.plans import (
    IntersectPlan,
    Plan,
    ProductPlan,
    ProjectPlan,
    RenamePlan,
    SelectPlan,
    UnionPlan,
)


# -- predicate plumbing ------------------------------------------------------


def _is_trivial_threshold(threshold: MembershipThreshold) -> bool:
    return threshold is SN_POSITIVE or threshold.description == "sn > 0"


def _conjuncts(predicate: Predicate | None) -> list[Predicate]:
    if predicate is None:
        return []
    if isinstance(predicate, And):
        return list(predicate.parts)
    return [predicate]


def _conjoin(parts: list[Predicate]) -> Predicate | None:
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return And(*parts)


# -- the pass machinery ------------------------------------------------------


@dataclass(frozen=True)
class RewritePass:
    """A named, node-local rewrite rule applied bottom-up to fixpoint."""

    name: str
    rule: object  # (Plan) -> tuple[Plan, bool]

    def run(self, plan: Plan) -> tuple[Plan, bool]:
        """Apply the rule everywhere until this pass stops changing."""
        any_changed = False
        changed = True
        while changed:
            plan, changed = _bottom_up(plan, self.rule)
            any_changed = any_changed or changed
        return plan, any_changed


class PassPipeline:
    """An ordered sequence of rewrite passes, cycled to a global fixpoint."""

    def __init__(self, passes: tuple[RewritePass, ...]):
        self.passes = tuple(passes)

    def run(self, plan: Plan) -> Plan:
        """Normalize *plan* (semantics-preserving by construction)."""
        changed = True
        while changed:
            changed = False
            for rewrite_pass in self.passes:
                plan, pass_changed = rewrite_pass.run(plan)
                changed = changed or pass_changed
        return plan

    def describe(self) -> str:
        """The pass names, in order."""
        return " -> ".join(rewrite_pass.name for rewrite_pass in self.passes)


def _bottom_up(plan: Plan, rule) -> tuple[Plan, bool]:
    """Rebuild children first, then apply the node-local *rule* once."""
    changed = False
    if isinstance(plan, SelectPlan):
        child, child_changed = _bottom_up(plan.child, rule)
        if child_changed:
            plan = SelectPlan(child, plan.predicate, plan.threshold)
            changed = True
    elif isinstance(plan, ProjectPlan):
        child, child_changed = _bottom_up(plan.child, rule)
        if child_changed:
            plan = ProjectPlan(child, plan.names)
            changed = True
    elif isinstance(plan, RenamePlan):
        child, child_changed = _bottom_up(plan.child, rule)
        if child_changed:
            plan = RenamePlan(child, plan.mapping)
            changed = True
    elif isinstance(plan, UnionPlan):
        left, left_changed = _bottom_up(plan.left, rule)
        right, right_changed = _bottom_up(plan.right, rule)
        if left_changed or right_changed:
            plan = UnionPlan(left, right, plan.on_conflict)
            changed = True
    elif isinstance(plan, IntersectPlan):
        left, left_changed = _bottom_up(plan.left, rule)
        right, right_changed = _bottom_up(plan.right, rule)
        if left_changed or right_changed:
            plan = IntersectPlan(left, right, plan.on_conflict)
            changed = True
    elif isinstance(plan, ProductPlan):
        left, left_changed = _bottom_up(plan.left, rule)
        right, right_changed = _bottom_up(plan.right, rule)
        if left_changed or right_changed:
            plan = ProductPlan(left, right)
            changed = True
    rewritten, local = rule(plan)
    return rewritten, changed or local


# -- the rules ---------------------------------------------------------------


def _rewrite_select(plan: Plan) -> tuple[Plan, bool]:
    """Selection fusion + pushdown below a product (node-local)."""
    if not isinstance(plan, SelectPlan):
        return plan, False
    child = plan.child
    # Fuse adjacent selections when the inner threshold is trivial.
    if isinstance(child, SelectPlan) and _is_trivial_threshold(child.threshold):
        merged = _conjoin(_conjuncts(child.predicate) + _conjuncts(plan.predicate))
        return SelectPlan(child.child, merged, plan.threshold), True
    # Push single-side conjuncts below a product -- also through an
    # intervening projection (projection neither renames attributes nor
    # touches memberships, so the multiplicative revision commutes).
    through_project: ProjectPlan | None = None
    product_child: ProductPlan | None = None
    if isinstance(child, ProductPlan):
        product_child = child
    elif isinstance(child, ProjectPlan) and isinstance(child.child, ProductPlan):
        through_project = child
        product_child = child.child
    if product_child is not None and plan.predicate is not None:
        from repro.algebra.product import _rename_map

        left_schema = product_child.left.schema()
        right_schema = product_child.right.schema()
        # original -> product-visible name on each side...
        left_renames = _rename_map(left_schema, right_schema)
        right_renames = _rename_map(right_schema, left_schema)
        # ...and back, to translate pushed predicates into scan names.
        left_restore = {new: old for old, new in left_renames.items()}
        right_restore = {new: old for old, new in right_renames.items()}
        push_left: list[Predicate] = []
        push_right: list[Predicate] = []
        keep: list[Predicate] = []
        for conjunct in _conjuncts(plan.predicate):
            attrs = conjunct.attributes()
            if attrs and attrs <= set(left_restore):
                push_left.append(conjunct.rename_attributes(left_restore))
            elif attrs and attrs <= set(right_restore):
                push_right.append(conjunct.rename_attributes(right_restore))
            else:
                keep.append(conjunct)
        if push_left or push_right:
            left = product_child.left
            right = product_child.right
            if push_left:
                left = SelectPlan(left, _conjoin(push_left), SN_POSITIVE)
            if push_right:
                right = SelectPlan(right, _conjoin(push_right), SN_POSITIVE)
            inner: Plan = ProductPlan(left, right)
            if through_project is not None:
                inner = ProjectPlan(inner, through_project.names)
            remaining = _conjoin(keep)
            if remaining is None and _is_trivial_threshold(plan.threshold):
                return inner, True
            return SelectPlan(inner, remaining, plan.threshold), True
    return plan, False


def _rewrite_project(plan: Plan) -> tuple[Plan, bool]:
    """Projection fusion + pushdown below a selection (node-local)."""
    if not isinstance(plan, ProjectPlan):
        return plan, False
    child = plan.child
    # Fuse adjacent projections.
    if isinstance(child, ProjectPlan):
        return ProjectPlan(child.child, plan.names), True
    # Push a projection below a selection that only reads projected attrs.
    if isinstance(child, SelectPlan):
        predicate_attrs = (
            child.predicate.attributes() if child.predicate is not None else frozenset()
        )
        if predicate_attrs <= set(plan.names) and not isinstance(
            child.child, ProjectPlan
        ):
            pushed = ProjectPlan(child.child, plan.names)
            return SelectPlan(pushed, child.predicate, child.threshold), True
    return plan, False


#: The passes, in application order.
FUSE_AND_PUSH_SELECTIONS = RewritePass("fuse-and-push-selections", _rewrite_select)
PRUNE_PROJECTIONS = RewritePass("prune-projections", _rewrite_project)

_DEFAULT = PassPipeline((FUSE_AND_PUSH_SELECTIONS, PRUNE_PROJECTIONS))


def default_pipeline() -> PassPipeline:
    """The standard normalization pipeline physical lowering relies on."""
    return _DEFAULT
