"""A persistent warm ``fork`` worker pool with compact task encoding.

The historical :class:`~repro.exec.executors.ProcessExecutor` forks a
fresh pool *per batch* so closures cross into workers by memory
inheritance -- correct for arbitrary tasks, but the fork-and-teardown
tax (tens of milliseconds) swamps small batches, which is exactly what
a stream engine flushes all day.  This module keeps one pool of
already-forked workers alive across batches and ships work to them as
**compact encoded payloads** instead:

* the task function must be a module-level callable (it pickles by
  reference -- workers forked from this process already have the module
  imported);
* per-batch constant state (``common``) is pickled **once** and reused
  for every chunk, instead of once per item;
* items are grouped into at most ``workers`` contiguous chunks, so one
  pipe round trip carries many items and results return per chunk.

Payloads that cannot pickle (closures, open handles) are detected *in
the driver* before anything is dispatched: :meth:`WarmPool.submit_batch`
returns ``None`` and the caller falls back to the inherit-by-fork path.
The pool is process-global and deliberately survives
``executor_scope`` / ``Executor.close`` -- staying warm across scopes
is the point -- and is reaped at interpreter exit.  Dispatch activity
surfaces as the ``exec.warmpool.*`` metrics.

Fork safety note (the CONC002 lint rule patrols this): tasks submitted
here are *long-lived* pool submissions -- the workers were forked once,
long ago, so any file offset, sqlite connection or held lock captured
into a payload is stale in the worker by construction.  Ship keys and
paths, reopen in the task.
"""

from __future__ import annotations

import atexit
import pickle
import threading
import time

from repro.obs import tracing
from repro.obs.registry import registry as _metrics_registry

_METRICS = _metrics_registry()
_DISPATCHES = _METRICS.counter(
    "exec.warmpool.dispatches", "batches dispatched to warm workers"
)
_TASKS = _METRICS.counter(
    "exec.warmpool.tasks", "items shipped to warm workers"
)
_SPAWNS = _METRICS.counter(
    "exec.warmpool.spawns", "warm pool (re)creations -- forks actually paid"
)
_FALLBACKS = _METRICS.counter(
    "exec.warmpool.fallbacks",
    "batches that could not pickle and fell back to fork-per-batch",
)
_DISPATCH_SECONDS = _METRICS.histogram(
    "exec.warmpool.dispatch_seconds", "warm-pool batch dispatch latency"
)


def _invoke_chunk(common_blob: bytes, chunk_blob: bytes):
    """Worker-side entry: decode one chunk and run its items in order."""
    from repro.exec.executors import _inside_task

    fn, common = pickle.loads(common_blob)
    chunk = pickle.loads(chunk_blob)
    with _inside_task():
        if not tracing.enabled():
            return [fn(common, item) for item in chunk], None
        with tracing.capture() as spans:
            results = [fn(common, item) for item in chunk]
        return results, spans


class WarmPool:
    """A lazily-forked, persistent worker pool (one per worker count)."""

    def __init__(self, workers: int):
        self.workers = int(workers)
        self._lock = threading.Lock()
        self._pool = None

    def _ensure_pool(self):
        """Fork the workers on first use (caller holds the lock)."""
        if self._pool is None:
            import multiprocessing

            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(processes=self.workers)
            _SPAWNS.inc()
        return self._pool

    def submit_batch(self, fn, common, items: list) -> list | None:
        """Run ``[fn(common, item) for item in items]`` on warm workers.

        Returns results in item order, or ``None`` when the payload
        cannot cross the pipe (the caller falls back to forking).  The
        first task exception propagates.  Concurrent driver threads
        serialize on the pool, mirroring the fork-per-batch lock.
        """
        try:
            common_blob = pickle.dumps(
                (fn, common), protocol=pickle.HIGHEST_PROTOCOL
            )
            chunks = self._chunk(items)
            chunk_blobs = [
                pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL)
                for chunk in chunks
            ]
        except Exception:  # noqa: BLE001 -- any pickling failure: fall back
            _FALLBACKS.inc()
            return None
        started = time.perf_counter()
        with tracing.span(
            "exec.warmpool.dispatch", tasks=len(items), chunks=len(chunk_blobs)
        ):
            with self._lock:
                pool = self._ensure_pool()
                try:
                    handles = [
                        pool.apply_async(_invoke_chunk, (common_blob, blob))
                        for blob in chunk_blobs
                    ]
                    outcomes = [handle.get() for handle in handles]
                except OSError:
                    # A dead worker poisons the whole pool: drop it (the
                    # next batch re-forks) and let the caller fall back.
                    self._close_pool()
                    _FALLBACKS.inc()
                    return None
        _DISPATCHES.inc()
        _TASKS.inc(len(items))
        _DISPATCH_SECONDS.observe(time.perf_counter() - started)
        results: list = []
        for chunk_results, spans in outcomes:
            if spans:
                tracing.ingest(spans)
            results.extend(chunk_results)
        return results

    def _chunk(self, items: list) -> list[list]:
        """At most ``workers`` contiguous chunks, preserving item order."""
        count = min(self.workers, len(items))
        size, extra = divmod(len(items), count)
        chunks, start = [], 0
        for index in range(count):
            stop = start + size + (1 if index < extra else 0)
            chunks.append(items[start:stop])
            start = stop
        return chunks

    def _close_pool(self) -> None:
        """Terminate the workers (caller holds the lock)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def close(self) -> None:
        """Terminate the workers; the next submit re-forks."""
        with self._lock:
            self._close_pool()

    def __repr__(self) -> str:
        state = "warm" if self._pool is not None else "cold"
        return f"WarmPool({self.workers} worker(s), {state})"


#: Process-global pools keyed by worker count, guarded by the lock: the
#: whole point is reusing forked workers across executor scopes.
_POOLS: dict[int, WarmPool] = {}
_POOLS_LOCK = threading.Lock()


def get_pool(workers: int) -> WarmPool | None:
    """The shared warm pool for *workers*, or ``None`` without ``fork``."""
    try:
        import multiprocessing

        multiprocessing.get_context("fork")
    except (ImportError, ValueError):
        return None
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = WarmPool(workers)
            _POOLS[workers] = pool
    return pool


def shutdown() -> None:
    """Terminate every warm pool (idempotent; registered at exit)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.close()


atexit.register(shutdown)
