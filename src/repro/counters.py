"""Thread-safe process-wide counters for hot-path observability.

The library keeps two process-wide counter objects -- the evidence
kernel's :data:`repro.ds.kernel.STATS` and the physical layer's
:data:`repro.exec.executors.STATS` -- that are bumped from code running
*inside* executor workers (a thread-pool fold compiles mass functions
and combines evidence on worker threads).  A plain ``obj.field += 1``
is a read-modify-write and loses updates under concurrency, so exact
counts -- which the regression tests assert -- cannot ride on bare
attributes.

:class:`ThreadLocalCounters` makes the increment side lock-free: every
thread bumps its own private cell, so the hot path never contends, and
reads aggregate the cells under a registry lock.  A count observed
*after* the bumping threads have been joined (or after an
``Executor.map`` batch returned, which implies completion) is exact.
Reads that overlap live bumping see a momentarily stale but
monotonically catching-up total -- the right trade-off for statistics
counters on a hot path.
"""

from __future__ import annotations

import threading


class ThreadLocalCounters:
    """Named integer counters, bumpable from any thread without a lock.

    ``fields`` fixes the counter names.  :meth:`bump` writes the calling
    thread's private cell; :meth:`total`/:meth:`totals` aggregate every
    cell under the registry lock.  Cells are registered once per
    ``(thread, instance)`` pair and survive thread exit (totals must not
    drop contributions of finished workers), so memory is bounded by the
    number of distinct threads that ever bumped -- in practice the
    executor pool size.
    """

    __slots__ = ("_fields", "_lock", "_cells", "_local")

    def __init__(self, fields: tuple[str, ...]):
        self._fields = tuple(fields)
        self._lock = threading.Lock()
        self._cells: list[dict[str, int]] = []
        self._local = threading.local()

    @property
    def fields(self) -> tuple[str, ...]:
        """The counter names, in declaration order."""
        return self._fields

    def _cell(self) -> dict[str, int]:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = dict.fromkeys(self._fields, 0)
            with self._lock:
                self._cells.append(cell)
            self._local.cell = cell
        return cell

    def bump(self, field: str, amount: int = 1) -> None:
        """Add *amount* to *field* (lock-free: thread-private cell)."""
        self._cell()[field] += amount

    def total(self, field: str) -> int:
        """The aggregate value of *field* across all threads."""
        with self._lock:
            return sum(cell[field] for cell in self._cells)

    def totals(self) -> dict[str, int]:
        """One consistent aggregate snapshot of every counter."""
        with self._lock:
            return {
                field: sum(cell[field] for cell in self._cells)
                for field in self._fields
            }

    def reset(self) -> None:
        """Zero every cell in place (the object identity is shared)."""
        with self._lock:
            for cell in self._cells:
                for field in self._fields:
                    cell[field] = 0


#: Default histogram bucket upper bounds, in seconds -- chosen for the
#: latencies this library measures (sub-millisecond kernel ops up to
#: multi-second bulk persists).  The implicit final bucket is +inf.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class ThreadLocalHistograms:
    """Named histograms, observable from any thread without a lock.

    The same discipline as :class:`ThreadLocalCounters`, extended with
    min/max/sum/bucket cells: every thread owns a private cell per
    histogram -- ``[count, sum, min, max, bucket_counts]`` -- so
    :meth:`observe` on the hot path touches only thread-private state,
    and :meth:`totals` merges the cells under the registry lock (counts
    and sums add, min/max fold, buckets add element-wise).  Observations
    made before a joined thread exited are never dropped.

    Bucket bounds are upper edges; an observation lands in the first
    bucket whose bound is >= the value, or the implicit +inf bucket.
    """

    __slots__ = ("_fields", "_buckets", "_lock", "_cells", "_local")

    #: Cell layout indices.
    _COUNT, _SUM, _MIN, _MAX, _BUCKETS = range(5)

    def __init__(
        self,
        fields: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        self._fields = tuple(fields)
        self._buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._cells: list[dict[str, list]] = []
        self._local = threading.local()

    @property
    def fields(self) -> tuple[str, ...]:
        """The histogram names, in declaration order."""
        return self._fields

    @property
    def buckets(self) -> tuple[float, ...]:
        """The bucket upper bounds (ascending; +inf is implicit)."""
        return self._buckets

    def _empty(self) -> list:
        return [0, 0.0, None, None, [0] * (len(self._buckets) + 1)]

    def _cell(self) -> dict[str, list]:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = {field: self._empty() for field in self._fields}
            with self._lock:
                self._cells.append(cell)
            self._local.cell = cell
        return cell

    def observe(self, field: str, value: float) -> None:
        """Record one observation (lock-free: thread-private cell)."""
        slot = self._cell()[field]
        slot[self._COUNT] += 1
        slot[self._SUM] += value
        if slot[self._MIN] is None or value < slot[self._MIN]:
            slot[self._MIN] = value
        if slot[self._MAX] is None or value > slot[self._MAX]:
            slot[self._MAX] = value
        buckets = slot[self._BUCKETS]
        for index, bound in enumerate(self._buckets):
            if value <= bound:
                buckets[index] += 1
                return
        buckets[-1] += 1

    def total(self, field: str) -> dict:
        """The aggregate of *field* across all threads.

        Returns ``{"count", "sum", "min", "max", "buckets"}``; ``min``/
        ``max`` are ``None`` and buckets all zero before any observation.
        """
        with self._lock:
            return self._merge(field)

    def totals(self) -> dict[str, dict]:
        """One consistent aggregate snapshot of every histogram."""
        with self._lock:
            return {field: self._merge(field) for field in self._fields}

    def _merge(self, field: str) -> dict:
        count, total, low, high = 0, 0.0, None, None
        buckets = [0] * (len(self._buckets) + 1)
        for cell in self._cells:
            slot = cell[field]
            count += slot[self._COUNT]
            total += slot[self._SUM]
            if slot[self._MIN] is not None and (low is None or slot[self._MIN] < low):
                low = slot[self._MIN]
            if slot[self._MAX] is not None and (high is None or slot[self._MAX] > high):
                high = slot[self._MAX]
            for index, bucket in enumerate(slot[self._BUCKETS]):
                buckets[index] += bucket
        return {
            "count": count,
            "sum": total,
            "min": low,
            "max": high,
            "buckets": tuple(buckets),
        }

    def reset(self) -> None:
        """Zero every cell in place (the object identity is shared)."""
        with self._lock:
            for cell in self._cells:
                for field in self._fields:
                    cell[field][:] = self._empty()
