"""Thread-safe process-wide counters for hot-path observability.

The library keeps two process-wide counter objects -- the evidence
kernel's :data:`repro.ds.kernel.STATS` and the physical layer's
:data:`repro.exec.executors.STATS` -- that are bumped from code running
*inside* executor workers (a thread-pool fold compiles mass functions
and combines evidence on worker threads).  A plain ``obj.field += 1``
is a read-modify-write and loses updates under concurrency, so exact
counts -- which the regression tests assert -- cannot ride on bare
attributes.

:class:`ThreadLocalCounters` makes the increment side lock-free: every
thread bumps its own private cell, so the hot path never contends, and
reads aggregate the cells under a registry lock.  A count observed
*after* the bumping threads have been joined (or after an
``Executor.map`` batch returned, which implies completion) is exact.
Reads that overlap live bumping see a momentarily stale but
monotonically catching-up total -- the right trade-off for statistics
counters on a hot path.
"""

from __future__ import annotations

import threading


class ThreadLocalCounters:
    """Named integer counters, bumpable from any thread without a lock.

    ``fields`` fixes the counter names.  :meth:`bump` writes the calling
    thread's private cell; :meth:`total`/:meth:`totals` aggregate every
    cell under the registry lock.  Cells are registered once per
    ``(thread, instance)`` pair and survive thread exit (totals must not
    drop contributions of finished workers), so memory is bounded by the
    number of distinct threads that ever bumped -- in practice the
    executor pool size.
    """

    __slots__ = ("_fields", "_lock", "_cells", "_local")

    def __init__(self, fields: tuple[str, ...]):
        self._fields = tuple(fields)
        self._lock = threading.Lock()
        self._cells: list[dict[str, int]] = []
        self._local = threading.local()

    @property
    def fields(self) -> tuple[str, ...]:
        """The counter names, in declaration order."""
        return self._fields

    def _cell(self) -> dict[str, int]:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = dict.fromkeys(self._fields, 0)
            with self._lock:
                self._cells.append(cell)
            self._local.cell = cell
        return cell

    def bump(self, field: str, amount: int = 1) -> None:
        """Add *amount* to *field* (lock-free: thread-private cell)."""
        self._cell()[field] += amount

    def total(self, field: str) -> int:
        """The aggregate value of *field* across all threads."""
        with self._lock:
            return sum(cell[field] for cell in self._cells)

    def totals(self) -> dict[str, int]:
        """One consistent aggregate snapshot of every counter."""
        with self._lock:
            return {
                field: sum(cell[field] for cell in self._cells)
                for field in self._fields
            }

    def reset(self) -> None:
        """Zero every cell in place (the object identity is shared)."""
        with self._lock:
            for cell in self._cells:
                for field in self._fields:
                    cell[field] = 0
