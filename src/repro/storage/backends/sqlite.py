"""SQLite engine: one row per extended tuple, relations load individually.

Layout (three tables, created lazily on first write):

``meta(key, value)``
    ``format_version``, ``name`` (the database name),
    ``catalog_version`` (bumped by every mutating save) and per-stream
    watermarks (``stream:<name>:watermark``).
``relations(name, position, partitions, schema_json)``
    One row per relation: catalog position (stable load order), the
    persisted shard count (0 = flat) and the schema document.
``tuples(relation, partition, position, row_json)``
    One row per extended tuple.  ``row_json`` is the same lossless
    tuple document the JSON backend stores (exact fractions as
    ``"1/3"``, floats via shortest ``repr``), ``position`` the tuple's
    serial order in the relation, and ``partition`` its stable CRC32
    hash shard (:func:`repro.model.relation.partition_index`) when the
    relation was saved partitioned.

The payoff over the monolithic JSON file is *selective* deserialization:
:meth:`load_relation` reads exactly one relation's rows through an
indexed scan -- the rest of the database is never parsed -- and a
relation saved with ``partitions=n`` reloads through
:meth:`ExtendedRelation.from_partitions` into the identical shard
layout, so a sharded engine resumes without re-hashing mismatches.
"""

from __future__ import annotations

import json
import sqlite3

from repro.errors import SerializationError
from repro.model.relation import ExtendedRelation, partition_index
from repro.storage.backends.base import StorageBackend
from repro.storage.database import Database
from repro.storage.serialization import (
    FORMAT_VERSION,
    _tuple_from_json,
    _tuple_to_json,
    schema_from_json,
    schema_to_json,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS relations (
    name        TEXT PRIMARY KEY,
    position    INTEGER NOT NULL,
    partitions  INTEGER NOT NULL DEFAULT 0,
    schema_json TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS tuples (
    relation TEXT    NOT NULL,
    partition INTEGER NOT NULL DEFAULT 0,
    position INTEGER NOT NULL,
    row_json TEXT    NOT NULL,
    PRIMARY KEY (relation, position)
);
"""


class SqliteBackend(StorageBackend):
    """A SQLite database file with one row per extended tuple."""

    scheme = "sqlite"

    def __init__(self, location):
        super().__init__(location)
        self._connection: sqlite3.Connection | None = None

    # -- lifecycle ----------------------------------------------------------

    def _do_open(self) -> None:
        try:
            self._connection = sqlite3.connect(str(self._path))
        except sqlite3.Error as exc:
            raise SerializationError(
                f"cannot open SQLite store {self._path}: {exc}"
            ) from exc

    def _do_close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    @property
    def _db(self) -> sqlite3.Connection:
        self._require_open()
        assert self._connection is not None
        return self._connection

    # -- store plumbing -----------------------------------------------------

    def _has_store(self) -> bool:
        row = self._db.execute(
            "SELECT 1 FROM sqlite_master WHERE type='table' AND name='meta'"
        ).fetchone()
        return row is not None

    def _require_store(self) -> None:
        if not self._has_store():
            raise SerializationError(f"no database at {self.url()}")

    def _ensure_store(self) -> None:
        """Create tables + default metadata on first write."""
        if self._has_store():
            return
        self._db.executescript(_SCHEMA)
        self._db.executemany(
            "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
            [
                ("format_version", str(FORMAT_VERSION)),
                ("name", "db"),
                ("catalog_version", "0"),
            ],
        )
        self._db.commit()

    def _meta(self, key: str, default: str | None = None) -> str | None:
        row = self._db.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return default if row is None else row[0]

    def _set_meta(self, key: str, value: object) -> None:
        self._db.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT (key) DO UPDATE SET value = excluded.value",
            (key, str(value)),
        )

    def _check_format(self) -> None:
        stored = int(self._meta("format_version", str(FORMAT_VERSION)))
        if stored != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported format version {stored!r} in {self.url()}"
            )

    def _bump_catalog_version(self) -> None:
        self._set_meta("catalog_version", self.catalog_version() + 1)

    # -- catalog metadata ---------------------------------------------------

    def format_version(self) -> int:
        self._require_open()
        self._require_store()
        return int(self._meta("format_version", str(FORMAT_VERSION)))

    def database_name(self) -> str:
        self._require_open()
        self._require_store()
        return str(self._meta("name", "db"))

    def catalog_version(self) -> int:
        self._require_open()
        if not self._has_store():
            return 0
        return int(self._meta("catalog_version", "0"))

    def list_relations(self) -> tuple[str, ...]:
        self._require_open()
        self._require_store()
        rows = self._db.execute("SELECT name FROM relations ORDER BY name")
        return tuple(name for (name,) in rows)

    def catalog(self) -> dict[str, dict]:
        self._require_open()
        self._require_store()
        rows = self._db.execute(
            "SELECT r.name, r.partitions, COUNT(t.rowid) "
            "FROM relations r LEFT JOIN tuples t ON t.relation = r.name "
            "GROUP BY r.name, r.partitions ORDER BY r.position"
        )
        return {
            name: {"tuples": count, "partitions": partitions}
            for name, partitions, count in rows
        }

    # -- relation-level operations ------------------------------------------

    def _load_relation(self, name: str) -> ExtendedRelation:
        self._require_store()
        self._check_format()
        row = self._db.execute(
            "SELECT schema_json, partitions FROM relations WHERE name = ?",
            (name,),
        ).fetchone()
        if row is None:
            raise self._missing_relation(name)
        schema_json, partitions = row
        try:
            schema = schema_from_json(json.loads(schema_json))
            rows = self._db.execute(
                "SELECT partition, row_json FROM tuples "
                "WHERE relation = ? ORDER BY position",
                (name,),
            )
            if partitions and partitions > 1:
                shards: list[list] = [[] for _ in range(partitions)]
                for partition, row_json in rows:
                    shards[partition].append(
                        _tuple_from_json(json.loads(row_json), schema)
                    )
                return ExtendedRelation.from_partitions(
                    schema,
                    [ExtendedRelation(schema, shard) for shard in shards],
                )
            tuples = [
                _tuple_from_json(json.loads(row_json), schema)
                for _, row_json in rows
            ]
            return ExtendedRelation(schema, tuples)
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"corrupt row for relation {name!r} in {self.url()}: {exc}"
            ) from exc

    def _save_relation(self, relation, partitions: int | None) -> None:
        self._ensure_store()
        self._check_format()
        with self._db:
            self._insert_relation(relation, partitions)
            self._bump_catalog_version()

    def _insert_relation(self, relation, partitions: int | None) -> None:
        """Write one relation inside the caller's transaction."""
        row = self._db.execute(
            "SELECT position FROM relations WHERE name = ?", (relation.name,)
        ).fetchone()
        if row is not None:
            position = row[0]
        else:
            row = self._db.execute(
                "SELECT COALESCE(MAX(position), -1) + 1 FROM relations"
            ).fetchone()
            position = row[0]
        sharded = partitions is not None and partitions > 1
        n = partitions if sharded else 0
        self._db.execute(
            "INSERT INTO relations (name, position, partitions, schema_json) "
            "VALUES (?, ?, ?, ?) ON CONFLICT (name) DO UPDATE SET "
            "partitions = excluded.partitions, "
            "schema_json = excluded.schema_json",
            (relation.name, position, n, json.dumps(schema_to_json(relation.schema))),
        )
        self._db.execute(
            "DELETE FROM tuples WHERE relation = ?", (relation.name,)
        )
        self._db.executemany(
            "INSERT INTO tuples (relation, partition, position, row_json) "
            "VALUES (?, ?, ?, ?)",
            (
                (
                    relation.name,
                    partition_index(etuple.key(), n) if sharded else 0,
                    index,
                    json.dumps(_tuple_to_json(etuple)),
                )
                for index, etuple in enumerate(relation)
            ),
        )

    def _delete_relation(self, name: str) -> None:
        self._require_store()
        with self._db:
            deleted = self._db.execute(
                "DELETE FROM relations WHERE name = ?", (name,)
            ).rowcount
            if not deleted:
                raise self._missing_relation(name)
            self._db.execute("DELETE FROM tuples WHERE relation = ?", (name,))
            self._bump_catalog_version()

    # -- database-level operations ------------------------------------------

    def _load_database(self) -> Database:
        self._require_store()
        self._check_format()
        database = Database(self.database_name())
        names = self._db.execute(
            "SELECT name FROM relations ORDER BY position"
        ).fetchall()
        # One batched change notification, as database_from_json does.
        with database.batch():
            for (name,) in names:
                database._install(self._load_relation(name))
        return database

    def _save_database(self, database, partitions: int | None) -> None:
        self._ensure_store()
        self._check_format()
        with self._db:
            stored = {
                name
                for (name,) in self._db.execute("SELECT name FROM relations")
            }
            # Sorted: delete order is observable in the journal/WAL and
            # must not depend on set iteration order.
            for stale in sorted(stored - set(database.names())):
                self._db.execute(
                    "DELETE FROM relations WHERE name = ?", (stale,)
                )
                self._db.execute(
                    "DELETE FROM tuples WHERE relation = ?", (stale,)
                )
            for relation in database:
                self._insert_relation(relation, partitions)
            self._set_meta("name", database.name)
            self._bump_catalog_version()

    # -- streaming durability -----------------------------------------------

    def _set_stream_watermark(self, name: str, watermark: int) -> None:
        self._ensure_store()
        with self._db:
            self._set_meta(f"stream:{name}:watermark", int(watermark))

    def _stream_watermark(self, name: str) -> int | None:
        if not self._has_store():
            return None
        value = self._meta(f"stream:{name}:watermark")
        return None if value is None else int(value)
