"""SQLite engine: one row per extended tuple, relations load individually.

Layout (three tables, created lazily on first write):

``meta(key, value)``
    ``format_version``, ``name`` (the database name),
    ``catalog_version`` (bumped by every mutating save) and per-stream
    watermarks (``stream:<name>:watermark``).
``relations(name, position, partitions, schema_json)``
    One row per relation: catalog position (stable load order), the
    persisted shard count (0 = flat) and the schema document.
``tuples(relation, partition, position, row_json)``
    One row per extended tuple.  ``row_json`` is the same lossless
    tuple document the JSON backend stores (exact fractions as
    ``"1/3"``, floats via shortest ``repr``), ``position`` the tuple's
    serial order in the relation, and ``partition`` its stable CRC32
    hash shard (:func:`repro.model.relation.partition_index`) when the
    relation was saved partitioned.

The payoff over the monolithic JSON file is *selective* deserialization:
:meth:`load_relation` reads exactly one relation's rows through an
indexed scan -- the rest of the database is never parsed -- and a
relation saved with ``partitions=n`` reloads through
:meth:`ExtendedRelation.from_partitions` into the identical shard
layout, so a sharded engine resumes without re-hashing mismatches.

Streaming durability is **O(delta)**: :meth:`SqliteBackend.write_batch`
stamps a stream's rows into :data:`STREAM_SHARDS` stable CRC32 hash
shards (plus a ``key_json`` identity column) on the first flush, and
every later flush rewrites only the shards holding the batch's
inserted/updated/removed entities -- bytes written scale with the
*changed* partitions, not the relation size (metered by the
``storage.sqlite.bytes_written`` counter).  Changes the shard layout
cannot express exactly (an entity resurrected mid-order, rows from an
older layout) fall back to a full stamped rewrite, so the reloaded
relation always equals the stream's published relation bit for bit.
"""

from __future__ import annotations

import json
import sqlite3
import time

from repro.errors import SerializationError
from repro.model.relation import ExtendedRelation, partition_index
from repro.obs import tracing
from repro.obs.registry import registry as _metrics_registry
from repro.storage.backends.base import StorageBackend
from repro.storage.database import Database
from repro.storage.serialization import (
    FORMAT_VERSION,
    _tuple_from_json,
    _tuple_to_json,
    schema_from_json,
    schema_to_json,
)

#: Hash-shard count for stream relations: fine enough that a small
#: batch touches a small fraction of the rows, coarse enough that a
#: full rewrite stays a handful of multi-row inserts.
STREAM_SHARDS = 16

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS relations (
    name        TEXT PRIMARY KEY,
    position    INTEGER NOT NULL,
    partitions  INTEGER NOT NULL DEFAULT 0,
    schema_json TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS tuples (
    relation TEXT    NOT NULL,
    partition INTEGER NOT NULL DEFAULT 0,
    position INTEGER NOT NULL,
    row_json TEXT    NOT NULL,
    key_json TEXT,
    PRIMARY KEY (relation, position)
);
CREATE INDEX IF NOT EXISTS tuples_by_key ON tuples (relation, key_json);
"""

#: Keys per ``IN (...)`` point query; comfortably under SQLite's
#: default 999-variable limit with the relation name included.
_POINT_QUERY_CHUNK = 400


def _key_text(key: tuple) -> str:
    """Canonical JSON identity of an entity key (stable across runs)."""
    from repro.stream.connectors import _atom_to_json

    return json.dumps([_atom_to_json(part) for part in key])


class SqliteBackend(StorageBackend):
    """A SQLite database file with one row per extended tuple."""

    scheme = "sqlite"
    lazy_catalog = True

    def __init__(self, location):
        super().__init__(location)
        self._connection: sqlite3.Connection | None = None
        self._key_column_ok = False

    # -- lifecycle ----------------------------------------------------------

    def _do_open(self) -> None:
        try:
            self._connection = sqlite3.connect(str(self._path))
        except sqlite3.Error as exc:
            raise SerializationError(
                f"cannot open SQLite store {self._path}: {exc}"
            ) from exc

    def _do_close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    @property
    def _db(self) -> sqlite3.Connection:
        self._require_open()
        assert self._connection is not None
        return self._connection

    # -- store plumbing -----------------------------------------------------

    def _has_store(self) -> bool:
        row = self._db.execute(
            "SELECT 1 FROM sqlite_master WHERE type='table' AND name='meta'"
        ).fetchone()
        return row is not None

    def _require_store(self) -> None:
        if not self._has_store():
            raise SerializationError(f"no database at {self.url()}")

    def _ensure_store(self) -> None:
        """Create tables + default metadata on first write."""
        if self._has_store():
            self._ensure_key_column()
            return
        self._db.executescript(_SCHEMA)
        self._db.executemany(
            "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
            [
                ("format_version", str(FORMAT_VERSION)),
                ("name", "db"),
                ("catalog_version", "0"),
            ],
        )
        self._db.commit()

    def _ensure_key_column(self) -> None:
        """Migrate pre-shard stores: add the ``key_json`` column once.

        Rows written before the migration keep ``NULL`` keys; the
        dirty-shard path detects them and falls back to a full stamped
        rewrite, after which the layout is current.
        """
        if getattr(self, "_key_column_ok", False):
            return
        columns = {
            row[1] for row in self._db.execute("PRAGMA table_info(tuples)")
        }
        if "key_json" not in columns:
            self._db.execute("ALTER TABLE tuples ADD COLUMN key_json TEXT")
        self._db.execute(
            "CREATE INDEX IF NOT EXISTS tuples_by_key "
            "ON tuples (relation, key_json)"
        )
        self._db.commit()
        self._key_column_ok = True

    def _meta(self, key: str, default: str | None = None) -> str | None:
        row = self._db.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return default if row is None else row[0]

    def _set_meta(self, key: str, value: object) -> None:
        self._db.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT (key) DO UPDATE SET value = excluded.value",
            (key, str(value)),
        )

    def _check_format(self) -> None:
        stored = int(self._meta("format_version", str(FORMAT_VERSION)))
        if stored != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported format version {stored!r} in {self.url()}"
            )

    def _bump_catalog_version(self) -> None:
        self._set_meta("catalog_version", self.catalog_version() + 1)

    # -- catalog metadata ---------------------------------------------------

    def format_version(self) -> int:
        self._require_open()
        self._require_store()
        return int(self._meta("format_version", str(FORMAT_VERSION)))

    def database_name(self) -> str:
        self._require_open()
        self._require_store()
        return str(self._meta("name", "db"))

    def catalog_version(self) -> int:
        self._require_open()
        if not self._has_store():
            return 0
        return int(self._meta("catalog_version", "0"))

    def list_relations(self) -> tuple[str, ...]:
        self._require_open()
        self._require_store()
        rows = self._db.execute("SELECT name FROM relations ORDER BY name")
        return tuple(name for (name,) in rows)

    def catalog(self) -> dict[str, dict]:
        self._require_open()
        self._require_store()
        rows = self._db.execute(
            "SELECT r.name, r.partitions, COUNT(t.rowid) "
            "FROM relations r LEFT JOIN tuples t ON t.relation = r.name "
            "GROUP BY r.name, r.partitions ORDER BY r.position"
        )
        return {
            name: {"tuples": count, "partitions": partitions}
            for name, partitions, count in rows
        }

    # -- relation-level operations ------------------------------------------

    def _load_relation(self, name: str) -> ExtendedRelation:
        self._require_store()
        self._check_format()
        row = self._db.execute(
            "SELECT schema_json, partitions FROM relations WHERE name = ?",
            (name,),
        ).fetchone()
        if row is None:
            raise self._missing_relation(name)
        schema_json, partitions = row
        try:
            schema = schema_from_json(json.loads(schema_json))
            rows = self._db.execute(
                "SELECT partition, row_json FROM tuples "
                "WHERE relation = ? ORDER BY position",
                (name,),
            )
            if partitions and partitions > 1:
                shards: list[list] = [[] for _ in range(partitions)]
                for partition, row_json in rows:
                    shards[partition].append(
                        _tuple_from_json(json.loads(row_json), schema)
                    )
                return ExtendedRelation.from_partitions(
                    schema,
                    [ExtendedRelation(schema, shard) for shard in shards],
                )
            tuples = [
                _tuple_from_json(json.loads(row_json), schema)
                for _, row_json in rows
            ]
            return ExtendedRelation(schema, tuples)
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"corrupt row for relation {name!r} in {self.url()}: {exc}"
            ) from exc

    def _save_relation(self, relation, partitions: int | None) -> None:
        self._ensure_store()
        self._check_format()
        with self._db:
            self._insert_relation(relation, partitions)
            self._bump_catalog_version()

    def _insert_relation(
        self, relation, partitions: int | None, stream_shards: int | None = None
    ) -> int:
        """Write one relation inside the caller's transaction.

        With *stream_shards* the rows are stamped for the dirty-shard
        stream layout instead: partition = the key's stable hash shard,
        ``key_json`` = the key's identity, while ``relations.partitions``
        stays 0 so :meth:`_load_relation` reads the flat
        ``ORDER BY position`` path (global order is authoritative).
        Returns the serialized payload bytes written.
        """
        row = self._db.execute(
            "SELECT position FROM relations WHERE name = ?", (relation.name,)
        ).fetchone()
        if row is not None:
            position = row[0]
        else:
            row = self._db.execute(
                "SELECT COALESCE(MAX(position), -1) + 1 FROM relations"
            ).fetchone()
            position = row[0]
        sharded = partitions is not None and partitions > 1
        n = partitions if sharded else 0
        self._db.execute(
            "INSERT INTO relations (name, position, partitions, schema_json) "
            "VALUES (?, ?, ?, ?) ON CONFLICT (name) DO UPDATE SET "
            "partitions = excluded.partitions, "
            "schema_json = excluded.schema_json",
            (relation.name, position, n, json.dumps(schema_to_json(relation.schema))),
        )
        self._db.execute(
            "DELETE FROM tuples WHERE relation = ?", (relation.name,)
        )
        rows = []
        written = 0
        for index, etuple in enumerate(relation):
            key = etuple.key()
            row_json = json.dumps(_tuple_to_json(etuple))
            if stream_shards:
                shard = partition_index(key, stream_shards)
            else:
                shard = partition_index(key, n) if sharded else 0
            # Every row is key-stamped (not just stream layouts): the
            # identity column is what point loads and O(delta) upserts
            # address rows by.
            key_json = _key_text(key)
            written += len(row_json) + len(key_json)
            rows.append((relation.name, shard, index, row_json, key_json))
        self._db.executemany(
            "INSERT INTO tuples "
            "(relation, partition, position, row_json, key_json) "
            "VALUES (?, ?, ?, ?, ?)",
            rows,
        )
        return written

    def _delete_relation(self, name: str) -> None:
        self._require_store()
        with self._db:
            deleted = self._db.execute(
                "DELETE FROM relations WHERE name = ?", (name,)
            ).rowcount
            if not deleted:
                raise self._missing_relation(name)
            self._db.execute("DELETE FROM tuples WHERE relation = ?", (name,))
            self._bump_catalog_version()

    # -- shard-store operations ----------------------------------------------

    def _load_schema(self, name: str):
        self._require_store()
        self._check_format()
        row = self._db.execute(
            "SELECT schema_json FROM relations WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise self._missing_relation(name)
        return schema_from_json(json.loads(row[0]))

    def _load_rows(self, name: str, keys: list) -> list | None:
        if not self._has_store():
            return None
        self._check_format()
        self._ensure_key_column()
        row = self._db.execute(
            "SELECT schema_json FROM relations WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            return None
        schema = schema_from_json(json.loads(row[0]))
        texts = [_key_text(key) for key in keys]
        found: dict[str, str] = {}
        for start in range(0, len(texts), _POINT_QUERY_CHUNK):
            chunk = texts[start:start + _POINT_QUERY_CHUNK]
            placeholders = ", ".join("?" for _ in chunk)
            rows = self._db.execute(
                f"SELECT key_json, row_json FROM tuples "
                f"WHERE relation = ? AND key_json IN ({placeholders})",
                (name, *chunk),
            )
            for key_json, row_json in rows:
                found[key_json] = row_json
        out = []
        for text in texts:
            row_json = found.get(text)
            if row_json is None:
                # Unknown key or a pre-migration NULL-keyed row: either
                # way this store cannot serve the batch exactly.
                return None
            out.append(_tuple_from_json(json.loads(row_json), schema))
        return out

    def _apply_relation_delta(
        self, name: str, schema, upserts: list, removed: list
    ) -> None:
        self._ensure_store()
        self._check_format()
        with self._db:
            row = self._db.execute(
                "SELECT 1 FROM relations WHERE name = ?", (name,)
            ).fetchone()
            if row is None:
                relation = ExtendedRelation(schema, (), on_unsupported="allow")
                self._insert_relation(relation, None)
            else:
                (nulls,) = self._db.execute(
                    "SELECT COUNT(*) FROM tuples "
                    "WHERE relation = ? AND key_json IS NULL",
                    (name,),
                ).fetchone()
                if nulls:
                    raise SerializationError(
                        f"relation {name!r} in {self.url()} has {nulls} "
                        f"row(s) predating the key_json layout; a delta "
                        f"cannot apply exactly (save a full snapshot)"
                    )
                self._db.execute(
                    "UPDATE relations SET schema_json = ? WHERE name = ?",
                    (json.dumps(schema_to_json(schema)), name),
                )
            (next_position,) = self._db.execute(
                "SELECT COALESCE(MAX(position), -1) + 1 FROM tuples "
                "WHERE relation = ?",
                (name,),
            ).fetchone()
            for etuple in upserts:
                key_json = _key_text(etuple.key())
                row_json = json.dumps(_tuple_to_json(etuple))
                cursor = self._db.execute(
                    "UPDATE tuples SET row_json = ? "
                    "WHERE relation = ? AND key_json = ?",
                    (row_json, name, key_json),
                )
                if cursor.rowcount == 0:
                    self._db.execute(
                        "INSERT INTO tuples "
                        "(relation, partition, position, row_json, key_json) "
                        "VALUES (?, 0, ?, ?, ?)",
                        (name, next_position, row_json, key_json),
                    )
                    next_position += 1
            for key in removed:
                self._db.execute(
                    "DELETE FROM tuples WHERE relation = ? AND key_json = ?",
                    (name, _key_text(key)),
                )
            self._bump_catalog_version()

    # -- database-level operations ------------------------------------------

    def _load_database(self) -> Database:
        self._require_store()
        self._check_format()
        database = Database(self.database_name())
        names = self._db.execute(
            "SELECT name FROM relations ORDER BY position"
        ).fetchall()
        # One batched change notification, as database_from_json does.
        with database.batch():
            for (name,) in names:
                database._install(self._load_relation(name))
        return database

    def _save_database(self, database, partitions: int | None) -> None:
        self._ensure_store()
        self._check_format()
        with self._db:
            stored = {
                name
                for (name,) in self._db.execute("SELECT name FROM relations")
            }
            # Sorted: delete order is observable in the journal/WAL and
            # must not depend on set iteration order.
            for stale in sorted(stored - set(database.names())):
                self._db.execute(
                    "DELETE FROM relations WHERE name = ?", (stale,)
                )
                self._db.execute(
                    "DELETE FROM tuples WHERE relation = ?", (stale,)
                )
            for relation in database:
                self._insert_relation(relation, partitions)
            self._set_meta("name", database.name)
            self._bump_catalog_version()

    # -- streaming durability -----------------------------------------------

    def write_batch(self, name: str, delta, events, relation) -> None:
        """Persist one flushed micro-batch with O(delta) row writes.

        The first flush stamps the whole relation into
        :data:`STREAM_SHARDS` hash shards (recorded in the
        ``stream:<name>:shards`` meta key); later flushes rewrite only
        the shards containing the batch's changed entities, so bytes
        written scale with the changed partitions rather than the
        relation size.  Quiet batches advance the watermark only.
        Metering is manual (the base ``_instrument`` counts file growth,
        which in-place SQLite page rewrites do not show):
        ``storage.sqlite.bytes_written`` counts the serialized payload
        bytes of the rows actually inserted.
        """
        self._require_open()
        registry = _metrics_registry()
        prefix = f"storage.{self.scheme}"
        registry.counter(f"{prefix}.write_batches").inc()
        started = time.perf_counter()
        with tracing.span(
            "storage.write_batch", scheme=self.scheme, path=str(self._path)
        ):
            written = self._write_batch(name, delta, relation)
        registry.histogram(f"{prefix}.save_seconds").observe(
            time.perf_counter() - started
        )
        if written:
            registry.counter(f"{prefix}.bytes_written").inc(written)
        registry.gauge(f"{prefix}.file_bytes").set(self._file_bytes())

    def _write_batch(self, name: str, delta, relation) -> int:
        self._ensure_store()
        self._check_format()
        shards_meta = self._meta(f"stream:{name}:shards")
        if delta.is_empty() and shards_meta is not None:
            with self._db:
                self._set_meta(f"stream:{name}:watermark", int(delta.watermark))
            return 0
        with self._db:
            if shards_meta is None:
                written = self._insert_relation(
                    relation, None, stream_shards=STREAM_SHARDS
                )
                self._set_meta(f"stream:{name}:shards", STREAM_SHARDS)
            else:
                shards = int(shards_meta)
                written = self._write_dirty_shards(relation, shards, delta)
                if written is None:
                    # The shard layout cannot express this change
                    # exactly: rewrite the whole relation stamped.
                    written = self._insert_relation(
                        relation, None, stream_shards=shards
                    )
            self._set_meta(f"stream:{name}:watermark", int(delta.watermark))
            self._bump_catalog_version()
        return written

    def _write_dirty_shards(self, relation, shards: int, delta) -> int | None:
        """Rewrite only the hash shards the batch touched.

        Returns the payload bytes written, or ``None`` when the
        incremental layout cannot represent the change exactly (rows
        predating the ``key_json`` migration, an entity re-inserted
        mid-order, or stored rows that disagree with the relation) --
        the caller then falls back to a full stamped rewrite.  Global
        tuple order is the exactness contract: surviving rows keep
        their stored positions, and inserted entities are only assigned
        past-the-end positions when they really form a suffix of the
        relation's order.
        """
        inserted = set(delta.inserted)
        changed = inserted | set(delta.updated) | set(delta.removed)
        dirty = sorted(
            {partition_index(key, shards) for key in sorted(changed, key=repr)}
        )
        placeholders = ", ".join("?" for _ in dirty)
        stored: dict[str, tuple[int, str]] = {}
        rows_query = self._db.execute(
            f"SELECT key_json, position, row_json FROM tuples "
            f"WHERE relation = ? AND partition IN ({placeholders})",
            (relation.name, *dirty),
        )
        for key_json, position, row_json in rows_query:
            if key_json is None:
                return None
            stored[key_json] = (position, row_json)
        order = [etuple.key() for etuple in relation]
        index_of = {key: index for index, key in enumerate(order)}
        last_survivor = max(
            (
                index
                for key, index in index_of.items()
                if key not in inserted
            ),
            default=-1,
        )
        if any(
            index_of.get(key, -1) <= last_survivor for key in delta.inserted
        ):
            return None
        (next_position,) = self._db.execute(
            "SELECT COALESCE(MAX(position), -1) + 1 FROM tuples "
            "WHERE relation = ?",
            (relation.name,),
        ).fetchone()
        updated = set(delta.updated)
        dirty_set = set(dirty)
        rows = []
        written = 0
        for etuple in relation:
            key = etuple.key()
            if partition_index(key, shards) not in dirty_set:
                continue
            key_json = _key_text(key)
            if key in inserted:
                # Inserted keys form the relation's suffix (checked
                # above), so they take past-the-end positions in order.
                position = next_position + (
                    index_of[key] - (last_survivor + 1)
                )
                row_json = json.dumps(_tuple_to_json(etuple))
            else:
                entry = stored.get(key_json)
                if entry is None:
                    return None
                position, row_json = entry
                if key in updated:
                    row_json = json.dumps(_tuple_to_json(etuple))
            written += len(row_json) + len(key_json)
            rows.append((relation.name, partition_index(key, shards), position, row_json, key_json))
        self._db.execute(
            f"DELETE FROM tuples "
            f"WHERE relation = ? AND partition IN ({placeholders})",
            (relation.name, *dirty),
        )
        self._db.executemany(
            "INSERT INTO tuples "
            "(relation, partition, position, row_json, key_json) "
            "VALUES (?, ?, ?, ?, ?)",
            rows,
        )
        return written

    def _set_stream_watermark(self, name: str, watermark: int) -> None:
        self._ensure_store()
        with self._db:
            self._set_meta(f"stream:{name}:watermark", int(watermark))

    def _stream_watermark(self, name: str) -> int | None:
        if not self._has_store():
            return None
        value = self._meta(f"stream:{name}:watermark")
        return None if value is None else int(value)
