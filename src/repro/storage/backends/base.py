"""The storage-backend contract: one interface, interchangeable engines.

A :class:`StorageBackend` owns one on-disk *location* (a file) and
exposes the persistence operations the rest of the system needs --
relation-level loads and saves, whole-database round trips, catalog
metadata -- behind a uniform interface, so the engines are
interchangeable:

* :class:`repro.storage.backends.jsonfile.JsonBackend` -- the historical
  single-JSON-file format, unchanged on disk (files written by earlier
  versions keep loading);
* :class:`repro.storage.backends.sqlite.SqliteBackend` -- one row per
  extended tuple; relations load individually without touching the rest
  of the database, and hash-partition layouts persist per tuple;
* :class:`repro.storage.backends.log.LogBackend` -- an append-only JSONL
  journal (relation snapshots + streaming write-ahead records) with
  compaction.

**Equivalence is the contract.**  Whatever the engine, ``load(save(x))``
reproduces relations bit-for-bit: exact Fractions stay exact, floats
round-trip through ``repr``, tuple order and schema domains survive, and
evidence over enumerated domains comes back compiled onto the kernel
fast path.  All engines serialize tuples through the same codec
(:mod:`repro.storage.serialization`); a backend only decides *where*
the documents live and *how much* of them a given operation reads.

Catalog metadata: every backend persists the database name, the
serialization :data:`~repro.storage.serialization.FORMAT_VERSION` and a
monotonically increasing **catalog version** (bumped by every mutating
save).  :meth:`load_database` seeds the returned
:class:`~repro.storage.database.Database`'s version from it, so a
session attached to a reopened database never serves results
fingerprinted against an older incarnation of the catalog.

Streaming durability: :meth:`write_batch` persists one flushed
:class:`~repro.stream.changelog.BatchDelta`.  The base implementation
snapshots the integrated relation and records the watermark (crash
recovery = reload the relation, resume from the watermark); the log
backend overrides it with true write-ahead event records whose replay
reproduces the engine's state exactly (see
:meth:`repro.storage.backends.log.LogBackend.recover_stream`).
"""

from __future__ import annotations

import abc
import time
from contextlib import contextmanager
from pathlib import Path

from repro.errors import SerializationError
from repro.obs import tracing
from repro.obs.registry import registry as _metrics_registry


class StorageBackend(abc.ABC):
    """Abstract persistence engine for relations and databases.

    Backends are context managers; mutating and loading operations
    require the backend to be open::

        with SqliteBackend("federation.sqlite") as backend:
            backend.save_database(db)
            hot = backend.load_relation("RA")   # only RA's rows are read

    Subclasses implement the ``_``-prefixed hooks; the public methods
    add the open-state guard and the shared catalog-version plumbing.
    """

    #: URL scheme this backend registers under (``json``/``sqlite``/``log``).
    scheme: str = "?"

    #: Whether this engine loads single relations cheaply enough that
    #: :func:`repro.storage.backends.open_database` should hold lazy
    #: relation stubs instead of eagerly deserializing the whole store
    #: (the SQLite backend point-loads one relation without parsing the
    #: rest; the JSON backend parses the whole file either way).
    lazy_catalog: bool = False

    def __init__(self, location):
        self._path = Path(location)
        self._opened = False

    # -- identity -----------------------------------------------------------

    @property
    def path(self) -> Path:
        """The on-disk location this backend owns."""
        return self._path

    def url(self) -> str:
        """The backend's canonical URL (``scheme:location``)."""
        return f"{self.scheme}:{self._path}"

    def describe(self) -> str:
        """One-line digest for ``:stats`` and throughput reports."""
        return f"storage backend: {self.scheme} at {self._path}"

    def exists(self) -> bool:
        """Whether the location already holds a store.

        A zero-byte file does not count: merely opening a SQLite
        connection (or an append handle) materializes an empty file,
        and that must not shadow "no database here yet".
        """
        return self._path.exists() and self._path.stat().st_size > 0

    # -- lifecycle ----------------------------------------------------------

    @property
    def is_open(self) -> bool:
        """Whether :meth:`open` has been called (and not yet closed)."""
        return self._opened

    def open(self) -> "StorageBackend":
        """Acquire the location (idempotent); returns ``self``."""
        if not self._opened:
            self._do_open()
            self._opened = True
        return self

    def close(self) -> None:
        """Release the location (idempotent)."""
        if self._opened:
            self._do_close()
            self._opened = False

    def __enter__(self) -> "StorageBackend":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _do_open(self) -> None:
        """Engine hook: acquire resources (default: nothing to do)."""

    def _do_close(self) -> None:
        """Engine hook: release resources (default: nothing to do)."""

    def _require_open(self) -> None:
        if not self._opened:
            raise SerializationError(
                f"backend {self.url()} is not open (use it as a context "
                f"manager, or call open() first)"
            )

    # -- telemetry ----------------------------------------------------------

    def _file_bytes(self) -> int:
        try:
            return self._path.stat().st_size
        except OSError:
            return 0

    @contextmanager
    def _instrument(self, op: str, counter: str, save_side: bool):
        """Meter one public storage call: per-scheme I/O counters, call
        latency histograms, on-disk size, and a ``storage.<op>`` span.

        Storage calls are disk-bound, so the metrics are always on; only
        the span obeys the tracing flag.
        """
        registry = _metrics_registry()
        prefix = f"storage.{self.scheme}"
        registry.counter(f"{prefix}.{counter}").inc()
        before = self._file_bytes() if save_side else 0
        start = time.perf_counter()
        with tracing.span(
            f"storage.{op}", scheme=self.scheme, path=str(self._path)
        ):
            yield
        elapsed = time.perf_counter() - start
        side = "save_seconds" if save_side else "load_seconds"
        registry.histogram(f"{prefix}.{side}").observe(elapsed)
        if save_side:
            after = self._file_bytes()
            if after > before:
                registry.counter(f"{prefix}.bytes_written").inc(after - before)
            registry.gauge(f"{prefix}.file_bytes").set(after)

    # -- catalog metadata ---------------------------------------------------

    @abc.abstractmethod
    def format_version(self) -> int:
        """The serialization format version of the store."""

    @abc.abstractmethod
    def database_name(self) -> str:
        """The persisted database name."""

    @abc.abstractmethod
    def catalog_version(self) -> int:
        """Monotonic catalog version; bumped by every mutating save.

        A freshly created (or empty) store reports 0.
        """

    @abc.abstractmethod
    def list_relations(self) -> tuple[str, ...]:
        """The stored relation names, sorted."""

    @abc.abstractmethod
    def catalog(self) -> dict[str, dict]:
        """Per-relation metadata: ``{name: {"tuples": n, "partitions": p}}``.

        ``partitions`` is the persisted shard count (0 = flat layout).
        """

    # -- relation-level operations ------------------------------------------

    def load_relation(self, name: str):
        """Load one stored relation by *name*.

        How much of the store this reads is the engine's defining
        trade-off: the JSON backend parses the whole file, the SQLite
        backend reads only the relation's own rows.
        """
        self._require_open()
        with self._instrument("load_relation", "point_loads", False):
            return self._load_relation(name)

    def save_relation(self, relation, partitions: int | None = None) -> None:
        """Insert or replace one relation (creating the store if absent).

        With *partitions* ``> 1`` the tuples persist in their stable
        CRC32 hash shards (:func:`repro.model.relation.partition_index`),
        so a reloaded relation re-partitions into the identical layout.
        Bumps the catalog version.
        """
        self._require_open()
        with self._instrument("save_relation", "saves", True):
            self._save_relation(relation, partitions)

    def delete_relation(self, name: str) -> None:
        """Remove one stored relation; bumps the catalog version."""
        self._require_open()
        self._delete_relation(name)

    # -- shard-store operations ----------------------------------------------
    #
    # The remote data-locality layer (:mod:`repro.exec.remote`) uses a
    # backend as a worker-owned *shard store*: the coordinator pushes
    # relation snapshots/deltas in, and workers point-load the rows a
    # key-only batch names.  The base implementations go through whole
    # relations, so every engine works as a store; the SQLite backend
    # overrides them with indexed point queries.

    def load_schema(self, name: str):
        """The stored relation's schema, without loading its rows."""
        self._require_open()
        return self._load_schema(name)

    def load_rows(self, name: str, keys) -> list | None:
        """The stored tuples for *keys*, in key order.

        Returns ``None`` -- never a partial list -- when the relation is
        absent or any requested key has no (keyed) row: the caller
        cannot distinguish a stale store from a missing entity, so it
        must fall back to shipping the data itself.
        """
        self._require_open()
        with self._instrument("load_rows", "row_loads", False):
            return self._load_rows(name, list(keys))

    def apply_relation_delta(self, name: str, schema, upserts, removed) -> None:
        """Upsert/remove individual rows of one stored relation.

        *upserts* are :class:`~repro.model.etuple.ExtendedTuple` values
        (inserted or replaced by key), *removed* a list of keys to
        delete; *schema* is the relation's current schema (creating the
        relation when it is not stored yet).  Stored row *order* is not
        part of this contract -- shard stores serve point loads in the
        caller's key order -- but content is exact, and the catalog
        version bumps like any other mutating save.  Raises
        :class:`SerializationError` when the store cannot apply the
        delta exactly (the caller then pushes a full snapshot).
        """
        self._require_open()
        with self._instrument("apply_relation_delta", "delta_saves", True):
            self._apply_relation_delta(name, schema, list(upserts), list(removed))

    # -- database-level operations ------------------------------------------

    def load_database(self):
        """Load the whole store into a :class:`Database`.

        The returned database's catalog version is seeded from the
        backend's persisted catalog version: a session created against
        the reopened database starts at the store's version, so cached
        plans/results fingerprinted before a persist cycle can never be
        mistaken for fresh.
        """
        self._require_open()
        with self._instrument("load_database", "loads", False):
            database = self._load_database()
        database._version = max(database._version, self.catalog_version())
        return database

    def save_database(self, database, partitions: int | None = None) -> None:
        """Persist the whole *database* (replacing the stored catalog).

        Relations stored earlier but absent from *database* are removed.
        Bumps the catalog version once for the whole save.
        """
        self._require_open()
        with self._instrument("save_database", "saves", True):
            self._save_database(database, partitions)

    # -- streaming durability -----------------------------------------------

    def begin_stream(self, name: str, schema, on_conflict: str) -> None:
        """Declare a durable stream *name* speaking *schema*.

        Called once when a :class:`~repro.stream.engine.StreamEngine`
        attaches this backend.  Snapshot backends need no preamble; the
        log backend writes (or verifies) the stream's header record.
        """
        self._require_open()

    def write_batch(self, name: str, delta, events, relation) -> None:
        """Persist one flushed micro-batch of the stream *name*.

        *delta* is the :class:`~repro.stream.changelog.BatchDelta` just
        published, *events* the write-ahead records accepted since the
        previous flush (``("upsert", source, etuple)`` /
        ``("retract", source, key)`` / ``("reliability", source, value)``
        triples), *relation* the integrated relation.

        The base behavior is snapshot durability: save the relation and
        record the watermark.  An empty batch only advances the
        watermark -- a periodic flush on a quiet stream must not rewrite
        the whole relation.  The log backend appends the events
        themselves instead -- a true write-ahead log whose replay
        rebuilds the engine exactly.
        """
        self._require_open()
        with self._instrument("write_batch", "write_batches", True):
            if not delta.is_empty() or self._stream_watermark(name) is None:
                self._save_relation(relation, None)
            self._set_stream_watermark(name, delta.watermark)

    def stream_watermark(self, name: str) -> int | None:
        """The last durably recorded watermark of stream *name* (or None)."""
        self._require_open()
        return self._stream_watermark(name)

    # -- engine hooks -------------------------------------------------------

    @abc.abstractmethod
    def _load_relation(self, name: str):
        ...

    @abc.abstractmethod
    def _save_relation(self, relation, partitions: int | None) -> None:
        ...

    @abc.abstractmethod
    def _delete_relation(self, name: str) -> None:
        ...

    @abc.abstractmethod
    def _load_database(self):
        ...

    @abc.abstractmethod
    def _save_database(self, database, partitions: int | None) -> None:
        ...

    @abc.abstractmethod
    def _set_stream_watermark(self, name: str, watermark: int) -> None:
        ...

    @abc.abstractmethod
    def _stream_watermark(self, name: str) -> int | None:
        ...

    def _load_schema(self, name: str):
        return self._load_relation(name).schema

    def _load_rows(self, name: str, keys: list) -> list | None:
        try:
            relation = self._load_relation(name)
        except SerializationError:
            return None
        rows = []
        for key in keys:
            etuple = relation.get(key)
            if etuple is None:
                return None
            rows.append(etuple)
        return rows

    def _apply_relation_delta(
        self, name: str, schema, upserts: list, removed: list
    ) -> None:
        # Generic engines rewrite the whole relation; content-exact,
        # just not O(delta).
        from repro.model.relation import ExtendedRelation

        try:
            current = list(self._load_relation(name))
        except SerializationError:
            current = []
        replacements = {etuple.key(): etuple for etuple in upserts}
        dropped = set(removed)
        tuples = []
        for etuple in current:
            key = etuple.key()
            if key in dropped:
                continue
            tuples.append(replacements.pop(key, etuple))
        # Brand-new keys append in upsert order (stored order is not
        # part of the shard-store contract, only determinism is).
        tuples.extend(replacements.values())
        self._save_relation(
            ExtendedRelation(schema, tuples, on_unsupported="allow"), None
        )

    # -- shared helpers -----------------------------------------------------

    def _missing_relation(self, name: str) -> SerializationError:
        known = ", ".join(self.list_relations()) or "(none)"
        return SerializationError(
            f"no relation {name!r} in {self.url()} (stored: {known})"
        )

    def __repr__(self) -> str:
        state = "open" if self._opened else "closed"
        return f"{type(self).__name__}({str(self._path)!r}, {state})"
