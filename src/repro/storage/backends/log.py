"""Append-only JSONL engine: relation snapshots + a streaming write-ahead log.

One self-describing JSON record per line, discriminated by ``record``:

.. code-block:: json

    {"record": "meta", "name": "db", "format_version": 1, "catalog_version": 3}
    {"record": "relation", "document": {"format_version": 1, "schema": {...}, "tuples": [...]}}
    {"record": "drop", "name": "RA"}
    {"record": "stream", "stream": "R", "schema": {...}, "on_conflict": "vacuous"}
    {"record": "event", "stream": "R", "event": {"op": "upsert", "source": "daily", "row": {...}}}
    {"record": "batch", "stream": "R", "batch": 2, "watermark": 12, "inserted": 6, "updated": 0, "removed": 0, "conflicted": 0}

Catalog semantics are last-writer-wins: a ``relation`` record supersedes
any earlier snapshot of the same name, ``drop`` removes it, and the
latest ``meta`` record carries the catalog version.  Every mutating save
*appends* -- nothing is ever rewritten in place -- so the file doubles
as an audit trail and writes are O(change), at the cost of unbounded
growth until :meth:`LogBackend.compact` folds history away.

Streaming durability is the native strength: a
:class:`~repro.stream.engine.StreamEngine` attached to this backend gets
a true write-ahead log.  Each flush appends the batch's accepted events
(``upsert`` rows in the lossless tuple codec of
:mod:`repro.storage.serialization`; ``retract``/``reliability`` in the
:mod:`repro.stream.connectors` encoding) followed by a ``batch`` record
carrying the watermark.  :meth:`recover_stream` replays those records
through a fresh engine -- Dempster folds are deterministic, so the
recovered relation, per-source snapshots and watermark equal the
pre-crash state *exactly* (events accepted after the last flush were
never durable and are correctly absent).  A torn tail (a partially
written final line, or events with no closing ``batch`` record) is
discarded, never misread.

Compaction preserves both roles: live relations keep only their latest
snapshot, and each stream's event history is folded into its final
per-source snapshots (re-emitted in registration order, so replay
reproduces the same registration-order fold) plus one ``batch`` record
with the original watermark.

Auto-compaction (off by default) bounds the unbounded growth:
``REPRO_AUTOCOMPACT=1`` compacts whenever the journal grows past 4x its
last compacted size (any other numeric value sets that growth ratio,
e.g. ``REPRO_AUTOCOMPACT=2.5``), gated by a
``REPRO_AUTOCOMPACT_MIN_BYTES`` floor (default 65536) so small journals
never churn.  Compactions triggered this way are counted by the
``storage.log.autocompactions`` metric.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import SerializationError
from repro.obs.registry import registry as _metrics_registry
from repro.storage.backends.base import StorageBackend
from repro.storage.serialization import (
    FORMAT_VERSION,
    _number_from_json,
    _number_to_json,
    _tuple_from_json,
    _tuple_to_json,
    database_from_json,
    relation_from_json,
    relation_to_json,
    schema_from_json,
    schema_to_json,
    tuple_count,
)


def _autocompact_ratio() -> float | None:
    """The growth ratio from ``REPRO_AUTOCOMPACT`` (None = disabled)."""
    raw = os.environ.get("REPRO_AUTOCOMPACT", "").strip().lower()
    if raw in ("", "0", "false", "no", "off"):
        return None
    if raw in ("1", "true", "yes", "on"):
        return 4.0
    try:
        # A compaction at ratio <= 1 would re-trigger on every append.
        return max(float(raw), 1.1)
    except ValueError:
        return 4.0


def _autocompact_min_bytes() -> int:
    try:
        return int(os.environ.get("REPRO_AUTOCOMPACT_MIN_BYTES", "65536"))
    except ValueError:
        return 65536


class LogBackend(StorageBackend):
    """An append-only JSONL journal of snapshots and stream events."""

    scheme = "log"

    def __init__(self, location):
        super().__init__(location)
        self._handle = None
        # The folded meta record, maintained in memory across appends so
        # a save does not re-parse the whole journal just to bump the
        # catalog version (single-writer, like the append handle itself).
        self._meta_cache: dict | None = None
        self._autocompact = _autocompact_ratio()
        self._min_compact_bytes = _autocompact_min_bytes()
        # Size the journal had when last known compact; auto-compaction
        # triggers on growth *relative to this*, so a naturally large
        # database is not mistaken for accumulated history.
        self._compact_baseline: int | None = None

    # -- lifecycle ----------------------------------------------------------

    def _do_open(self) -> None:
        self._compact_baseline = (
            self._file_bytes() if self.exists() else None
        )

    def _do_close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._meta_cache = None

    # -- record plumbing ----------------------------------------------------

    def _append(self, *records: dict) -> None:
        """Append records and force them to disk (the durability point)."""
        if self._handle is None:
            self._truncate_torn_tail()
            self._handle = open(self._path, "a", encoding="utf-8")
        for record in records:
            self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _truncate_torn_tail(self) -> None:
        """Drop a partial final line before the first append of a session.

        Readers already skip a torn tail, but appending *after* one
        would weld the new record onto the fragment -- a corrupt line
        that is no longer last and poisons every later read.  The
        fragment holds at most the batch that never got its marker
        (never durable by definition), so truncating back to the last
        complete line loses nothing the log ever promised to keep.
        """
        if not self._path.exists():
            return
        with open(self._path, "rb+") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) == b"\n":
                return
            text = self._path.read_bytes()
            keep = text.rfind(b"\n") + 1  # 0 when no newline at all
            handle.truncate(keep)

    def _records(self) -> list[dict]:
        """All intact records, oldest first.

        A torn final line (a crash mid-append) is discarded; corruption
        anywhere else is an error, with the offending line number.
        """
        if not self.exists():
            raise SerializationError(f"no database at {self.url()}")
        try:
            lines = self._path.read_text().splitlines()
        except OSError as exc:
            raise SerializationError(
                f"cannot read {self._path}: {exc}"
            ) from exc
        records = []
        last = len(lines)
        for number, line in enumerate(lines, start=1):
            text = line.strip()
            if not text:
                continue
            try:
                records.append(json.loads(text))
            except json.JSONDecodeError as exc:
                if number == last:
                    break  # torn tail: the append never completed
                raise SerializationError(
                    f"{self._path}:{number}: invalid JSON record: {exc}"
                ) from exc
        return records

    def _catalog_state(self) -> tuple[dict, dict]:
        """Fold the journal into (meta, {name: relation document})."""
        meta = {
            "name": "db",
            "format_version": FORMAT_VERSION,
            "catalog_version": 0,
        }
        relations: dict[str, dict] = {}
        for record in self._records():
            kind = record.get("record")
            if kind == "meta":
                meta.update(
                    {
                        key: record[key]
                        for key in ("name", "format_version", "catalog_version")
                        if key in record
                    }
                )
            elif kind == "relation":
                document = record["document"]
                name = document["schema"]["name"]
                # Re-insert so catalog order follows last write, like a log.
                relations.pop(name, None)
                relations[name] = document
            elif kind == "drop":
                relations.pop(record["name"], None)
        if meta["format_version"] != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported format version {meta['format_version']!r} "
                f"in {self.url()}"
            )
        return meta, relations

    def _meta_record(self, meta: dict) -> dict:
        return {
            "record": "meta",
            "name": meta["name"],
            "format_version": meta["format_version"],
            "catalog_version": meta["catalog_version"],
        }

    # -- catalog metadata ---------------------------------------------------

    def format_version(self) -> int:
        self._require_open()
        return int(self._catalog_state()[0]["format_version"])

    def database_name(self) -> str:
        self._require_open()
        return str(self._catalog_state()[0]["name"])

    def catalog_version(self) -> int:
        self._require_open()
        if not self.exists():
            return 0
        return int(self._catalog_state()[0]["catalog_version"])

    def list_relations(self) -> tuple[str, ...]:
        self._require_open()
        return tuple(sorted(self._catalog_state()[1]))

    def catalog(self) -> dict[str, dict]:
        self._require_open()
        return {
            name: {
                "tuples": tuple_count(document),
                "partitions": document.get("partitions", 0),
            }
            for name, document in self._catalog_state()[1].items()
        }

    # -- relation-level operations ------------------------------------------

    def _load_relation(self, name: str):
        document = self._catalog_state()[1].get(name)
        if document is None:
            raise self._missing_relation(name)
        return relation_from_json(document)

    def _save_relation(self, relation, partitions: int | None) -> None:
        meta = self._current_meta()
        meta["catalog_version"] += 1
        self._append(
            {
                "record": "relation",
                "document": relation_to_json(relation, partitions=partitions),
            },
            self._meta_record(meta),
        )
        self._meta_cache = meta
        self._maybe_autocompact()

    def _delete_relation(self, name: str) -> None:
        meta, relations = self._catalog_state()
        if name not in relations:
            raise self._missing_relation(name)
        meta["catalog_version"] += 1
        self._append({"record": "drop", "name": name}, self._meta_record(meta))
        self._meta_cache = meta

    def _current_meta(self) -> dict:
        if self._meta_cache is not None:
            return dict(self._meta_cache)
        if not self.exists():
            return {
                "name": "db",
                "format_version": FORMAT_VERSION,
                "catalog_version": 0,
            }
        return self._catalog_state()[0]

    # -- database-level operations ------------------------------------------

    def _load_database(self):
        meta, relations = self._catalog_state()
        return database_from_json(
            {
                "format_version": meta["format_version"],
                "name": meta["name"],
                "relations": list(relations.values()),
            }
        )

    def _save_database(self, database, partitions: int | None) -> None:
        if self.exists():
            meta, relations = self._catalog_state()
            stale = set(relations) - set(database.names())
        else:
            meta, stale = self._current_meta(), set()
        meta["name"] = database.name
        meta["catalog_version"] += 1
        records = [{"record": "drop", "name": name} for name in sorted(stale)]
        records.extend(
            {
                "record": "relation",
                "document": relation_to_json(relation, partitions=partitions),
            }
            for relation in database
        )
        records.append(self._meta_record(meta))
        self._append(*records)
        self._meta_cache = meta
        self._maybe_autocompact()

    # -- streaming durability (the write-ahead log) -------------------------

    def begin_stream(self, name: str, schema, on_conflict: str) -> None:
        """Append the stream's header record (idempotent per stream).

        On reattach the recorded schema and conflict policy must match:
        replaying events against a different schema would decode
        garbage, so a mismatch is an error rather than a silent rebind.
        """
        self._require_open()
        header = self._stream_header(name)
        if header is None:
            self._append(
                {
                    "record": "stream",
                    "stream": name,
                    "schema": schema_to_json(schema.with_name(name)),
                    "on_conflict": on_conflict,
                }
            )
            return
        recorded = schema_from_json(header["schema"])
        if recorded != schema.with_name(name):
            raise SerializationError(
                f"stream {name!r} in {self.url()} was logged with a "
                f"different schema; recover it instead of reattaching"
            )
        if header.get("on_conflict") != on_conflict:
            raise SerializationError(
                f"stream {name!r} in {self.url()} was logged with "
                f"on_conflict={header.get('on_conflict')!r}, not "
                f"{on_conflict!r}"
            )

    def write_batch(self, name: str, delta, events, relation) -> None:
        """Append the batch's write-ahead records + its ``batch`` marker."""
        self._require_open()
        with self._instrument("write_batch", "write_batches", True):
            self._write_batch(name, delta, events)

    def _write_batch(self, name: str, delta, events) -> None:
        records = [
            {
                "record": "event",
                "stream": name,
                "event": _encode_wal_event(event),
            }
            for event in events
        ]
        records.append(
            {
                "record": "batch",
                "stream": name,
                "batch": delta.batch,
                "watermark": delta.watermark,
                "inserted": len(delta.inserted),
                "updated": len(delta.updated),
                "removed": len(delta.removed),
                "conflicted": len(delta.conflicted),
            }
        )
        self._append(*records)
        self._maybe_autocompact()

    def _set_stream_watermark(self, name: str, watermark: int) -> None:
        self._append(
            {"record": "batch", "stream": name, "watermark": int(watermark)}
        )

    def _stream_watermark(self, name: str) -> int | None:
        if not self.exists():
            return None
        watermark = None
        for record in self._records():
            if record.get("record") == "batch" and record.get("stream") == name:
                watermark = int(record["watermark"])
        return watermark

    def _stream_header(self, name: str) -> dict | None:
        if not self.exists():
            return None
        header = None
        for record in self._records():
            if record.get("record") == "stream" and record.get("stream") == name:
                header = record
        return header

    def stream_names(self) -> tuple[str, ...]:
        """Streams with a header record, sorted."""
        self._require_open()
        if not self.exists():
            return ()
        return tuple(
            sorted(
                {
                    record["stream"]
                    for record in self._records()
                    if record.get("record") == "stream"
                }
            )
        )

    def recover_stream(
        self,
        name: str = "integrated",
        merger=None,
        database=None,
        batch_size: int | None = None,
        attach: bool = True,
    ):
        """Rebuild a durable stream engine from the write-ahead log.

        Replays the logged events batch by batch through a fresh
        :class:`~repro.stream.engine.StreamEngine`; because the engine's
        folds are deterministic, the recovered integrated relation,
        per-source snapshots, reliabilities and watermark are exactly
        the pre-crash flushed state.  Events after the last ``batch``
        record (never durable) are dropped.

        *merger* overrides the merger (required when the original used
        custom per-attribute methods, which the log cannot record); by
        default the logged ``on_conflict`` policy is restored.  With
        *attach* (the default) the returned engine keeps journaling to
        this backend; *database* republishes flushes into a catalog.
        """
        self._require_open()
        from repro.integration.merging import TupleMerger
        from repro.stream.engine import StreamEngine

        header = self._stream_header(name)
        if header is None:
            known = ", ".join(self.stream_names()) or "(none)"
            raise SerializationError(
                f"no stream {name!r} in {self.url()} (logged: {known})"
            )
        schema = schema_from_json(header["schema"])
        if merger is None:
            merger = TupleMerger(on_conflict=header.get("on_conflict", "raise"))
        engine = StreamEngine(
            schema, name=name, merger=merger, database=database
        )
        pending: list[dict] = []
        for record in self._records():
            kind = record.get("record")
            if record.get("stream") != name:
                continue
            if kind == "event":
                pending.append(record["event"])
            elif kind == "batch":
                for event in pending:
                    _apply_wal_event(engine, event)
                pending = []
                # Trust the recorded watermark over the replay count:
                # compaction re-emits snapshots, not original events.
                engine._seq = int(record["watermark"])
                engine.flush()
        # Events with no closing batch record were never durable: drop.
        if attach:
            engine._backend = self
        engine._batch_size = batch_size
        return engine

    # -- compaction ---------------------------------------------------------

    def compact(self) -> dict:
        """Rewrite the journal without history; returns before/after sizes.

        Keeps, per live relation, only its newest snapshot; folds each
        stream's event history into its final per-source snapshots
        (reliability + upsert records in registration order -- replay of
        the compacted log reproduces the same registration-order fold,
        hence the identical relation) closed by one ``batch`` record
        carrying the original watermark.  The catalog version is
        preserved: compaction changes the representation, not the
        catalog.
        """
        self._require_open()
        meta, relations = self._catalog_state()
        records: list[dict] = [self._meta_record(meta)]
        for document in relations.values():
            records.append({"record": "relation", "document": document})
        for stream in self.stream_names():
            records.extend(self._compacted_stream_records(stream))
        before = self._path.stat().st_size
        self._do_close()  # the append handle must not straddle the swap
        replacement = Path(f"{self._path}.compact")
        replacement.write_text(
            "".join(json.dumps(record) + "\n" for record in records)
        )
        os.replace(replacement, self._path)
        after = self._path.stat().st_size
        self._compact_baseline = after
        return {
            "records": len(records),
            "bytes_before": before,
            "bytes_after": after,
        }

    def _maybe_autocompact(self) -> None:
        """Compact when the journal outgrew its last compact size.

        Called after every mutating append; a no-op unless
        ``REPRO_AUTOCOMPACT`` enabled it (see the module docstring).
        The first triggering-eligible append just records the baseline,
        so growth is always measured against a size this process
        actually observed.
        """
        if self._autocompact is None:
            return
        size = self._file_bytes()
        if self._compact_baseline is None:
            self._compact_baseline = size
            return
        if size < self._min_compact_bytes:
            return
        if size < self._autocompact * max(self._compact_baseline, 1):
            return
        self.compact()
        _metrics_registry().counter(
            "storage.log.autocompactions",
            "journal compactions triggered by REPRO_AUTOCOMPACT growth",
        ).inc()

    def _compacted_stream_records(self, name: str) -> list[dict]:
        header = self._stream_header(name)
        records: list[dict] = [header]
        if self._stream_watermark(name) is None:
            return records  # never flushed: nothing durable to fold
        engine = self.recover_stream(name, attach=False)
        records.extend(
            {
                "record": "event",
                "stream": name,
                "event": _encode_wal_event(event),
            }
            for event in engine.snapshot_events()
        )
        records.append(
            {
                "record": "batch",
                "stream": name,
                "batch": engine.changelog.total_batches,
                "watermark": engine.watermark,
            }
        )
        return records


# -- write-ahead event codec -------------------------------------------------
#
# Upserts persist the *coerced* tuple in the lossless row codec of
# repro.storage.serialization (exact Fractions, shortest-repr floats);
# retract keys reuse the tagged-atom encoding of repro.stream.connectors,
# reliabilities the fraction-string number codec -- the same conventions
# as JSONL event files, so WAL records stay human-readable.


def _encode_wal_event(event: tuple) -> dict:
    from repro.stream.connectors import _atom_to_json

    kind = event[0]
    if kind == "upsert":
        _, source, etuple = event
        return {"op": "upsert", "source": source, "row": _tuple_to_json(etuple)}
    if kind == "retract":
        _, source, key = event
        return {
            "op": "retract",
            "source": source,
            "key": [_atom_to_json(part) for part in key],
        }
    if kind == "reliability":
        _, source, value = event
        return {
            "op": "reliability",
            "source": source,
            "value": _number_to_json(value),
        }
    raise SerializationError(f"cannot journal stream event {event!r}")


def _apply_wal_event(engine, document: dict) -> None:
    from repro.stream.connectors import _atom_from_json

    op = document.get("op")
    try:
        if op == "upsert":
            etuple = _tuple_from_json(document["row"], engine.schema)
            engine.upsert(document["source"], etuple)
        elif op == "retract":
            engine.retract(
                document["source"],
                tuple(_atom_from_json(part) for part in document["key"]),
            )
        elif op == "reliability":
            engine.set_reliability(
                document["source"], _number_from_json(document["value"])
            )
        else:
            raise SerializationError(f"unknown WAL op {op!r}")
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed WAL {op!r} record: {exc}") from exc
