"""The historical single-JSON-file engine, behind the backend interface.

One file holds one database document -- exactly the format
:func:`repro.storage.serialization.save_database` has always written, so
every file saved by earlier versions keeps loading unchanged.  The
backend adds two *optional* top-level fields (ignored by older readers,
defaulted when absent): ``catalog_version`` (bumped on every mutating
save) and ``streams`` (per-stream watermarks for snapshot durability).

This is the simplest possible engine and the baseline the others are
measured against: every load parses the whole file and every save
rewrites it, so relation-level operations cost O(database) regardless
of the relation touched (see ``benchmarks/bench_storage_backends.py``).
"""

from __future__ import annotations

import json

from repro.errors import SerializationError
from repro.storage.backends.base import StorageBackend
from repro.storage.serialization import (
    FORMAT_VERSION,
    _read_json_document,
    database_from_json,
    database_to_json,
    relation_from_json,
    relation_to_json,
    tuple_count,
)


class JsonBackend(StorageBackend):
    """One JSON file per database (the pre-backend on-disk format)."""

    scheme = "json"

    # -- document plumbing --------------------------------------------------

    def _read_document(self) -> dict:
        document = _read_json_document(self._path)
        if not isinstance(document, dict):
            raise SerializationError(
                f"{self._path} does not hold a database document"
            )
        return document

    def _read_or_empty(self) -> dict:
        """The stored document, or a fresh empty one for first writes.

        Goes through :meth:`exists` (not a raw path check) so a
        zero-byte file counts as "no store yet" rather than corrupt
        JSON.
        """
        if not self.exists():
            return {
                "format_version": FORMAT_VERSION,
                "name": "db",
                "catalog_version": 0,
                "relations": [],
            }
        return self._read_document()

    def _write_document(self, document: dict) -> None:
        self._path.write_text(json.dumps(document, indent=2))

    # -- catalog metadata ---------------------------------------------------

    def format_version(self) -> int:
        return int(self._read_document().get("format_version", FORMAT_VERSION))

    def database_name(self) -> str:
        return str(self._read_document().get("name", "db"))

    def catalog_version(self) -> int:
        if not self.exists():
            return 0
        return int(self._read_document().get("catalog_version", 0))

    def list_relations(self) -> tuple[str, ...]:
        document = self._read_document()
        return tuple(
            sorted(
                entry["schema"]["name"]
                for entry in document.get("relations", [])
            )
        )

    def catalog(self) -> dict[str, dict]:
        return {
            entry["schema"]["name"]: {
                "tuples": tuple_count(entry),
                "partitions": entry.get("partitions", 0),
            }
            for entry in self._read_document().get("relations", [])
        }

    # -- relation-level operations ------------------------------------------

    def _load_relation(self, name: str):
        # A monolithic file has no cheaper path than the full parse.
        for entry in self._read_document().get("relations", []):
            if entry["schema"]["name"] == name:
                return relation_from_json(entry)
        raise self._missing_relation(name)

    def _save_relation(self, relation, partitions: int | None) -> None:
        document = self._read_or_empty()
        entry = relation_to_json(relation, partitions=partitions)
        entries = document.get("relations", [])
        for index, existing in enumerate(entries):
            if existing["schema"]["name"] == relation.name:
                entries[index] = entry
                break
        else:
            entries.append(entry)
        document["relations"] = entries
        self._bump_and_write(document)

    def _delete_relation(self, name: str) -> None:
        document = self._read_document()
        entries = document.get("relations", [])
        kept = [e for e in entries if e["schema"]["name"] != name]
        if len(kept) == len(entries):
            raise self._missing_relation(name)
        document["relations"] = kept
        self._bump_and_write(document)

    # -- database-level operations ------------------------------------------

    def _load_database(self):
        return database_from_json(self._read_document())

    def _save_database(self, database, partitions: int | None) -> None:
        document = self._read_or_empty()
        fresh = database_to_json(database, partitions=partitions)
        fresh["catalog_version"] = document.get("catalog_version", 0)
        if "streams" in document:
            fresh["streams"] = document["streams"]
        self._bump_and_write(fresh)

    def _bump_and_write(self, document: dict) -> None:
        document["catalog_version"] = int(document.get("catalog_version", 0)) + 1
        self._write_document(document)

    # -- streaming durability -----------------------------------------------

    def _set_stream_watermark(self, name: str, watermark: int) -> None:
        document = self._read_or_empty()
        document.setdefault("streams", {})[name] = int(watermark)
        self._write_document(document)

    def _stream_watermark(self, name: str) -> int | None:
        if not self.exists():
            return None
        value = self._read_document().get("streams", {}).get(name)
        return None if value is None else int(value)
